"""Figure 1: the fault-outcome taxonomy, populated by injection.

Monte-Carlo strikes classified into the paper's outcome leaves for an
unprotected queue, a parity-protected queue, and parity + store-π tracking.
"""

from repro.due.outcomes import FaultOutcome
from repro.experiments import figure1


def test_figure1_outcomes(benchmark, bench_settings, bench_trials,
                          record_exhibit):
    result = benchmark.pedantic(
        lambda: figure1.run(bench_settings, benchmark="crafty",
                            trials=bench_trials),
        rounds=1, iterations=1)
    record_exhibit("figure1", figure1.format_result(result))

    # Detection removes SDC entirely; tracking shrinks false DUE.
    assert result.parity.counts[FaultOutcome.SDC] == 0
    assert result.tracked.false_due_estimate <= \
        result.parity.false_due_estimate
    # A substantial share of parity DUE events are false (paper: up to 52%).
    if result.parity.due_avf_estimate > 0:
        false_share = (result.parity.false_due_estimate
                       / result.parity.due_avf_estimate)
        assert false_share > 0.25
