"""Section 4.1: the IQ residency decomposition and the parity DUE identity.

Paper anchors: 30 % idle / 29 % ACE / 33 % valid un-ACE / 8 % Ex-ACE, so
parity converts a 29 % SDC AVF into a 62 % DUE AVF; re-decoding at retire
instead of storing an anti-π bit would raise false DUE from 33 % to 41 %.
"""

from repro.experiments import occupancy


def test_occupancy_breakdown(benchmark, bench_settings, bench_profiles,
                             record_exhibit):
    result = benchmark.pedantic(
        lambda: occupancy.run(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("occupancy", occupancy.format_result(result))

    avg = result.averages()
    # Broad-band checks on the paper's decomposition.
    assert 0.15 < avg["ace"] < 0.45
    assert 0.15 < avg["idle"] < 0.50
    assert 0.03 < avg["ex_ace"] < 0.15
    assert 0.15 < avg["valid_unace"] < 0.45
    # Parity more than doubles the structure's error contribution.
    assert avg["ace"] + avg["valid_unace"] > 1.5 * avg["ace"]
