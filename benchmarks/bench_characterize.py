"""Workload characterization table (measured per-benchmark behaviour)."""

from repro.workloads.characterize import characterize, format_characterization


def test_characterization(benchmark, bench_settings, bench_profiles,
                          record_exhibit):
    rows = benchmark.pedantic(
        lambda: characterize(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("characterization", format_characterization(rows))

    by_suite = {"int": [], "fp": []}
    for row in rows:
        by_suite[row.suite].append(row)
    if by_suite["int"] and by_suite["fp"]:
        int_neutral = sum(r.neutral_frac for r in by_suite["int"]) \
            / len(by_suite["int"])
        fp_neutral = sum(r.neutral_frac for r in by_suite["fp"]) \
            / len(by_suite["fp"])
        assert fp_neutral > int_neutral  # IA64 fp bundle padding
    dead = sum(r.dead_frac for r in rows) / len(rows)
    assert 0.05 < dead < 0.40  # paper: ~20 % dynamically dead
