"""Ablation benches for the reproduction's documented modeling choices."""

from repro.experiments import ablations


def test_accounting_policy(benchmark, bench_settings, bench_profiles,
                           record_exhibit):
    result = benchmark.pedantic(
        lambda: ablations.accounting_policy(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("ablation_accounting", ablations.format_result(result))
    conservative = result.row("conservative (paper)")
    read_gated = result.row("read-gated")
    # Read gating proves squash victims harmless: strictly more credit.
    assert read_gated.sdc_avf <= conservative.sdc_avf
    assert read_gated.due_avf <= conservative.due_avf


def test_refetch_policy(benchmark, bench_settings, bench_profiles,
                        record_exhibit):
    result = benchmark.pedantic(
        lambda: ablations.refetch_policy(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("ablation_refetch", ablations.format_result(result))
    immediate = result.row("refetch immediately")
    delayed = result.row("resume at miss return")
    # Holding the refetch keeps the queue emptier during the shadow; the
    # two policies trade a little IPC against a little exposure, so they
    # must land close to each other (the interesting output is the table).
    assert delayed.sdc_avf <= immediate.sdc_avf * 1.15
    assert abs(delayed.ipc - immediate.ipc) / immediate.ipc < 0.15


def test_squash_vs_throttle(benchmark, bench_settings, bench_profiles,
                            record_exhibit):
    result = benchmark.pedantic(
        lambda: ablations.squash_vs_throttle(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("ablation_action", ablations.format_result(result))
    base = result.row("no action")
    squash = result.row("squash")
    throttle = result.row("fetch throttle")
    assert squash.sdc_avf < base.sdc_avf
    assert throttle.sdc_avf < base.sdc_avf
    # The paper kept squashing and dropped throttling: squashing clears
    # already-queued instructions, throttling only stops new ones.
    assert squash.sdc_avf <= throttle.sdc_avf * 1.05


def test_issue_policy_contrast(benchmark, bench_settings, bench_profiles,
                               record_exhibit):
    result = benchmark.pedantic(
        lambda: ablations.issue_policy_contrast(bench_settings,
                                                bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("ablation_issue_policy", ablations.format_result(result))
    in_order = result.row("in-order, baseline")
    ooo = result.row("ooo window, baseline")
    # An out-of-order scheduler drains the queue faster: higher IPC and a
    # lower baseline AVF (less vulnerable residency per instruction).
    assert ooo.ipc > in_order.ipc
    assert ooo.sdc_avf < in_order.sdc_avf
    # Squashing still reduces AVF under OoO issue (the paper's remark).
    assert result.row("ooo window, squash L1").sdc_avf < ooo.sdc_avf


def test_queue_size_sweep(benchmark, bench_settings, bench_profiles,
                          record_exhibit):
    result = benchmark.pedantic(
        lambda: ablations.queue_size_sweep(bench_settings, bench_profiles,
                                           sizes=(32, 64, 128)),
        rounds=1, iterations=1)
    record_exhibit("ablation_iq_size", ablations.format_result(result))
    small = result.row("32-entry IQ")
    large = result.row("128-entry IQ")
    # A larger queue holds instructions longer: IPC up a little, AVF
    # exposure per bit roughly flat or lower (same work spread thinner).
    assert large.ipc >= small.ipc * 0.95
