"""Figure 3: PET-buffer coverage of FDD instructions vs buffer size.

Paper anchors: 512 entries cover ~32 % of FDD-via-register deaths; pushing
to ~10 K entries and adding return- and memory-tracked deaths covers most
first-level-dead instructions.
"""

from repro.experiments import figure3


def test_figure3_pet_curves(benchmark, bench_settings, bench_profiles,
                            record_exhibit):
    result = benchmark.pedantic(
        lambda: figure3.run(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("figure3", figure3.format_result(result))

    labels = [label for label, _ in figure3.SERIES]
    # Monotone in size, nested across series.
    for label in labels:
        values = [result.coverage(label, s) for s in result.sizes]
        assert values == sorted(values)
    for size in result.sizes:
        series = [result.coverage(label, size) for label in labels]
        assert series == sorted(series)

    # A 512-entry buffer covers a meaningful minority of register FDD...
    base_512 = result.coverage(labels[0], 512)
    assert 0.10 < base_512 < 0.80
    # ...and the largest buffer with returns+memory covers most FDD.
    assert result.coverage(labels[2], max(result.sizes)) > 0.75
