"""Table 1: IPC and SDC/DUE AVFs under squashing (the paper's headline).

Regenerates the three design points (no squash / squash on L1 miss /
squash on L0 miss) over the benchmark suite and reports the same columns
as the paper, including the IPC/AVF MITF figures of merit.
"""

from repro.experiments import table1
from repro.experiments.common import clear_caches


def test_table1(benchmark, bench_settings, bench_profiles, record_exhibit):
    def regenerate():
        clear_caches()
        return table1.run(bench_settings, bench_profiles)

    result = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    record_exhibit("table1", table1.format_result(result))

    base, l1, l0 = result.rows
    # Shape assertions mirroring the paper's Table 1 relationships.
    assert l1.sdc_avf < base.sdc_avf
    assert l1.due_avf < base.due_avf
    assert l1.ipc <= base.ipc
    assert l0.ipc < l1.ipc
    assert result.mitf_gain("Squash on L1 load misses", "sdc") > 0
    assert result.mitf_gain("Squash on L1 load misses", "due") > 0
