"""Table 2: the benchmark catalogue (paper skip intervals + profile knobs)."""

from repro.experiments import table2


def test_table2(benchmark, record_exhibit):
    text = benchmark(table2.format_result)
    record_exhibit("table2", text)
    assert "crafty" in text and "swim" in text
