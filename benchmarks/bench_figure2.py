"""Figure 2: false-DUE coverage of the tracking ladder.

Paper increments: π-to-commit 18 %, anti-π 49 % (fp > int), PET-512 3 %,
register π 11 %, store π 8 %, memory π 12 % — 100 % total.
"""

from repro.due.tracking import TrackingLevel
from repro.experiments import figure2


def test_figure2_coverage(benchmark, bench_settings, bench_profiles,
                          record_exhibit):
    result = benchmark.pedantic(
        lambda: figure2.run(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("figure2", figure2.format_result(result))

    # Cumulative and complete.
    previous = 0.0
    for level in (TrackingLevel.PI_COMMIT, TrackingLevel.ANTI_PI,
                  TrackingLevel.PET, TrackingLevel.REG_PI,
                  TrackingLevel.STORE_PI, TrackingLevel.MEM_PI):
        current = result.average_coverage(level)
        assert current >= previous - 1e-9
        previous = current
    assert result.average_coverage(TrackingLevel.MEM_PI) > 0.999

    # The anti-π bit matters more for FP codes (more no-ops/prefetches).
    anti_fp = (result.average_coverage(TrackingLevel.ANTI_PI, "fp")
               - result.average_coverage(TrackingLevel.PI_COMMIT, "fp"))
    anti_int = (result.average_coverage(TrackingLevel.ANTI_PI, "int")
                - result.average_coverage(TrackingLevel.PI_COMMIT, "int"))
    assert anti_fp > anti_int
    # π-to-commit matters more for INT codes (more wrong-path).
    assert result.average_coverage(TrackingLevel.PI_COMMIT, "int") > \
        result.average_coverage(TrackingLevel.PI_COMMIT, "fp")
