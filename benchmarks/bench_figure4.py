"""Figure 4: combining squash-on-L1-miss with store-π tracking.

Paper: -26 % average SDC AVF from squashing alone (ammp -90 %), -57 %
average DUE AVF from squashing plus π tracking, for ~2 % IPC.
"""

from repro.experiments import figure4


def test_figure4_combined(benchmark, bench_settings, bench_profiles,
                          record_exhibit):
    result = benchmark.pedantic(
        lambda: figure4.run(bench_settings, bench_profiles),
        rounds=1, iterations=1)
    record_exhibit("figure4", figure4.format_result(result))

    assert result.average_relative_sdc() < 0.95
    assert result.average_relative_due() < 0.80
    # The combined technique removes more DUE than squashing removes SDC.
    assert result.average_relative_due() < result.average_relative_sdc()
    # IPC cost stays moderate.
    assert result.average_ipc_change() > -0.20

    names = {row.benchmark for row in result.rows}
    if "ammp" in names:
        # The paper's outlier: ammp's SDC AVF collapses under squashing.
        ammp = result.row("ammp")
        assert ammp.relative_sdc < result.average_relative_sdc()
