"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_INSTRUCTIONS`` — dynamic instructions per benchmark trace
  (default 60000; the paper uses 100M SimPoints, see DESIGN.md scaling).
* ``REPRO_BENCH_PROFILES`` — number of profiles (default: all 26).
* ``REPRO_BENCH_TRIALS`` — fault-injection trials per campaign.
* ``REPRO_BENCH_JOBS`` — worker processes for campaigns and benchmark
  runs (default 1 = serial; results are bit-identical either way).
* ``REPRO_BENCH_CACHE_DIR`` — persistent result-cache directory; a warm
  re-run of an exhibit then performs zero pipeline simulations (check the
  telemetry line printed at session end).
* ``REPRO_BENCH_NO_CACHE`` — set (to anything non-empty) to bypass the
  cache even when a directory is configured.
* ``REPRO_BENCH_RETRIES`` — supervision retry budget per failed shard or
  benchmark run (default 2).
* ``REPRO_BENCH_TRIAL_TIMEOUT`` — watchdog deadline per campaign trial,
  in seconds (default: off).
* ``REPRO_BENCH_CHECKPOINT_DIR`` — campaign checkpoint journal directory
  (default: off).

Every exhibit benchmark writes its paper-style table to
``benchmarks/results/<exhibit>.txt`` so the regenerated rows are inspectable
after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings
from repro.runtime.cache import ResultCache
from repro.runtime.context import RuntimeContext, get_runtime, set_runtime
from repro.runtime.resilience import RetryPolicy
from repro.workloads.spec2000 import ALL_PROFILES

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session", autouse=True)
def bench_runtime():
    """Install the runtime context described by the REPRO_BENCH_* knobs."""
    jobs = _env_int("REPRO_BENCH_JOBS", 1)
    cache_dir = os.environ.get("REPRO_BENCH_CACHE_DIR")
    no_cache = bool(os.environ.get("REPRO_BENCH_NO_CACHE"))
    cache = ResultCache(cache_dir) if cache_dir and not no_cache else None
    timeout = os.environ.get("REPRO_BENCH_TRIAL_TIMEOUT")
    policy = RetryPolicy(
        retries=_env_int("REPRO_BENCH_RETRIES", 2),
        trial_timeout=float(timeout) if timeout else None)
    previous = get_runtime()
    context = set_runtime(RuntimeContext(
        jobs=jobs, cache=cache, policy=policy,
        checkpoint_dir=os.environ.get("REPRO_BENCH_CHECKPOINT_DIR")))
    yield context
    print()
    print(context.telemetry.format_summary(cache=context.cache, jobs=jobs))
    set_runtime(previous)


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    return ExperimentSettings(
        target_instructions=_env_int("REPRO_BENCH_INSTRUCTIONS", 60_000),
        seed=2004,
    )


@pytest.fixture(scope="session")
def bench_profiles():
    count = _env_int("REPRO_BENCH_PROFILES", len(ALL_PROFILES))
    if count >= len(ALL_PROFILES):
        return list(ALL_PROFILES)
    step = max(1, len(ALL_PROFILES) // count)
    return ALL_PROFILES[::step][:count]


@pytest.fixture(scope="session")
def bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 300)


@pytest.fixture(scope="session")
def record_exhibit():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
