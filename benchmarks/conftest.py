"""Shared benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_INSTRUCTIONS`` — dynamic instructions per benchmark trace
  (default 60000; the paper uses 100M SimPoints, see DESIGN.md scaling).
* ``REPRO_BENCH_PROFILES`` — number of profiles (default: all 26).
* ``REPRO_BENCH_TRIALS`` — fault-injection trials per campaign.

Every exhibit benchmark writes its paper-style table to
``benchmarks/results/<exhibit>.txt`` so the regenerated rows are inspectable
after a ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.common import ExperimentSettings
from repro.workloads.spec2000 import ALL_PROFILES

RESULTS_DIR = Path(__file__).parent / "results"


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_settings() -> ExperimentSettings:
    return ExperimentSettings(
        target_instructions=_env_int("REPRO_BENCH_INSTRUCTIONS", 60_000),
        seed=2004,
    )


@pytest.fixture(scope="session")
def bench_profiles():
    count = _env_int("REPRO_BENCH_PROFILES", len(ALL_PROFILES))
    if count >= len(ALL_PROFILES):
        return list(ALL_PROFILES)
    step = max(1, len(ALL_PROFILES) // count)
    return ALL_PROFILES[::step][:count]


@pytest.fixture(scope="session")
def bench_trials() -> int:
    return _env_int("REPRO_BENCH_TRIALS", 300)


@pytest.fixture(scope="session")
def record_exhibit():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _record
