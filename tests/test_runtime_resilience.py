"""Golden-equivalence tests for the supervised campaign runtime.

The acceptance bar for the resilience layer: a campaign run under
injected faults — worker kills, transient and deterministic trial
crashes, hung trials, corrupted cache/checkpoint files, and an
interrupt/resume cycle — must produce tallies bit-identical to the
fault-free serial run (minus explicitly quarantined trials, which are
reported, never silently dropped).
"""

from collections import Counter

import json

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign, run_trial_block
from repro.runtime.chaos import ChaosConfig, ChaosInjector
from repro.runtime.context import use_runtime
from repro.runtime.resilience import (
    CampaignInterrupted,
    ResultInvalid,
    RetryPolicy,
    SupervisedTask,
    Supervisor,
)
from repro.runtime.telemetry import Telemetry

CONFIG = CampaignConfig(trials=36, seed=13)

#: Tiny backoff so retry storms cost microseconds, not test time.
FAST = RetryPolicy(retries=3, backoff_base=0.001, backoff_cap=0.002)


def _find_seed(predicate, limit=5000):
    """Smallest chaos seed whose deterministic decisions fit the scenario."""
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError("no chaos seed satisfies the test scenario")


def _block_counts(program, baseline, pipeline, config, indices):
    """Fault-free tallies for a set of trial indices (the oracle)."""
    counts, misses = Counter(), 0
    for index in indices:
        c, m = run_trial_block(program, baseline, pipeline, config,
                               index, index + 1)
        counts.update(c)
        misses += m
    return counts, misses


@pytest.fixture(scope="module")
def reference(small_program, small_execution, small_pipeline):
    """The fault-free serial campaign every chaos run must reproduce."""
    with use_runtime():
        return run_campaign(small_program, small_execution, small_pipeline,
                            CONFIG)


class TestGoldenEquivalence:
    def test_clean_run_reports_complete(self, reference):
        report = reference.completeness
        assert report is not None and report.complete
        assert report.retries == 0 and report.quarantined == ()
        assert report.confidence_widening == pytest.approx(1.0)
        assert report.format().startswith(
            "campaign completeness: 36/36 trials")
        # A failure-free telemetry summary stays quiet about resilience.
        assert "resilience" not in Telemetry().format_summary()

    def test_worker_kills_and_transient_faults(
            self, small_program, small_execution, small_pipeline, reference):
        """kill-worker + raise-trial + delay-trial across 2 workers: every
        shard dies at least once, yet tallies match the serial run."""
        chaos = ChaosConfig(
            modes=("kill-worker", "raise-trial", "delay-trial"), seed=99,
            kill_prob=1.0, raise_prob=0.2, delay_prob=0.2,
            delay_seconds=0.001)
        telemetry = Telemetry()
        with use_runtime(jobs=2, telemetry=telemetry, policy=FAST,
                         chaos=chaos):
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, CONFIG)
        assert result.counts == reference.counts
        assert result.tracker_misses == reference.tracker_misses
        assert result.completeness.complete
        assert result.completeness.retries >= 1
        assert telemetry.counters["workers_lost"] >= 1
        assert telemetry.counters["retries"] >= 1
        summary = telemetry.format_summary(jobs=2)
        assert "resilience:" in summary and "workers lost" in summary

    def test_serial_transient_crash_recovers_exactly(
            self, small_program, small_execution, small_pipeline, reference):
        chaos = ChaosConfig(modes=("raise-trial",), seed=1, raise_prob=1.0)
        telemetry = Telemetry()
        with use_runtime(jobs=1, telemetry=telemetry, policy=FAST,
                         chaos=chaos):
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, CONFIG)
        assert result.counts == reference.counts
        assert result.tracker_misses == reference.tracker_misses
        # Deterministic accounting: the single serial shard crashes once
        # (at trial 0, attempt 0) and succeeds on its first retry.
        assert telemetry.counters["trial_crashes"] == 1
        assert telemetry.counters["retries"] == 1
        assert result.completeness.retries == 1


class TestQuarantine:
    def test_poisoned_trials_are_quarantined_not_skewed(
            self, small_program, small_execution, small_pipeline, reference,
            tmp_path):
        seed = _find_seed(lambda s: 2 <= len(ChaosInjector(
            ChaosConfig(modes=("poison-trial",), seed=s, poison_prob=0.08)
        ).poisoned_trials(CONFIG.trials)) <= 5)
        chaos = ChaosConfig(modes=("poison-trial",), seed=seed,
                            poison_prob=0.08)
        poisoned = ChaosInjector(chaos).poisoned_trials(CONFIG.trials)
        telemetry = Telemetry()
        with use_runtime(jobs=1, telemetry=telemetry, policy=FAST,
                         chaos=chaos, cache_dir=tmp_path) as runtime:
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, CONFIG)

        report = result.completeness
        assert report.degraded and not report.complete
        assert report.quarantined == poisoned
        assert result.trials == CONFIG.trials - len(poisoned)
        assert report.confidence_widening > 1.0

        # Surviving tallies are exactly the reference minus the poisoned
        # trials' outcomes: quarantine removes samples, never skews them.
        lost_counts, lost_misses = _block_counts(
            small_program, small_execution, small_pipeline, CONFIG, poisoned)
        expected = reference.counts.copy()
        expected.subtract(lost_counts)
        assert +expected == +result.counts
        assert result.tracker_misses == reference.tracker_misses - lost_misses

        # Degraded tallies must never enter the persistent cache.
        assert runtime.cache.puts == 0
        assert telemetry.counters["quarantined_trials"] == len(poisoned)
        assert telemetry.counters["campaigns_degraded"] == 1
        summary = telemetry.format_summary(cache=runtime.cache, jobs=1)
        assert "quarantined" in summary and "[degraded]" in summary

    def test_hung_trial_is_timed_out_and_quarantined(
            self, small_program, small_execution, small_pipeline):
        config = CampaignConfig(trials=12, seed=13)
        seed = _find_seed(lambda s: len([
            i for i in range(config.trials)
            if ChaosInjector(ChaosConfig(
                modes=("delay-trial",), seed=s, delay_prob=0.1)
            ).decide(0.1, "delay", "trial", i)]) == 1)
        chaos = ChaosConfig(modes=("delay-trial",), seed=seed,
                            delay_prob=0.1, delay_seconds=5.0)
        injector = ChaosInjector(chaos)
        (hung,) = [i for i in range(config.trials)
                   if injector.decide(0.1, "delay", "trial", i)]
        policy = RetryPolicy(retries=0, backoff_base=0.001,
                             backoff_cap=0.002, trial_timeout=0.25)
        telemetry = Telemetry()
        with use_runtime(jobs=2, telemetry=telemetry, policy=policy,
                         chaos=chaos):
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, config)

        assert result.completeness.quarantined == (hung,)
        # Once for the shard, once for the isolated single trial.
        assert telemetry.counters["trial_timeouts"] >= 2

        survivors = [i for i in range(config.trials) if i != hung]
        expected, expected_misses = _block_counts(
            small_program, small_execution, small_pipeline, config,
            survivors)
        assert +result.counts == +expected
        assert result.tracker_misses == expected_misses


class TestCheckpointResume:
    def test_interrupt_then_resume_is_bit_identical(
            self, small_program, small_execution, small_pipeline, reference,
            tmp_path):
        # Pick a seed whose first injected interrupt lands in the third
        # of the four checkpoint blocks, so exactly blocks [0,9) and
        # [9,18) are journalled when the campaign dies.
        def first_fire(seed):
            fired = [i for i in range(CONFIG.trials)
                     if ChaosInjector(ChaosConfig(
                         modes=("interrupt",), seed=seed,
                         interrupt_prob=0.08)
                     ).decide(0.08, "interrupt", "trial", i)]
            return fired[0] if fired else -1

        seed = _find_seed(lambda s: 20 <= first_fire(s) < 27)
        chaos = ChaosConfig(modes=("interrupt",), seed=seed,
                            interrupt_prob=0.08)
        telemetry = Telemetry()
        with use_runtime(jobs=1, telemetry=telemetry, policy=FAST,
                         chaos=chaos, checkpoint_dir=tmp_path):
            with pytest.raises(CampaignInterrupted) as info:
                run_campaign(small_program, small_execution, small_pipeline,
                             CONFIG)
        assert info.value.trials_done == 18
        assert "checkpoint journal flushed" in str(info.value)
        (journal_path,) = tmp_path.glob("campaign-*.json")
        assert len(json.loads(journal_path.read_text())["entries"]) == 2

        resumed_telemetry = Telemetry()
        with use_runtime(jobs=1, telemetry=resumed_telemetry, policy=FAST,
                         checkpoint_dir=tmp_path, resume=True):
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, CONFIG)
        assert result.counts == reference.counts
        assert result.tracker_misses == reference.tracker_misses
        assert result.completeness.complete
        assert result.completeness.resumed_trials == 18
        assert resumed_telemetry.counters["checkpoint_resumed_trials"] == 18
        assert "trials resumed" in resumed_telemetry.format_summary()

    def test_resume_of_finished_campaign_recomputes_nothing(
            self, small_program, small_execution, small_pipeline, reference,
            tmp_path):
        with use_runtime(jobs=1, policy=FAST, checkpoint_dir=tmp_path):
            run_campaign(small_program, small_execution, small_pipeline,
                         CONFIG)
        telemetry = Telemetry()
        with use_runtime(jobs=1, telemetry=telemetry, policy=FAST,
                         checkpoint_dir=tmp_path, resume=True):
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, CONFIG)
        assert result.counts == reference.counts
        assert result.completeness.resumed_trials == CONFIG.trials
        assert telemetry.counters["checkpoint_writes"] == 0

    def test_corrupted_journal_is_discarded_and_recomputed(
            self, small_program, small_execution, small_pipeline, reference,
            tmp_path):
        # 'corrupt-checkpoint' chaos garbles the journal after the run...
        chaos = ChaosConfig(modes=("corrupt-checkpoint",), seed=3)
        first = Telemetry()
        with use_runtime(jobs=1, telemetry=first, policy=FAST, chaos=chaos,
                         checkpoint_dir=tmp_path):
            damaged = run_campaign(small_program, small_execution,
                                   small_pipeline, CONFIG)
        assert damaged.counts == reference.counts
        assert first.counters["chaos_corruptions"] == 1

        # ...so the resume must detect it, discard it, and start over.
        second = Telemetry()
        with use_runtime(jobs=1, telemetry=second, policy=FAST,
                         checkpoint_dir=tmp_path, resume=True):
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, CONFIG)
        assert result.counts == reference.counts
        assert result.tracker_misses == reference.tracker_misses
        assert result.completeness.resumed_trials == 0
        assert second.counters["checkpoint_corrupt"] == 1
        assert "corrupt journals discarded" in second.format_summary()


class TestCacheCorruption:
    def test_corrupted_cache_entry_recomputes_identically(
            self, small_program, small_execution, small_pipeline, reference,
            tmp_path):
        chaos = ChaosConfig(modes=("corrupt-cache",), seed=8)
        first = Telemetry()
        with use_runtime(telemetry=first, policy=FAST, chaos=chaos,
                         cache_dir=tmp_path) as cold:
            run_campaign(small_program, small_execution, small_pipeline,
                         CONFIG)
        # Two puts: the effect-oracle table and the campaign tally (only
        # the tally is the chaos corruption target).
        assert cold.cache.puts == 2
        assert first.counters["chaos_corruptions"] == 1

        # Warm run sees the garbled entry, treats it as a miss, recomputes
        # bit-identically, and overwrites it with a sound entry.
        with use_runtime(policy=FAST, cache_dir=tmp_path) as warm:
            result = run_campaign(small_program, small_execution,
                                  small_pipeline, CONFIG)
        assert result.counts == reference.counts
        assert warm.cache.errors == 1
        assert warm.cache.puts == 1

        with use_runtime(policy=FAST, cache_dir=tmp_path) as third:
            again = run_campaign(small_program, small_execution,
                                 small_pipeline, CONFIG)
        assert again.counts == reference.counts
        assert third.cache.hits == 1 and third.cache.errors == 0


# -- Supervisor-level validation (module-level fns: must pickle) ----------

def _echo_attempt(base, attempt):
    return base + attempt


def _require_base_plus_one(value, task):
    if value != task.key + 1:
        raise ResultInvalid(f"task {task.key} returned {value!r}")


class TestResultValidation:
    def test_invalid_results_are_retried(self):
        """Attempt 0 returns garbage; the validator rejects it and the
        retry (attempt 1) passes — across a real worker pool."""
        telemetry = Telemetry()
        collected = {}
        supervisor = Supervisor(
            FAST, label="echo", max_workers=2, telemetry=telemetry,
            validate=_require_base_plus_one,
            on_result=lambda index, task, value: collected.__setitem__(
                task.key, value))
        tasks = [SupervisedTask(fn=_echo_attempt, args=(key,), key=key,
                                deadline=False) for key in (10, 20)]
        quarantined = supervisor.run_pooled(tasks)
        assert quarantined == []
        assert collected == {10: 11, 20: 21}
        assert supervisor.retries == 2
        assert telemetry.counters["results_invalid"] == 2

    def test_exhausted_invalid_result_raises(self):
        supervisor = Supervisor(
            RetryPolicy(retries=0, backoff_base=0.001, backoff_cap=0.002),
            label="echo", validate=_require_base_plus_one)
        task = SupervisedTask(fn=_echo_attempt, args=(7,), key=999,
                              deadline=False)
        with pytest.raises(ResultInvalid, match="999"):
            supervisor.run_serial([task])
