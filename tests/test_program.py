"""Tests for Program and FunctionInfo."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import FunctionInfo, Program


def make_program():
    code = [
        Instruction(Opcode.MOVI, r1=1, imm=5),
        Instruction(Opcode.BR, imm=2),
        Instruction(Opcode.NOP),
        Instruction(Opcode.HALT),
        Instruction(Opcode.ADD, r1=2, r2=1, r3=1),
        Instruction(Opcode.RET),
    ]
    functions = [FunctionInfo("main", 0, 4), FunctionInfo("leaf", 4, 6)]
    return Program(code, functions, entry=0, name="p")


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Program([], [], entry=0)

    def test_entry_out_of_range(self):
        with pytest.raises(ValueError):
            Program([Instruction(Opcode.HALT)], [], entry=5)

    def test_function_past_end_rejected(self):
        with pytest.raises(ValueError):
            Program([Instruction(Opcode.HALT)],
                    [FunctionInfo("f", 0, 9)])

    def test_bad_function_range(self):
        with pytest.raises(ValueError):
            FunctionInfo("f", 3, 3)


class TestFetch:
    def test_in_range(self):
        program = make_program()
        assert program.fetch(0).opcode is Opcode.MOVI

    def test_out_of_range_is_nop(self):
        program = make_program()
        assert program.fetch(100).opcode is Opcode.NOP
        assert program.fetch(-1).opcode is Opcode.NOP

    def test_len(self):
        assert len(make_program()) == 6


class TestFunctions:
    def test_function_at(self):
        program = make_program()
        assert program.function_at(0).name == "main"
        assert program.function_at(5).name == "leaf"

    def test_function_at_gap(self):
        program = Program([Instruction(Opcode.HALT)], [])
        assert program.function_at(0) is None

    def test_contains(self):
        info = FunctionInfo("f", 2, 5)
        assert info.contains(2) and info.contains(4)
        assert not info.contains(5)


class TestBranchTarget:
    def test_relative_target(self):
        program = make_program()
        assert program.branch_target(1) == 3

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            make_program().branch_target(0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_program().branch_target(99)


class TestDisassemble:
    def test_labels_and_pcs(self):
        text = make_program().disassemble()
        assert "main:" in text
        assert "leaf:" in text
        assert "halt" in text

    def test_range_clamped(self):
        text = make_program().disassemble(4, 100)
        assert "movi" not in text
        assert "ret" in text
