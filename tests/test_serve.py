"""AVF-as-a-service correctness.

Golden equivalence: every answer the server produces — warm, cold, or
under concurrency — must be byte-identical (:func:`canonical_dumps`) to
encoding a direct ``run_benchmark`` / ``run_campaign`` call for the same
tuple. Plus protocol-level behaviour: malformed requests get structured
errors on a connection that stays usable, and a client disconnecting
mid-stream neither kills the server nor wastes its computation.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    clear_caches,
    run_benchmark,
)
from repro.faults.campaign import run_campaign
from repro.runtime.context import use_runtime
from repro.serve.client import AsyncServeClient, ServeError
from repro.serve.protocol import (
    canonical_dumps,
    encode_benchmark,
    encode_campaign,
    parse_query,
)
from repro.serve.server import AvfServer, ServeConfig
from repro.workloads.spec2000 import get_profile

#: Small enough to answer in well under a second on the real engine.
AVF_REQUEST = {"op": "avf", "profile": "crafty",
               "target_instructions": 1500, "seed": 77}
CAMPAIGN_REQUEST = {"op": "campaign", "profile": "mcf",
                    "target_instructions": 1500, "seed": 77,
                    "trials": 20, "campaign_seed": 9, "parity": True}


def serve_scenario(scenario, resolver=None, config=None):
    """Boot a fresh server on an ephemeral port, run ``scenario(server)``."""

    async def main():
        server = AvfServer(
            config or ServeConfig(host="127.0.0.1", port=0),
            resolver=resolver)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(main())


async def ask(server, request, collect_events=None):
    client = await AsyncServeClient().connect("127.0.0.1", server.port)
    try:
        return await client.request(dict(request), collect_events)
    finally:
        await client.close()


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_caches()
    yield
    clear_caches()


class TestGoldenEquivalence:
    def test_avf_answer_matches_direct_engine_call(self):
        with use_runtime():
            query = parse_query(AVF_REQUEST)
            direct = encode_benchmark(run_benchmark(
                get_profile(query.profile_name),
                ExperimentSettings(target_instructions=1500, seed=77),
                machine=query.machine))

            async def scenario(server):
                client = await AsyncServeClient().connect(
                    "127.0.0.1", server.port)
                try:
                    cold = await client.request(dict(AVF_REQUEST))
                    warm = await client.request(dict(AVF_REQUEST))
                finally:
                    await client.close()
                return cold, warm

            cold, warm = serve_scenario(scenario)
        assert cold["status"] == "cold"
        assert warm["status"] == "warm"
        assert canonical_dumps(cold["value"]) == canonical_dumps(direct)
        assert canonical_dumps(warm["value"]) == canonical_dumps(direct)

    def test_campaign_answer_matches_direct_engine_call(self):
        with use_runtime():
            query = parse_query(CAMPAIGN_REQUEST)
            run = run_benchmark(
                get_profile(query.profile_name),
                ExperimentSettings(target_instructions=1500, seed=77),
                machine=query.machine)
            direct = encode_campaign(run_campaign(
                run.program, run.execution, run.pipeline, query.campaign))
            served = serve_scenario(
                lambda server: ask(server, CAMPAIGN_REQUEST))
        assert served["status"] == "cold"
        assert canonical_dumps(served["value"]) == canonical_dumps(direct)
        # The encoder drops zero-count outcomes, so the payload is stable
        # against outcome-enum growth; sanity-check the shape.
        assert served["value"]["trials"] == 20
        assert all(count > 0 for count in served["value"]["counts"].values())

    def test_concurrent_identical_queries_all_match_direct(self):
        """Six racing clients, one simulation, six byte-identical answers."""
        with use_runtime():
            query = parse_query(AVF_REQUEST)
            direct = encode_benchmark(run_benchmark(
                get_profile(query.profile_name),
                ExperimentSettings(target_instructions=1500, seed=77),
                machine=query.machine))
            clear_caches()  # the server must recompute, not reuse memos

            async def scenario(server):
                finals = await asyncio.gather(
                    *(ask(server, AVF_REQUEST) for _ in range(6)))
                return finals, dict(server.stats)

            finals, stats = serve_scenario(scenario)
        assert len(finals) == 6
        for final in finals:
            assert canonical_dumps(final["value"]) == canonical_dumps(direct)
        assert stats["serve_cold_computes"] == 1
        assert (stats.get("serve_warm_hits", 0)
                + stats.get("serve_coalesced", 0)) == 5


class TestProtocol:
    def test_malformed_request_is_structured_error(self):
        """Garbage on the wire answers with an error object — and the
        connection remains usable for the next, well-formed request."""

        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                error = json.loads(await reader.readline())
                writer.write(b'{"op": "ping", "id": 7}\n')
                await writer.drain()
                pong = json.loads(await reader.readline())
            finally:
                writer.close()
                await writer.wait_closed()
            return error, pong, dict(server.stats)

        with use_runtime():
            error, pong, stats = serve_scenario(scenario)
        assert error["event"] == "error"
        assert error["ok"] is False
        assert error["error"]["code"] == "bad-json"
        assert pong == {"id": 7, "event": "result", "ok": True,
                        "status": "warm", "value": "pong"}
        assert stats["serve_errors"] == 1

    def test_bad_fields_map_to_structured_codes(self):
        cases = [
            ({"op": "frobnicate"}, "unknown-op"),
            ({"op": "avf"}, "bad-request"),  # missing profile
            ({"op": "avf", "profile": "nosuchbench"}, "unknown-profile"),
            ({"op": "avf", "profile": "crafty", "trigger": "l9_miss"},
             "bad-request"),
            ({"op": "avf", "profile": "crafty",
              "machine": {"fetch_width": "wide"}}, "bad-request"),
            ({"op": "avf", "profile": "crafty",
              "machine": {"warp_drive": 1}}, "bad-request"),
            ({"op": "avf", "profile": "crafty",
              "target_instructions": -5}, "bad-request"),
            ({"op": "campaign", "profile": "crafty", "trials": 0},
             "bad-request"),
            ({"op": "campaign", "profile": "crafty",
              "tracking": "FULL_PSYCHIC"}, "bad-request"),
            ({"op": "store.get", "key": "shorty"}, "bad-request"),
        ]

        async def scenario(server):
            client = await AsyncServeClient().connect(
                "127.0.0.1", server.port)
            codes = []
            try:
                for request, _ in cases:
                    with pytest.raises(ServeError) as exc_info:
                        await client.request(dict(request))
                    codes.append(exc_info.value.code)
                # After ten rejected requests the connection still works.
                pong = await client.request({"op": "ping"})
            finally:
                await client.close()
            return codes, pong

        with use_runtime():
            codes, pong = serve_scenario(scenario)
        assert codes == [expected for _, expected in cases]
        assert pong["value"] == "pong"

    def test_client_disconnect_mid_stream_wastes_nothing(self):
        """A client vanishing between ``accepted`` and ``result`` must not
        crash the server or cancel the computation: the next asker gets
        the answer without a recompute."""
        started = threading.Event()
        release = threading.Event()
        calls = []

        def gated_resolver(query):
            calls.append(query.key)
            started.set()
            assert release.wait(10), "test deadlock: resolver never released"
            return {"echo": query.seed}

        request = {"op": "avf", "profile": "crafty",
                   "target_instructions": 500, "seed": 3}

        async def scenario(server):
            loop = asyncio.get_running_loop()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port)
            writer.write((json.dumps({**request, "id": 1}) + "\n").encode())
            await writer.drain()
            accepted = json.loads(await reader.readline())
            assert accepted["event"] == "accepted"
            assert accepted["status"] == "cold"
            # Wait until the compute thread is inside the resolver, then
            # vanish abruptly with the result still pending.
            await loop.run_in_executor(None, started.wait, 10)
            writer.close()
            await writer.wait_closed()
            release.set()
            final = await ask(server, request)
            pong = await ask(server, {"op": "ping"})
            return final, pong, dict(server.stats)

        with use_runtime():
            final, pong, stats = serve_scenario(
                scenario, resolver=gated_resolver)
        assert final["value"] == {"echo": 3}
        assert final["status"] in ("warm", "cold")
        assert pong["value"] == "pong"
        assert len(calls) == 1, "disconnect must not trigger a recompute"
        assert stats["serve_cold_computes"] == 1

    def test_compute_failure_is_per_request_not_fatal(self):
        def exploding_resolver(query):
            raise RuntimeError("engine said no")

        async def scenario(server):
            client = await AsyncServeClient().connect(
                "127.0.0.1", server.port)
            try:
                with pytest.raises(ServeError) as exc_info:
                    await client.request({"op": "avf", "profile": "crafty",
                                          "seed": 11})
                pong = await client.request({"op": "ping"})
            finally:
                await client.close()
            return exc_info.value, pong, dict(server.stats)

        with use_runtime():
            error, pong, stats = serve_scenario(
                scenario, resolver=exploding_resolver)
        assert error.code == "compute-failed"
        assert "engine said no" in error.message
        assert pong["value"] == "pong"
        assert stats["serve_compute_failures"] == 1
