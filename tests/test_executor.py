"""Functional-simulator semantics tests on hand-written programs."""

import pytest

from repro.arch.executor import ExecutionLimits, FunctionalSimulator
from repro.arch.result import ExecutionStatus
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import FunctionInfo, Program
from tests.helpers import I, program, run


def outputs_of(*instructions):
    result = run(list(instructions))
    assert result.status is ExecutionStatus.HALTED
    return result.outputs


class TestAluSemantics:
    def _binop(self, opcode, a, b):
        return outputs_of(
            I(Opcode.MOVI, r1=1, imm=a),
            I(Opcode.MOVI, r1=2, imm=b),
            I(opcode, r1=3, r2=1, r3=2),
            I(Opcode.OUT, r2=3),
        )[0]

    def test_add(self):
        assert self._binop(Opcode.ADD, 5, 7) == 12

    def test_sub_wraps(self):
        assert self._binop(Opcode.SUB, 3, 5) == (1 << 64) - 2

    def test_and_or_xor(self):
        assert self._binop(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert self._binop(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert self._binop(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_shl_mod_64(self):
        assert self._binop(Opcode.SHL, 1, 4) == 16
        assert self._binop(Opcode.SHL, 1, 64) == 1  # shift amount mod 64

    def test_shr_logical(self):
        assert self._binop(Opcode.SHR, 16, 3) == 2

    def test_mul_wraps(self):
        big = (1 << 20) + 3
        assert self._binop(Opcode.MUL, big, big) == (big * big) & ((1 << 64) - 1)

    def test_addi_negative(self):
        assert outputs_of(
            I(Opcode.MOVI, r1=1, imm=10),
            I(Opcode.ADDI, r1=2, r2=1, imm=-3),
            I(Opcode.OUT, r2=2),
        )[0] == 7

    def test_andi(self):
        assert outputs_of(
            I(Opcode.MOVI, r1=1, imm=0b1111),
            I(Opcode.ANDI, r1=2, r2=1, imm=0b0101),
            I(Opcode.OUT, r2=2),
        )[0] == 0b0101

    def test_movi_negative(self):
        assert outputs_of(
            I(Opcode.MOVI, r1=1, imm=-2),
            I(Opcode.OUT, r2=1),
        )[0] == (1 << 64) - 2

    def test_writes_to_r0_discarded(self):
        assert outputs_of(
            I(Opcode.MOVI, r1=0, imm=55),
            I(Opcode.OUT, r2=0),
        )[0] == 0


class TestMemorySemantics:
    def test_store_load_roundtrip(self):
        assert outputs_of(
            I(Opcode.MOVI, r1=1, imm=0x100),
            I(Opcode.MOVI, r1=2, imm=77),
            I(Opcode.ST, r1=2, r2=1, imm=4),
            I(Opcode.LD, r1=3, r2=1, imm=4),
            I(Opcode.OUT, r2=3),
        )[0] == 77

    def test_unmapped_load_is_zero(self):
        assert outputs_of(
            I(Opcode.MOVI, r1=1, imm=0x100),
            I(Opcode.LD, r1=3, r2=1, imm=0),
            I(Opcode.OUT, r2=3),
        )[0] == 0

    def test_trace_records_addresses(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=0x20),
            I(Opcode.ST, r1=1, r2=1, imm=1),
            I(Opcode.LD, r1=2, r2=1, imm=1),
        ])
        store = result.trace[1]
        load = result.trace[2]
        assert store.is_store and store.mem_addr == 0x21
        assert load.is_load and load.mem_addr == 0x21


class TestCompareAndPredication:
    def test_cmp_eq_sets_predicate(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=4),
            I(Opcode.CMP_EQ, r1=5, r2=1, r3=1),
            I(Opcode.ADD, qp=5, r1=2, r2=1, r3=1),
            I(Opcode.OUT, r2=2),
        ])
        assert result.outputs[0] == 8

    def test_false_predicate_nullifies(self):
        result = run([
            I(Opcode.MOVI, r1=2, imm=9),
            I(Opcode.ADD, qp=7, r1=2, r2=2, r3=2),  # p7 false
            I(Opcode.OUT, r2=2),
        ])
        assert result.outputs[0] == 9
        assert result.trace[1].predicated_false
        assert result.trace[1].dest_gpr == 0  # no architectural write

    def test_cmp_lt_signed(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=-5),
            I(Opcode.MOVI, r1=2, imm=3),
            I(Opcode.CMP_LT, r1=6, r2=1, r3=2),
            I(Opcode.MOVI, qp=6, r1=3, imm=1),
            I(Opcode.OUT, r2=3),
        ])
        assert result.outputs[0] == 1  # -5 < 3 signed

    def test_cmp_ne(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=2),
            I(Opcode.CMP_NE, r1=6, r2=1, r3=0),
            I(Opcode.MOVI, qp=6, r1=3, imm=42),
            I(Opcode.OUT, r2=3),
        ])
        assert result.outputs[0] == 42

    def test_writes_to_p0_discarded(self):
        result = run([
            I(Opcode.CMP_NE, r1=64, r2=0, r3=0),  # p0 <- (0 != 0) = False
            I(Opcode.MOVI, qp=0, r1=3, imm=5),  # still executes: p0 true
            I(Opcode.OUT, r2=3),
        ])
        assert result.outputs[0] == 5


class TestControlFlow:
    def test_taken_branch_skips(self):
        result = run([
            I(Opcode.BR, imm=2),  # qp=0 (p0): always taken
            I(Opcode.MOVI, r1=1, imm=99),  # skipped
            I(Opcode.OUT, r2=1),
        ])
        assert result.outputs[0] == 0

    def test_nullified_branch_falls_through(self):
        result = run([
            I(Opcode.BR, qp=9, imm=2),  # p9 false: not taken
            I(Opcode.MOVI, r1=1, imm=99),
            I(Opcode.OUT, r2=1),
        ])
        assert result.outputs[0] == 99
        assert not result.trace[0].branch_taken

    def test_loop_counts(self):
        # r1 counts down from 3; r2 accumulates.
        result = run([
            I(Opcode.MOVI, r1=1, imm=3),
            I(Opcode.MOVI, r1=2, imm=0),
            I(Opcode.ADDI, r1=2, r2=2, imm=1),  # loop head (pc 2)
            I(Opcode.ADDI, r1=1, r2=1, imm=-1),
            I(Opcode.CMP_NE, r1=5, r2=1, r3=0),
            I(Opcode.BR, qp=5, imm=-3),
            I(Opcode.OUT, r2=2),
        ])
        assert result.outputs[0] == 3

    def test_call_ret(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.CALL, imm=4),  # -> pc 5
            I(Opcode.OUT, r2=8),
            I(Opcode.HALT),
            I(Opcode.NOP),  # padding
            I(Opcode.ADDI, r1=8, r2=1, imm=1),  # leaf
            I(Opcode.RET),
        ]
        result = FunctionalSimulator(
            Program(code, [FunctionInfo("leaf", 5, 7)], entry=0)).run()
        assert result.status is ExecutionStatus.HALTED
        assert result.outputs[0] == 6

    def test_invocation_records(self):
        code = [
            I(Opcode.CALL, imm=2),
            I(Opcode.HALT),
            I(Opcode.RET),
        ]
        result = FunctionalSimulator(Program(code, [], entry=0)).run()
        assert len(result.invocations) == 2
        inv = result.invocations[1]
        assert inv.entry_pc == 2 and inv.returned
        assert result.trace[1].invocation == 1  # the RET runs in invocation 1
        assert result.invocations[0].call_seq == -1


class TestAbnormalTermination:
    def test_illegal_opcode_traps(self):
        result = run([Instruction(Opcode.ILLEGAL)])
        assert result.status is ExecutionStatus.TRAP_ILLEGAL

    def test_ret_underflow(self):
        result = run([I(Opcode.RET)])
        assert result.status is ExecutionStatus.RET_UNDERFLOW

    def test_jump_out_of_range_traps(self):
        result = run([I(Opcode.BR, imm=1000)])
        assert result.status is ExecutionStatus.TRAP_ILLEGAL

    def test_infinite_loop_hits_limit(self):
        sim = FunctionalSimulator(
            program([I(Opcode.BR, imm=0)]),
            limits=ExecutionLimits(max_instructions=100))
        assert sim.run().status is ExecutionStatus.LIMIT

    def test_limits_validated(self):
        with pytest.raises(ValueError):
            ExecutionLimits(max_instructions=0)


class TestOverride:
    def test_override_changes_one_dynamic_instruction(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.OUT, r2=1),
        ]
        sim = FunctionalSimulator(program(code))
        baseline = sim.run()
        corrupted = sim.run(
            override_seq=0,
            override_instruction=I(Opcode.MOVI, r1=1, imm=6))
        assert baseline.outputs == (5,)
        assert corrupted.outputs == (6,)

    def test_override_requires_both_args(self):
        sim = FunctionalSimulator(program([I(Opcode.NOP)]))
        with pytest.raises(ValueError):
            sim.run(override_seq=0)

    def test_record_trace_false_keeps_outputs(self):
        sim = FunctionalSimulator(program([
            I(Opcode.MOVI, r1=1, imm=5), I(Opcode.OUT, r2=1)]))
        result = sim.run(record_trace=False)
        assert result.outputs == (5,)
        assert result.trace == []

    def test_determinism(self):
        sim = FunctionalSimulator(program([
            I(Opcode.MOVI, r1=1, imm=5), I(Opcode.OUT, r2=1)]))
        assert sim.run().output_signature() == sim.run().output_signature()
