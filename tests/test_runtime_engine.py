"""Golden equivalence tests: parallel execution is bit-identical to serial.

These pin the core determinism contract of the runtime engine: for any
worker count, campaign tallies (outcome counters, AVF estimates,
confidence intervals) and experiment results (IPC, AVF reports) match the
serial path exactly.
"""

import pytest

from repro.due.outcomes import FaultOutcome
from repro.due.tracking import TrackingLevel
from repro.experiments.common import (
    ExperimentSettings,
    clear_caches,
    prefetch_functional,
    run_benchmarks,
)
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.pipeline.config import Trigger
from repro.runtime.context import use_runtime
from repro.workloads.profile import BenchmarkProfile

_CAMPAIGN_VARIANTS = [
    pytest.param(dict(parity=False, tracking=TrackingLevel.PARITY_ONLY),
                 id="unprotected"),
    pytest.param(dict(parity=True, tracking=TrackingLevel.PARITY_ONLY),
                 id="parity"),
    pytest.param(dict(parity=True, tracking=TrackingLevel.MEM_PI),
                 id="tracked"),
]


def _tiny_profile(name: str, **overrides) -> BenchmarkProfile:
    defaults = dict(suite="int", body_items=60, w_noop=20.0,
                    w_branch_rand=2.0, fetch_bubble_prob=0.25, seed_salt=7)
    defaults.update(overrides)
    return BenchmarkProfile(name=name, **defaults)


class TestCampaignEquivalence:
    @pytest.mark.parametrize("variant", _CAMPAIGN_VARIANTS)
    def test_jobs_1_2_4_identical(self, variant, small_program,
                                  small_execution, small_pipeline):
        config = CampaignConfig(trials=45, seed=13, **variant)
        results = {
            jobs: run_campaign(small_program, small_execution,
                               small_pipeline, config, jobs=jobs)
            for jobs in (1, 2, 4)
        }
        reference = results[1]
        for jobs, result in results.items():
            assert result.counts == reference.counts, f"jobs={jobs}"
            assert result.tracker_misses == reference.tracker_misses
            assert result.trials == config.trials
            for outcome in FaultOutcome:
                assert result.rate(outcome) == reference.rate(outcome)
                assert result.rate_confidence(outcome) == \
                    reference.rate_confidence(outcome)
            assert result.sdc_avf_estimate == reference.sdc_avf_estimate
            assert result.due_avf_estimate == reference.due_avf_estimate

    def test_context_jobs_used_when_not_passed(self, small_program,
                                               small_execution,
                                               small_pipeline):
        config = CampaignConfig(trials=30, seed=21, parity=True)
        serial = run_campaign(small_program, small_execution, small_pipeline,
                              config, jobs=1)
        with use_runtime(jobs=2):
            parallel = run_campaign(small_program, small_execution,
                                    small_pipeline, config)
        assert parallel.counts == serial.counts

    def test_telemetry_counts_trials(self, small_program, small_execution,
                                     small_pipeline):
        config = CampaignConfig(trials=20, seed=4)
        with use_runtime(jobs=2) as context:
            run_campaign(small_program, small_execution, small_pipeline,
                         config)
            assert context.telemetry.counters["campaign_trials"] == 20
            assert context.telemetry.spans["campaign"] > 0.0
            workers = [t for t in context.telemetry.worker_timings
                       if t.label == "campaign"]
            assert sum(t.items for t in workers) == 20


class TestExperimentEquivalence:
    @pytest.mark.parametrize("trigger", [Trigger.NONE, Trigger.L1_MISS])
    def test_run_benchmarks_parallel_matches_serial(self, trigger):
        profiles = [_tiny_profile("eq-a"), _tiny_profile("eq-b", suite="fp"),
                    _tiny_profile("eq-c", w_cold_load=1.2)]
        settings = ExperimentSettings(target_instructions=2500)
        clear_caches()
        serial = run_benchmarks(profiles, settings, trigger, jobs=1)
        clear_caches()
        parallel = run_benchmarks(profiles, settings, trigger, jobs=2)
        clear_caches()
        for left, right in zip(serial, parallel):
            assert left.pipeline.cycles == right.pipeline.cycles
            assert left.pipeline.committed == right.pipeline.committed
            assert left.report.ipc == right.report.ipc
            assert left.report.sdc_avf == right.report.sdc_avf
            assert left.report.due_avf == right.report.due_avf
            assert left.report.false_due_avf == right.report.false_due_avf
            assert [i.encode() for i in left.program.instructions] == \
                [i.encode() for i in right.program.instructions]

    def test_prefetch_functional_parallel_matches_serial(self):
        profiles = [_tiny_profile("pf-a"), _tiny_profile("pf-b", w_mul=6.0)]
        settings = ExperimentSettings(target_instructions=2500)
        clear_caches()
        serial = prefetch_functional(profiles, settings, jobs=1)
        clear_caches()
        parallel = prefetch_functional(profiles, settings, jobs=2)
        clear_caches()
        for (p1, e1, d1), (p2, e2, d2) in zip(serial, parallel):
            assert [i.encode() for i in p1.instructions] == \
                [i.encode() for i in p2.instructions]
            assert e1.output_signature() == e2.output_signature()
            assert len(e1.trace) == len(e2.trace)

    def test_parallel_results_are_memoised(self):
        profiles = [_tiny_profile("memo-a"), _tiny_profile("memo-b")]
        settings = ExperimentSettings(target_instructions=2500)
        clear_caches()
        with use_runtime(jobs=2) as context:
            first = run_benchmarks(profiles, settings, Trigger.NONE)
            sims = context.telemetry.counters["pipeline_sims"]
            assert sims == len(profiles)
            second = run_benchmarks(profiles, settings, Trigger.NONE)
            assert context.telemetry.counters["pipeline_sims"] == sims
        clear_caches()
        assert [r.report.ipc for r in first] == \
            [r.report.ipc for r in second]
