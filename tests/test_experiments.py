"""Experiment-module tests at miniature scale.

These exercise the full exhibit pipeline (all the paper's tables and
figures) over a handful of profiles and small traces, asserting the
*qualitative* relationships the paper reports.
"""

import pytest

from repro.due.tracking import TrackingLevel
from repro.experiments import figure1, figure2, figure3, figure4
from repro.experiments import occupancy as occupancy_exp
from repro.experiments import table1, table2
from repro.experiments.common import (
    ExperimentSettings,
    average_reports,
    clear_caches,
    run_benchmark,
)
from repro.pipeline.config import Trigger
from repro.workloads.spec2000 import ALL_PROFILES, get_profile

SETTINGS = ExperimentSettings(target_instructions=10_000, seed=42)
PROFILES = [get_profile(name) for name in
            ("crafty", "mcf", "ammp", "swim")]


class TestCommon:
    def test_run_benchmark_memoised(self):
        first = run_benchmark(PROFILES[0], SETTINGS, Trigger.NONE)
        second = run_benchmark(PROFILES[0], SETTINGS, Trigger.NONE)
        assert first is second

    def test_average_reports(self):
        reports = [run_benchmark(p, SETTINGS, Trigger.NONE).report
                   for p in PROFILES[:2]]
        means = average_reports(reports)
        assert means["sdc_avf"] == pytest.approx(
            (reports[0].sdc_avf + reports[1].sdc_avf) / 2)

    def test_average_reports_empty(self):
        with pytest.raises(ValueError):
            average_reports([])

    def test_report_fields(self):
        report = run_benchmark(PROFILES[0], SETTINGS, Trigger.NONE).report
        assert 0 < report.sdc_avf < 1
        assert report.due_avf > report.sdc_avf
        assert report.ipc_over_sdc_avf > report.ipc_over_due_avf
        residency = report.residency_summary()
        assert sum(residency.values()) == pytest.approx(1.0, abs=0.02)


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(SETTINGS, PROFILES)

    def test_three_rows(self, result):
        assert [r.design_point for r in result.rows] == [
            "No squashing", "Squash on L1 load misses",
            "Squash on L0 load misses"]

    def test_squash_reduces_avf(self, result):
        base, l1, l0 = result.rows
        assert l1.sdc_avf < base.sdc_avf
        assert l1.due_avf < base.due_avf
        assert l0.sdc_avf <= l1.sdc_avf * 1.1

    def test_squash_costs_ipc(self, result):
        base, l1, l0 = result.rows
        assert l1.ipc <= base.ipc
        assert l0.ipc <= l1.ipc * 1.02

    def test_mitf_improves(self, result):
        assert result.mitf_gain("Squash on L1 load misses", "sdc") > 0
        assert result.mitf_gain("Squash on L1 load misses", "due") > 0

    def test_format(self, result):
        text = table1.format_result(result)
        assert "Design Point" in text
        assert "MITF" in text


class TestTable2:
    def test_catalogue_format(self):
        text = table2.format_result()
        assert "crafty" in text and "wupwise" in text
        assert "120,600 M" in text


class TestOccupancy:
    def test_rows_and_averages(self):
        result = occupancy_exp.run(SETTINGS, PROFILES)
        avg = result.averages()
        assert sum(avg.values()) == pytest.approx(1.0, abs=0.02)
        text = occupancy_exp.format_result(result)
        assert "Parity-protected DUE AVF" in text

    def test_redecode_ablation_raises_false_due(self):
        result = occupancy_exp.run(SETTINGS, PROFILES)
        for row in result.rows:
            assert row.false_due_with_redecode > row.valid_unace


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return figure2.run(SETTINGS, PROFILES)

    def test_coverage_monotone(self, result):
        for row in result.rows:
            values = [row.coverage[lvl] for lvl in (
                TrackingLevel.PI_COMMIT, TrackingLevel.ANTI_PI,
                TrackingLevel.PET, TrackingLevel.REG_PI,
                TrackingLevel.STORE_PI, TrackingLevel.MEM_PI)]
            assert values == sorted(values)

    def test_full_coverage_at_mem_pi(self, result):
        assert result.average_coverage(TrackingLevel.MEM_PI) == \
            pytest.approx(1.0)

    def test_format(self, result):
        text = figure2.format_result(result)
        assert "anti-pi" in text
        assert "100%" in text


class TestFigure3:
    def test_curves(self):
        result = figure3.run(SETTINGS, PROFILES, sizes=(64, 512, 4096))
        for label, _ in figure3.SERIES:
            values = [result.coverage(label, s) for s in (64, 512, 4096)]
            assert values == sorted(values)
        # Cumulative series nest at every size.
        for size in (64, 512, 4096):
            series = [result.coverage(label, size)
                      for label, _ in figure3.SERIES]
            assert series == sorted(series)
        assert "512" in figure3.format_result(result)


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(SETTINGS, PROFILES)

    def test_relative_avfs_below_one(self, result):
        assert result.average_relative_sdc() < 1.0
        assert result.average_relative_due() < 1.0

    def test_combined_beats_squash_alone(self, result):
        # DUE reduction (squash + tracking) exceeds SDC reduction
        # (squash alone) on average, as in the paper (57 % vs 26 %).
        assert result.average_relative_due() < result.average_relative_sdc()

    def test_ipc_cost_small(self, result):
        assert -0.25 < result.average_ipc_change() <= 0.01

    def test_row_lookup(self, result):
        assert result.row("mcf").benchmark == "mcf"
        with pytest.raises(KeyError):
            result.row("nope")

    def test_format(self, result):
        text = figure4.format_result(result)
        assert "Average relative SDC AVF" in text


class TestFigure1:
    def test_campaign_columns(self):
        result = figure1.run(SETTINGS, benchmark="crafty", trials=60)
        text = figure1.format_result(result)
        assert "unprotected" in text
        assert result.parity.counts  # some outcomes observed
        # Parity never leaves silent corruption undetected.
        from repro.due.outcomes import FaultOutcome
        assert result.parity.counts[FaultOutcome.SDC] == 0
