"""Tests for the CodeBuilder mini-assembler."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.workloads.builder import CodeBuilder


class TestEmit:
    def test_pcs_sequential(self):
        builder = CodeBuilder()
        assert builder.emit(Instruction(Opcode.NOP)) == 0
        assert builder.emit(Instruction(Opcode.NOP)) == 1
        assert builder.here == 2


class TestLabels:
    def test_forward_fixup(self):
        builder = CodeBuilder()
        target = builder.label("fwd")
        builder.emit_control(Opcode.BR, target)
        builder.emit(Instruction(Opcode.NOP))
        builder.bind(target)
        builder.emit(Instruction(Opcode.HALT))
        program = builder.build()
        assert program.branch_target(0) == 2

    def test_backward_fixup(self):
        builder = CodeBuilder()
        head = builder.label("head")
        builder.bind(head)
        builder.emit(Instruction(Opcode.NOP))
        builder.emit_control(Opcode.BR, head)
        program = builder.build()
        assert program.branch_target(1) == 0

    def test_unbound_label_rejected_at_build(self):
        builder = CodeBuilder()
        builder.emit_control(Opcode.BR, builder.label("nowhere"))
        with pytest.raises(ValueError):
            builder.build()

    def test_double_bind_rejected(self):
        builder = CodeBuilder()
        label = builder.label()
        builder.bind(label)
        with pytest.raises(ValueError):
            builder.bind(label)

    def test_emit_control_rejects_non_control(self):
        builder = CodeBuilder()
        with pytest.raises(ValueError):
            builder.emit_control(Opcode.ADD, builder.label())


class TestFunctions:
    def test_extents_recorded(self):
        builder = CodeBuilder()
        builder.begin_function("f")
        builder.emit(Instruction(Opcode.NOP))
        builder.emit(Instruction(Opcode.RET))
        builder.end_function()
        builder.emit(Instruction(Opcode.HALT))
        program = builder.build()
        assert program.functions[0].name == "f"
        assert (program.functions[0].entry, program.functions[0].end) == (0, 2)

    def test_nested_function_rejected(self):
        builder = CodeBuilder()
        builder.begin_function("a")
        with pytest.raises(ValueError):
            builder.begin_function("b")

    def test_end_without_begin_rejected(self):
        with pytest.raises(ValueError):
            CodeBuilder().end_function()

    def test_unclosed_function_rejected_at_build(self):
        builder = CodeBuilder()
        builder.begin_function("open")
        builder.emit(Instruction(Opcode.HALT))
        with pytest.raises(ValueError):
            builder.build()
