"""Unit and property tests for repro.util.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bit_is_set,
    clear_bit,
    extract_field,
    flip_bit,
    insert_field,
    mask,
    popcount,
    set_bit,
)

values = st.integers(min_value=0, max_value=(1 << 64) - 1)
bits = st.integers(min_value=0, max_value=63)


class TestMask:
    def test_zero_width(self):
        assert mask(0) == 0

    def test_small(self):
        assert mask(4) == 0b1111

    def test_41_bits(self):
        assert mask(41) == (1 << 41) - 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitOps:
    def test_set_bit(self):
        assert set_bit(0, 3) == 8

    def test_set_bit_idempotent(self):
        assert set_bit(8, 3) == 8

    def test_clear_bit(self):
        assert clear_bit(0b1111, 1) == 0b1101

    def test_clear_unset_bit(self):
        assert clear_bit(0b1001, 1) == 0b1001

    def test_flip_set(self):
        assert flip_bit(0, 5) == 32

    def test_flip_clear(self):
        assert flip_bit(32, 5) == 0

    def test_bit_is_set(self):
        assert bit_is_set(0b100, 2)
        assert not bit_is_set(0b100, 1)

    def test_negative_bit_rejected(self):
        for fn in (set_bit, clear_bit, flip_bit, bit_is_set):
            with pytest.raises(ValueError):
                fn(1, -1)

    @given(values, bits)
    def test_flip_twice_is_identity(self, value, bit):
        assert flip_bit(flip_bit(value, bit), bit) == value

    @given(values, bits)
    def test_flip_changes_exactly_one_bit(self, value, bit):
        assert popcount(value ^ flip_bit(value, bit)) == 1

    @given(values, bits)
    def test_set_then_query(self, value, bit):
        assert bit_is_set(set_bit(value, bit), bit)

    @given(values, bits)
    def test_clear_then_query(self, value, bit):
        assert not bit_is_set(clear_bit(value, bit), bit)


class TestPopcount:
    def test_zero(self):
        assert popcount(0) == 0

    def test_all_ones(self):
        assert popcount(mask(41)) == 41

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    @given(values, bits)
    def test_set_bit_increments(self, value, bit):
        cleared = clear_bit(value, bit)
        assert popcount(set_bit(cleared, bit)) == popcount(cleared) + 1


class TestFields:
    def test_extract(self):
        assert extract_field(0b110100, lo=2, width=3) == 0b101

    def test_insert(self):
        assert insert_field(0, lo=2, width=3, field=0b101) == 0b10100

    def test_insert_overwrites(self):
        word = insert_field(mask(8), lo=2, width=3, field=0)
        assert extract_field(word, 2, 3) == 0

    def test_insert_rejects_oversized(self):
        with pytest.raises(ValueError):
            insert_field(0, lo=0, width=3, field=8)

    @given(values, st.integers(0, 30), st.integers(1, 16))
    def test_roundtrip(self, value, lo, width):
        field = value & mask(width)
        assert extract_field(insert_field(0, lo, width, field), lo, width) \
            == field

    @given(values, st.integers(0, 30), st.integers(1, 16))
    def test_insert_preserves_other_bits(self, value, lo, width):
        field = mask(width)
        inserted = insert_field(value, lo, width, field)
        outside = ~(mask(width) << lo)
        assert inserted & outside == value & outside
