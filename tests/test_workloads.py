"""Workload generator and profile-catalogue tests."""

import pytest

from repro.analysis.deadcode import analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.isa.opcodes import Opcode
from repro.workloads.codegen import ProgramSynthesizer, synthesize
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import (
    ALL_PROFILES,
    FP_PROFILES,
    INT_PROFILES,
    get_profile,
    profile_names,
)


class TestProfileValidation:
    def test_suite_checked(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", suite="vector")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", suite="int", w_noop=-1.0)

    def test_bubble_prob_range(self):
        with pytest.raises(ValueError):
            BenchmarkProfile(name="x", suite="int", fetch_bubble_prob=1.0)

    def test_item_weights_keys(self):
        profile = BenchmarkProfile(name="x", suite="int")
        weights = profile.item_weights()
        assert "noop" in weights and "cold_load" in weights
        assert all(not k.startswith("w_") for k in weights)


class TestCatalogue:
    def test_counts(self):
        assert len(INT_PROFILES) == 12
        assert len(FP_PROFILES) == 14
        assert len(ALL_PROFILES) == 26

    def test_names_unique(self):
        names = profile_names()
        assert len(names) == len(set(names))

    def test_get_profile(self):
        assert get_profile("crafty").suite == "int"
        assert get_profile("swim").suite == "fp"

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_profile("doom3")

    def test_paper_skip_intervals(self):
        assert get_profile("crafty").skip_millions == 120_600
        assert get_profile("perlbmk-makerand").skip_millions == 0
        assert get_profile("lucas").skip_millions == 123_500

    def test_fp_has_more_noops(self):
        int_noop = sum(p.w_noop for p in INT_PROFILES) / len(INT_PROFILES)
        fp_noop = sum(p.w_noop for p in FP_PROFILES) / len(FP_PROFILES)
        assert fp_noop > int_noop

    def test_int_has_more_random_branches(self):
        int_br = sum(p.w_branch_rand for p in INT_PROFILES) / 12
        fp_br = sum(p.w_branch_rand for p in FP_PROFILES) / 14
        assert int_br > fp_br


class TestSynthesis:
    def test_deterministic(self, small_profile):
        a = synthesize(small_profile, 5000, seed=1)
        b = synthesize(small_profile, 5000, seed=1)
        assert list(a.instructions) == list(b.instructions)

    def test_seed_changes_program(self, small_profile):
        a = synthesize(small_profile, 5000, seed=1)
        b = synthesize(small_profile, 5000, seed=2)
        assert list(a.instructions) != list(b.instructions)

    def test_target_size_honoured(self, small_profile):
        program = synthesize(small_profile, 20_000, seed=3)
        result = FunctionalSimulator(program).run()
        assert result.clean
        assert 10_000 < result.instruction_count < 40_000

    def test_too_small_target_rejected(self, small_profile):
        with pytest.raises(ValueError):
            synthesize(small_profile, 100)

    def test_program_has_functions(self, small_program):
        names = [f.name for f in small_program.functions]
        assert "main" in names
        assert any(n.startswith("leaf") for n in names)

    def test_trips_metadata(self, small_program):
        assert small_program.metadata["trips"] >= 1

    def test_emits_output(self, small_execution):
        assert len(small_execution.outputs) > 2

    def test_noop_weight_controls_mix(self, small_profile):
        from dataclasses import replace

        heavy = replace(small_profile, w_noop=120.0, seed_salt=7)
        light = replace(small_profile, w_noop=5.0, seed_salt=7)

        def noop_frac(profile):
            result = FunctionalSimulator(
                synthesize(profile, 6000, seed=5)).run()
            noops = sum(1 for op in result.trace
                        if op.instruction.opcode is Opcode.NOP)
            return noops / len(result.trace)

        assert noop_frac(heavy) > 2 * noop_frac(light)

    def test_every_positive_kind_appears(self, small_profile,
                                         small_program):
        opcodes = {i.opcode for i in small_program.instructions}
        assert Opcode.LD in opcodes
        assert Opcode.ST in opcodes
        assert Opcode.CALL in opcodes
        assert Opcode.PREFETCH in opcodes
        assert Opcode.HINT in opcodes
        assert Opcode.OUT in opcodes


@pytest.mark.parametrize("profile", ALL_PROFILES,
                         ids=[p.name for p in ALL_PROFILES])
class TestAllProfilesExecute:
    def test_runs_clean(self, profile):
        program = synthesize(profile, 4000, seed=11)
        result = FunctionalSimulator(program).run()
        assert result.clean
        assert result.outputs
        # Deadness analysis must succeed on every profile.
        analysis = analyze_deadness(result)
        assert 0.03 < analysis.dead_fraction() < 0.5
