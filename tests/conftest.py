"""Shared fixtures.

The expensive artifacts (a synthesized program, its functional execution,
deadness analysis, and a baseline timing run) are built once per session
from a small custom profile, so the whole suite stays fast while still
exercising the real end-to-end pipeline.
"""

from __future__ import annotations

import pytest

from repro.analysis.deadcode import analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.pipeline.config import MachineConfig, SquashConfig, Trigger
from repro.pipeline.core import PipelineSimulator
from repro.workloads.codegen import synthesize
from repro.workloads.profile import BenchmarkProfile

TEST_SEED = 1234


@pytest.fixture(scope="session")
def small_profile() -> BenchmarkProfile:
    """A compact mixed workload used across the suite."""
    return BenchmarkProfile(
        name="testload",
        suite="int",
        body_items=120,
        w_noop=30.0,
        w_branch_rand=2.0,
        w_cold_load=0.6,
        fetch_bubble_prob=0.25,
        seed_salt=99,
    )


@pytest.fixture(scope="session")
def small_program(small_profile):
    return synthesize(small_profile, target_instructions=8000, seed=TEST_SEED)


@pytest.fixture(scope="session")
def small_execution(small_program):
    result = FunctionalSimulator(small_program).run()
    assert result.clean
    return result


@pytest.fixture(scope="session")
def small_deadness(small_execution):
    return analyze_deadness(small_execution)


@pytest.fixture(scope="session")
def base_machine(small_profile) -> MachineConfig:
    return MachineConfig(fetch_bubble_prob=small_profile.fetch_bubble_prob)


@pytest.fixture(scope="session")
def small_pipeline(small_program, small_execution, base_machine):
    return PipelineSimulator(small_program, small_execution.trace,
                             base_machine, seed=TEST_SEED).run()


@pytest.fixture(scope="session")
def squash_machine(base_machine) -> MachineConfig:
    from dataclasses import replace

    return replace(base_machine,
                   squash=SquashConfig(trigger=Trigger.L1_MISS))


@pytest.fixture(scope="session")
def squash_pipeline(small_program, small_execution, squash_machine):
    return PipelineSimulator(small_program, small_execution.trace,
                             squash_machine, seed=TEST_SEED).run()
