"""Tests for repro.util.stats."""

import math
import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    OnlineStats,
    geometric_mean,
    harmonic_mean,
    ratio_change,
    weighted_mean,
)

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)


class TestOnlineStats:
    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            OnlineStats().mean

    def test_single_value(self):
        acc = OnlineStats()
        acc.add(4.0)
        assert acc.mean == 4.0
        assert acc.variance == 0.0

    @given(st.lists(floats, min_size=2, max_size=50))
    def test_matches_statistics_module(self, values):
        acc = OnlineStats()
        for v in values:
            acc.add(v)
        assert math.isclose(acc.mean, statistics.fmean(values),
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(acc.variance, statistics.variance(values),
                            rel_tol=1e-6, abs_tol=1e-6)

    def test_confidence_shrinks_with_n(self):
        acc = OnlineStats()
        widths = []
        for i in range(1, 401):
            acc.add(float(i % 7))
            if i in (100, 400):
                widths.append(acc.confidence_halfwidth())
        assert widths[1] < widths[0]

    def test_confidence_empty_is_infinite(self):
        assert OnlineStats().confidence_halfwidth() == float("inf")


class TestMeans:
    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == 2.0
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == 1.5

    def test_weighted_mean_mismatched(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_weighted_mean_zero_weight(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_geometric_mean(self):
        assert math.isclose(geometric_mean([2.0, 8.0]), 4.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_mean_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_harmonic_mean(self):
        assert math.isclose(harmonic_mean([1.0, 3.0]), 1.5)

    def test_harmonic_le_geometric(self):
        values = [1.2, 2.5, 0.9, 4.0]
        assert harmonic_mean(values) <= geometric_mean(values) + 1e-12

    def test_ratio_change(self):
        assert math.isclose(ratio_change(0.74, 1.0), -0.26)

    def test_ratio_change_zero_base(self):
        with pytest.raises(ValueError):
            ratio_change(1.0, 0.0)
