"""Timing-simulator fast-path regression tests.

The commit-queue head-index rewrite (no ``pop(0)``) and the
warmed-hierarchy snapshot cache are pure wall-clock optimisations: cycle
counts, interval streams, and stats must not move at all. The pinned
numbers below were produced by the seed implementation; a change to any
of them means the hot-loop rewrite altered semantics, not just speed.
"""

import pytest

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
from repro.pipeline import core
from repro.pipeline.core import PipelineSimulator
from repro.runtime.context import use_runtime
from tests.conftest import TEST_SEED


def _interval_fields(result):
    """Field-wise view of the interval stream (no __eq__ on the class)."""
    return [(i.seq, i.instruction, i.kind, i.alloc_cycle, i.issue_cycle,
             i.dealloc_cycle) for i in result.intervals]


class TestCycleCountRegression:
    def test_baseline_pipeline_pinned(self, small_pipeline):
        # Seed-implementation golden numbers for the session fixture.
        assert small_pipeline.cycles == 7519
        assert small_pipeline.committed == 7764

    def test_squash_pipeline_pinned(self, squash_pipeline):
        assert squash_pipeline.cycles == 7939
        assert squash_pipeline.committed == 7764

    def test_rerun_is_bit_identical(self, small_program, small_execution,
                                    base_machine, small_pipeline):
        rerun = PipelineSimulator(small_program, small_execution.trace,
                                  base_machine, seed=TEST_SEED).run()
        assert rerun.cycles == small_pipeline.cycles
        assert rerun.committed == small_pipeline.committed
        assert rerun.stats == small_pipeline.stats
        assert _interval_fields(rerun) == _interval_fields(small_pipeline)


class TestWarmSnapshotCache:
    def test_cold_vs_warm_identical(self, small_program, small_execution,
                                    base_machine):
        core.clear_warm_snapshots()
        with use_runtime() as context:
            cold = PipelineSimulator(small_program, small_execution.trace,
                                     base_machine, seed=TEST_SEED).run()
            warm = PipelineSimulator(small_program, small_execution.trace,
                                     base_machine, seed=TEST_SEED).run()
            counters = context.telemetry.counters
        assert counters["warm_hierarchy_misses"] >= 1
        assert counters["warm_hierarchy_hits"] >= 1
        assert cold.cycles == warm.cycles
        assert cold.committed == warm.committed
        assert cold.stats == warm.stats
        assert _interval_fields(cold) == _interval_fields(warm)

    def test_stale_entry_degrades_to_recompute(self, small_program,
                                               small_execution,
                                               base_machine):
        """A key collision with a different address stream must be
        detected and recomputed, never restored."""
        core.clear_warm_snapshots()
        reference = PipelineSimulator(small_program, small_execution.trace,
                                      base_machine, seed=TEST_SEED).run()
        assert len(core._WARM_SNAPSHOTS) == 1
        key, (addresses, snap) = next(iter(core._WARM_SNAPSHOTS.items()))
        poisoned = addresses[:-1] + (addresses[-1] ^ 1,)
        core._WARM_SNAPSHOTS[key] = (poisoned, snap)

        again = PipelineSimulator(small_program, small_execution.trace,
                                  base_machine, seed=TEST_SEED).run()
        assert again.cycles == reference.cycles
        assert again.stats == reference.stats
        # The recompute overwrote the poisoned entry with the true stream.
        assert core._WARM_SNAPSHOTS[key][0] == addresses

    def test_snapshot_store_is_bounded(self):
        core.clear_warm_snapshots()
        for index in range(core._WARM_SNAPSHOT_LIMIT + 5):
            key = ("prog", None, 0, index, index)
            if len(core._WARM_SNAPSHOTS) >= core._WARM_SNAPSHOT_LIMIT:
                core._WARM_SNAPSHOTS.pop(next(iter(core._WARM_SNAPSHOTS)))
            core._WARM_SNAPSHOTS[key] = ((), ())
        assert len(core._WARM_SNAPSHOTS) <= core._WARM_SNAPSHOT_LIMIT
        core.clear_warm_snapshots()
        assert not core._WARM_SNAPSHOTS


GEOMETRY = CacheConfig(size_words=64, line_words=4, ways=2, name="unit")


class TestSnapshotRestore:
    def test_cache_roundtrip_preserves_future_behaviour(self):
        original = Cache(GEOMETRY)
        for address in range(0, 1024, 4):
            original.access(address)
        saved = original.snapshot()

        replica = Cache(GEOMETRY)
        replica.restore(saved)
        probe = [7, 1020, 64, 68, 7, 512, 1020]
        assert [original.access(a) for a in probe] == \
            [replica.access(a) for a in probe]

    def test_snapshot_is_a_deep_copy(self):
        cache = Cache(GEOMETRY)
        cache.access(0)
        saved = cache.snapshot()
        cache.access(1024)  # evolves the live state
        restored = Cache(GEOMETRY)
        restored.restore(saved)
        assert restored.snapshot() == saved

    def test_restore_rejects_wrong_geometry(self):
        bigger = Cache(CacheConfig(size_words=128, line_words=4, ways=2,
                                   name="bigger"))
        with pytest.raises(ValueError):
            bigger.restore(Cache(GEOMETRY).snapshot())

    def test_hierarchy_roundtrip(self):
        config = HierarchyConfig()
        original = CacheHierarchy(config)
        for address in range(0, 8192, 16):
            original.access(address)
        replica = CacheHierarchy(config)
        replica.restore(original.snapshot())
        probe = [0, 16, 8176, 4096, 12345, 0]
        assert [original.access(a) for a in probe] == \
            [replica.access(a) for a in probe]
