"""The SimPoint-scale workload catalogue (`repro.workloads.scaled`).

Scaled traces are the chunk memo's target workload: a profile's dynamic
basic-block stream tiled to 200k-2M committed instructions with dense
sequence numbers and shared instruction objects. The catalogue must be
deterministic — the digests pinned here are the ones the benchmark
harness relies on when it claims byte-identical outputs across kernels.
"""

from __future__ import annotations

import pytest

from repro.workloads.scaled import (
    BASE_INSTRUCTIONS,
    SCALED_SEED,
    SCALED_WORKLOADS,
    ScaledWorkload,
    build_scaled,
    clear_scaled_cache,
    get_scaled,
    scale_trace,
    trace_digest,
)
from repro.workloads.spec2000 import ALL_PROFILES

#: name -> (sha256 of the timing-relevant row content, row count).
PINNED = {
    "mcf-200k": (
        "d4e26f40bbef0826ed4ed2c9539a2597f25306f1b692aec47e32f4130ced7bd6",
        201135),
    "crafty-200k": (
        "59eff303b3991e01079bcb5fd4b39e2e5d8e63a30d564cfac45ee6c67771228c",
        200397),
    "equake-200k": (
        "fbeb2bb731f3d376ca4f430e9ba3d1977214e6ffbe85a348d84e2919226ea8af",
        200514),
}


class TestCatalogue:
    def test_every_profile_has_a_200k_entry(self):
        names = {w.name for w in SCALED_WORKLOADS}
        for profile in ALL_PROFILES:
            assert f"{profile.name}-200k" in names

    def test_deep_tier_entries(self):
        for name in ("mcf-2m", "crafty-2m", "equake-2m"):
            workload = get_scaled(name)
            assert workload.target_instructions == 2_000_000

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown scaled workload"):
            get_scaled("nonesuch-9000")

    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_pinned_digests(self, name):
        program, trace = build_scaled(name)
        digest, rows = PINNED[name]
        assert len(trace) == rows
        assert trace_digest(trace) == digest
        workload = get_scaled(name)
        assert len(trace) >= workload.target_instructions

    def test_build_is_cached_per_process(self):
        first = build_scaled("mcf-200k")
        assert build_scaled("mcf-200k") is first
        clear_scaled_cache()
        rebuilt = build_scaled("mcf-200k")
        assert rebuilt is not first
        assert trace_digest(rebuilt[1]) == trace_digest(first[1])


class TestScaleTrace:
    def _base(self):
        program, trace = build_scaled(ScaledWorkload(
            name="mcf-base", base_profile="mcf",
            target_instructions=1), cache=False)
        return trace

    def test_seq_is_dense(self):
        base = self._base()
        scaled = scale_trace(base, 7)
        assert len(scaled) == 7 * len(base)
        for index, op in enumerate(scaled):
            assert op.seq == index

    def test_rows_share_instruction_objects(self):
        base = self._base()
        scaled = scale_trace(base, 3)
        n = len(base)
        for tile in range(3):
            for offset in range(n):
                assert scaled[tile * n + offset].instruction \
                    is base[offset].instruction

    def test_all_fields_preserved(self):
        base = self._base()
        scaled = scale_trace(base, 2)
        n = len(base)
        for offset, op in enumerate(base):
            copy = scaled[n + offset]
            assert copy.pc == op.pc
            assert copy.executed == op.executed
            assert copy.dest_gpr == op.dest_gpr
            assert copy.dest_pred == op.dest_pred
            assert copy.src_gprs == op.src_gprs
            assert copy.mem_addr == op.mem_addr
            assert copy.is_store == op.is_store
            assert copy.is_load == op.is_load
            assert copy.branch_taken == op.branch_taken
            assert copy.next_pc == op.next_pc
            assert copy.invocation == op.invocation
            assert copy.is_output == op.is_output

    def test_factor_below_one_rejected(self):
        base = self._base()
        with pytest.raises(ValueError):
            scale_trace(base, 0)

    def test_identity_factor(self):
        base = self._base()
        assert trace_digest(scale_trace(base, 1)) == trace_digest(base)

    def test_determinism_constants(self):
        # The catalogue's determinism contract: these constants are part
        # of the pinned digests above and must not drift silently.
        assert SCALED_SEED == 20_040_619
        assert BASE_INSTRUCTIONS == 3_000
