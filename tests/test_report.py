"""Per-benchmark report dossier tests."""

import pytest

from repro.analysis.report import benchmark_report
from repro.experiments.common import ExperimentSettings, run_benchmark
from repro.pipeline.config import Trigger
from repro.workloads.spec2000 import get_profile


@pytest.fixture(scope="module")
def bench():
    settings = ExperimentSettings(target_instructions=8000)
    return run_benchmark(get_profile("gzip-graphic"), settings,
                         Trigger.NONE)


class TestBenchmarkReport:
    def test_contains_all_sections(self, bench):
        text = benchmark_report(bench)
        for needle in ("dynamic instruction mix", "dead-code analysis",
                       "timing", "instruction-queue AVF",
                       "register-file AVF", "gzip-graphic"):
            assert needle in text

    def test_tracking_ladder_listed(self, bench):
        text = benchmark_report(bench)
        for level in ("PARITY_ONLY", "ANTI_PI", "MEM_PI"):
            assert level in text

    def test_injection_section_optional(self, bench):
        without = benchmark_report(bench)
        assert "fault-injection" not in without
        with_injection = benchmark_report(bench, injection_trials=30)
        assert "fault-injection cross-check" in with_injection

    def test_cli_report(self, capsys):
        from repro.cli import main

        assert main(["report", "--benchmark", "mcf",
                     "--instructions", "6000", "--trials", "0"]) == 0
        output = capsys.readouterr().out
        assert "=== mcf" in output
