"""Trace serialisation round-trip tests."""

import pytest

from repro.analysis.deadcode import analyze_deadness
from repro.workloads.tracefile import dump_execution, load_execution


class TestRoundTrip:
    def test_outputs_and_status_preserved(self, small_execution, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_execution(small_execution, path)
        loaded = load_execution(path)
        assert loaded.status is small_execution.status
        assert loaded.outputs == small_execution.outputs

    def test_trace_fields_preserved(self, small_execution, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_execution(small_execution, path)
        loaded = load_execution(path)
        assert len(loaded.trace) == len(small_execution.trace)
        for original, restored in zip(small_execution.trace[:500],
                                      loaded.trace[:500]):
            assert restored.seq == original.seq
            assert restored.pc == original.pc
            assert restored.instruction == original.instruction
            assert restored.executed == original.executed
            assert restored.dest_gpr == original.dest_gpr
            assert restored.dest_pred == original.dest_pred
            assert restored.src_gprs == original.src_gprs
            assert restored.mem_addr == original.mem_addr
            assert restored.is_store == original.is_store
            assert restored.is_load == original.is_load
            assert restored.branch_taken == original.branch_taken
            assert restored.invocation == original.invocation
            assert restored.is_output == original.is_output

    def test_invocations_preserved(self, small_execution, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_execution(small_execution, path)
        loaded = load_execution(path)
        assert set(loaded.invocations) == set(small_execution.invocations)
        for key, original in small_execution.invocations.items():
            restored = loaded.invocations[key]
            assert restored.entry_pc == original.entry_pc
            assert restored.return_seq == original.return_seq

    def test_analysis_identical_on_loaded_trace(self, small_execution,
                                                small_deadness, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_execution(small_execution, path)
        loaded = load_execution(path)
        reanalysed = analyze_deadness(loaded)
        assert reanalysed.classes == small_deadness.classes
        assert reanalysed.overwrite_distance == \
            small_deadness.overwrite_distance

    def test_version_checked(self, small_execution, tmp_path):
        path = tmp_path / "trace.jsonl"
        dump_execution(small_execution, path)
        content = path.read_text().splitlines()
        content[0] = content[0].replace('"version": 1', '"version": 99')
        path.write_text("\n".join(content))
        with pytest.raises(ValueError):
            load_execution(path)
