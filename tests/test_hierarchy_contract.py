"""Workload-vs-hierarchy contract: regions behave as designed."""

import pytest

from repro.memory.hierarchy import CacheHierarchy
from repro.workloads import codegen


class TestRegionContracts:
    def _steady_state(self, addresses, hierarchy):
        """Replay twice; measure the second pass (steady state)."""
        for address in addresses:
            hierarchy.access(address)
        hierarchy.reset_stats()
        results = [hierarchy.access(address) for address in addresses]
        return results

    def test_hot_region_is_l0_resident(self):
        hierarchy = CacheHierarchy()
        addresses = [codegen.HOT_BASE + i for i in range(0, 57, 8)] * 20
        results = self._steady_state(addresses, hierarchy)
        assert all(not r.l0_miss for r in results)

    def test_warm_stream_misses_l0_hits_l1(self):
        hierarchy = CacheHierarchy()
        addresses = [codegen.WARM_BASE + (i * 8) % codegen.WARM_WORDS
                     for i in range(3 * codegen.WARM_WORDS // 8)]
        # Steady state: after the first wrap, every line access misses L0
        # (footprint exceeds it) but hits L1 (footprint fits).
        tail = self._steady_state(addresses, hierarchy)[-128:]
        l0_miss_rate = sum(r.l0_miss for r in tail) / len(tail)
        l1_miss_rate = sum(r.l1_miss for r in tail) / len(tail)
        assert l0_miss_rate > 0.9
        assert l1_miss_rate < 0.1

    def test_cold_stream_misses_l1_hits_l2(self):
        hierarchy = CacheHierarchy()
        index = 0
        addresses = []
        for _ in range(1200):
            index = (index + 296) & (codegen.COLD_WORDS - 1)
            addresses.append(codegen.COLD_BASE + index)
        tail = self._steady_state(addresses, hierarchy)[-300:]
        l1_miss_rate = sum(r.l1_miss for r in tail) / len(tail)
        l2_miss_rate = sum(r.l2_miss for r in tail) / len(tail)
        assert l1_miss_rate > 0.9
        assert l2_miss_rate < 0.05

    def test_region_sizes_bracket_cache_capacities(self):
        hierarchy = CacheHierarchy()
        l0 = hierarchy.config.l0.size_words
        l1 = hierarchy.config.l1.size_words
        l2 = hierarchy.config.l2.size_words
        assert 64 <= l0  # hot region (64 words) fits L0
        assert l0 < codegen.WARM_WORDS <= l1
        assert l1 < codegen.COLD_WORDS <= l2
