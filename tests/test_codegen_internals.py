"""White-box tests of the workload generator's code idioms."""

from collections import Counter

import pytest

from repro.arch.executor import FunctionalSimulator
from repro.isa.opcodes import Opcode
from repro.workloads import codegen
from repro.workloads.codegen import (
    COLD_BASE,
    COLD_WORDS,
    DEAD_BASE,
    DEAD_RING_BASE,
    DEAD_RING_WORDS,
    HOT_BASE,
    R_ACC,
    R_CTR,
    WARM_BASE,
    WARM_WORDS,
    ProgramSynthesizer,
)
from repro.workloads.profile import BenchmarkProfile


def make_profile(**overrides):
    defaults = dict(name="internals", suite="int", body_items=100,
                    seed_salt=5)
    defaults.update(overrides)
    return BenchmarkProfile(**defaults)


@pytest.fixture(scope="module")
def generated():
    profile = make_profile()
    program = ProgramSynthesizer(profile, seed=7).synthesize(6000)
    execution = FunctionalSimulator(program).run()
    assert execution.clean
    return program, execution


class TestMemoryRegions:
    def test_regions_disjoint(self):
        regions = [
            (HOT_BASE, HOT_BASE + 64),
            (DEAD_BASE, DEAD_BASE + 64),
            (DEAD_RING_BASE, DEAD_RING_BASE + DEAD_RING_WORDS),
            (WARM_BASE, WARM_BASE + WARM_WORDS),
            (COLD_BASE, COLD_BASE + COLD_WORDS),
        ]
        regions.sort()
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end <= start

    def test_all_accesses_inside_known_regions(self, generated):
        _, execution = generated
        extents = [
            (HOT_BASE, 64), (DEAD_BASE, 64),
            (DEAD_RING_BASE, DEAD_RING_WORDS),
            (WARM_BASE, WARM_WORDS), (COLD_BASE, COLD_WORDS),
        ]
        for op in execution.trace:
            if op.mem_addr is None:
                continue
            assert any(base <= op.mem_addr < base + size
                       for base, size in extents), hex(op.mem_addr)

    def test_warm_stream_walks_lines(self, generated):
        _, execution = generated
        warm = sorted({op.mem_addr for op in execution.trace
                       if op.mem_addr is not None
                       and WARM_BASE <= op.mem_addr < WARM_BASE + WARM_WORDS})
        assert len(warm) > 16  # genuinely streaming, not one address

    def test_cold_stream_spreads(self, generated):
        _, execution = generated
        cold = {op.mem_addr for op in execution.trace
                if op.mem_addr is not None and op.mem_addr >= COLD_BASE}
        # 37-line jumps: consecutive addresses land on distinct lines.
        lines = {address // 8 for address in cold}
        assert len(lines) == len(cold)


class TestStructure:
    def test_loop_counter_initialised_to_trips(self, generated):
        program, _ = generated
        movi_ctr = next(i for i in program.instructions
                        if i.opcode is Opcode.MOVI and i.r1 == R_CTR)
        assert movi_ctr.imm == program.metadata["trips"]

    def test_out_instructions_read_accumulator(self, generated):
        program, _ = generated
        outs = [i for i in program.instructions if i.opcode is Opcode.OUT]
        assert outs
        assert all(i.r2 == R_ACC for i in outs)

    def test_leaf_functions_end_with_ret(self, generated):
        program, _ = generated
        leaves = [f for f in program.functions if f.name.startswith("leaf")]
        assert len(leaves) >= 4
        for leaf in leaves:
            assert program.fetch(leaf.end - 1).opcode is Opcode.RET

    def test_calls_target_leaf_entries(self, generated):
        program, _ = generated
        entries = {f.entry for f in program.functions
                   if f.name.startswith("leaf")}
        for pc, instruction in enumerate(program.instructions):
            if instruction.opcode is Opcode.CALL:
                assert pc + instruction.imm in entries

    def test_branches_stay_in_code(self, generated):
        program, _ = generated
        for pc, instruction in enumerate(program.instructions):
            if instruction.opcode in (Opcode.BR, Opcode.CALL):
                assert program.in_range(pc + instruction.imm)


class TestRareDeadWrites:
    def test_sparse_predicates_fire_sparsely(self, generated):
        """Counter-gated dead writes execute on a strict subset of trips."""
        _, execution = generated
        by_pc = Counter()
        executed_by_pc = Counter()
        for op in execution.trace:
            if op.instruction.qp != 0 and not op.instruction.is_control:
                by_pc[op.pc] += 1
                if op.executed:
                    executed_by_pc[op.pc] += 1
        sparse_sites = [pc for pc in by_pc
                        if by_pc[pc] >= 8
                        and 0 < executed_by_pc[pc] < by_pc[pc] / 2]
        assert sparse_sites, "expected counter-gated sparse writes"

    def test_dead_ring_advances(self, generated):
        _, execution = generated
        ring = sorted({op.mem_addr for op in execution.trace
                       if op.is_store and op.mem_addr is not None
                       and DEAD_RING_BASE <= op.mem_addr
                       < DEAD_RING_BASE + DEAD_RING_WORDS})
        if ring:  # ring items are probabilistic per profile
            assert len(ring) > 4


class TestDeterminismAcrossComponents:
    def test_same_profile_same_trace(self):
        profile = make_profile(seed_salt=9)
        first = FunctionalSimulator(
            ProgramSynthesizer(profile, seed=3).synthesize(4000)).run()
        second = FunctionalSimulator(
            ProgramSynthesizer(profile, seed=3).synthesize(4000)).run()
        assert first.outputs == second.outputs
        assert len(first.trace) == len(second.trace)

    def test_salt_differentiates(self):
        base = make_profile(seed_salt=1)
        other = make_profile(seed_salt=2)
        a = ProgramSynthesizer(base, seed=3).synthesize(4000)
        b = ProgramSynthesizer(other, seed=3).synthesize(4000)
        assert list(a.instructions) != list(b.instructions)


class TestBodyComposition:
    def test_out_insertion_preserves_singleton_kinds(self):
        """Regression: OUT anchors must be inserted, not overwritten onto
        item slots — overwriting could delete the single cold-load item
        whose L1 misses drive the squash trigger."""
        from repro.workloads.codegen import ProgramSynthesizer

        for salt in range(6):
            profile = make_profile(w_cold_load=0.3, body_items=150,
                                   seed_salt=salt)
            synthesizer = ProgramSynthesizer(profile, seed=11)
            items = synthesizer._pick_body_items()
            for kind, weight in profile.item_weights().items():
                if weight > 0:
                    assert kind in items, (salt, kind)
            assert "out" in items

    def test_every_profile_has_l1_misses(self):
        """All 26 catalogue profiles must exercise the L1-miss trigger."""
        from repro.experiments.common import ExperimentSettings, run_benchmark
        from repro.pipeline.config import Trigger
        from repro.workloads.spec2000 import ALL_PROFILES

        settings = ExperimentSettings(target_instructions=12_000, seed=3)
        for profile in ALL_PROFILES[::6]:
            run = run_benchmark(profile, settings, Trigger.NONE)
            assert run.pipeline.stats["l1_misses"] > 0, profile.name
