"""Chip-level error-budget tests."""

import pytest

from repro.avf.budget import ChipBudget, StructureContribution
from repro.avf.mitf import mttf_years_from_fit


def iq(detected=False):
    return StructureContribution(
        name="instruction queue", bits=64 * 41, raw_fit_per_bit=1e-3,
        sdc_avf=0.29, due_avf=0.62, detected=detected)


class TestStructure:
    def test_raw_fit(self):
        assert iq().raw_fit == pytest.approx(64 * 41 * 1e-3)

    def test_unprotected_contributes_sdc_only(self):
        structure = iq(detected=False)
        assert structure.sdc_fit > 0
        assert structure.due_fit == 0.0

    def test_detected_contributes_due_only(self):
        structure = iq(detected=True)
        assert structure.sdc_fit == 0.0
        assert structure.due_fit == pytest.approx(
            structure.raw_fit * 0.62)

    def test_validation(self):
        with pytest.raises(ValueError):
            StructureContribution("x", bits=0, raw_fit_per_bit=1e-3,
                                  sdc_avf=0.1)
        with pytest.raises(ValueError):
            StructureContribution("x", bits=10, raw_fit_per_bit=1e-3,
                                  sdc_avf=1.5)


class TestBudget:
    def _chip(self):
        budget = ChipBudget(sdc_mttf_target_years=1000,
                            due_mttf_target_years=10)
        budget.add(iq(detected=False))
        budget.add(StructureContribution(
            "branch predictor", bits=32 * 1024, raw_fit_per_bit=1e-3,
            sdc_avf=0.0))  # predictor strikes are architecturally benign
        budget.add(StructureContribution(
            "register file", bits=128 * 64, raw_fit_per_bit=1e-3,
            sdc_avf=0.0, due_avf=0.25, detected=True))
        return budget

    def test_sums(self):
        budget = self._chip()
        assert budget.sdc_fit == pytest.approx(iq().sdc_fit)
        assert budget.due_fit > 0

    def test_mttf_consistent_with_fit(self):
        budget = self._chip()
        assert budget.sdc_mttf_years() == pytest.approx(
            mttf_years_from_fit(budget.sdc_fit))

    def test_targets(self):
        budget = self._chip()
        assert isinstance(budget.meets_sdc_target(), bool)
        headroom = budget.headroom()
        assert headroom["sdc"] == pytest.approx(
            budget.sdc_mttf_years() / 1000)

    def test_dominant_contributor(self):
        budget = self._chip()
        assert budget.dominant_contributor("sdc") == "instruction queue"
        assert budget.dominant_contributor("due") == "register file"

    def test_dominant_none_when_empty(self):
        assert ChipBudget().dominant_contributor("sdc") is None

    def test_duplicate_rejected(self):
        budget = self._chip()
        with pytest.raises(ValueError):
            budget.add(iq())

    def test_zero_fit_means_infinite_mttf(self):
        budget = ChipBudget()
        assert budget.sdc_mttf_years() == float("inf")
        assert budget.meets_sdc_target()

    def test_paper_scenario_protection_shifts_category(self):
        """Adding parity to the IQ zeroes its SDC term but creates a DUE
        term bigger than the SDC term it removed (paper Section 4.1)."""
        unprotected = ChipBudget()
        unprotected.add(iq(detected=False))
        protected = ChipBudget()
        protected.add(iq(detected=True))
        assert protected.sdc_fit == 0.0
        assert protected.due_fit > unprotected.sdc_fit
