"""Differential proof for the interval-compressed timing kernel.

The kernel (``repro.pipeline.kernel``) must be *bit-identical* to the
legacy per-cycle loop: same cycle counts, same interval log (in order),
same stats dictionary, same RNG stream, and — through the interval-record
breakdown path — the same AVF/MITF numbers to the last bit. These tests
run both paths over every benchmark profile x squash trigger, over the
machine-config variants the ablations exercise, and over the edge cases
(zero-committed programs, a squashed last instruction, a queue that never
fills), and compare everything.

They also cover the persistent timeline store: a second pass over the
same work must perform zero pipeline simulations.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.deadcode import analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.avf.avf_calc import compute_iq_avf
from repro.avf.occupancy import AccountingPolicy, compute_breakdown
from repro.isa.opcodes import Opcode
from repro.pipeline import core as core_mod
from repro.pipeline.config import (
    IssuePolicy,
    MachineConfig,
    SquashAction,
    SquashConfig,
    Trigger,
)
from repro.pipeline.core import PipelineSimulator
from repro.pipeline.iq import IntervalTimeline, OccupantKind
from repro.pipeline.kernel import run_interval
from repro.pipeline.result import PipelineResult
from repro.runtime.cache import cache_key
from repro.runtime.context import use_runtime
from repro.workloads.codegen import synthesize
from repro.workloads.spec2000 import ALL_PROFILES

from .conftest import TEST_SEED
from .helpers import I, program

TRIGGERS = (Trigger.NONE, Trigger.L0_MISS, Trigger.L1_MISS)


def _run_both(program_, trace, machine, seed=TEST_SEED):
    """(legacy per-cycle result, interval-kernel result) for one config."""
    legacy = PipelineSimulator(program_, trace, machine,
                               seed=seed).run_per_cycle()
    fast = run_interval(PipelineSimulator(program_, trace, machine,
                                          seed=seed))
    return legacy, fast


def _assert_identical(legacy, fast, deadness):
    """Every observable of the two timing paths must agree exactly."""
    assert isinstance(fast.intervals, IntervalTimeline)
    assert not isinstance(legacy.intervals, IntervalTimeline)
    assert legacy.cycles == fast.cycles
    assert legacy.committed == fast.committed
    assert legacy.iq_entries == fast.iq_entries
    assert legacy.stats == fast.stats
    assert legacy.ipc == fast.ipc
    li, fi = list(legacy.intervals), list(fast.intervals)
    assert len(li) == len(fi)
    for a, b in zip(li, fi):
        assert a.seq == b.seq
        assert a.kind is b.kind
        assert a.alloc_cycle == b.alloc_cycle
        assert a.issue_cycle == b.issue_cycle
        assert a.dealloc_cycle == b.dealloc_cycle
        assert a.instruction.encode() == b.instruction.encode()
    for policy in AccountingPolicy:
        lb = compute_breakdown(legacy, deadness, policy)
        fb = compute_breakdown(fast, deadness, policy)
        assert lb.ace_bit_cycles == fb.ace_bit_cycles
        assert lb.unace_bit_cycles == fb.unace_bit_cycles
        assert lb.ex_ace_bit_cycles == fb.ex_ace_bit_cycles
        assert lb.unread_bit_cycles == fb.unread_bit_cycles
        assert lb.resident_bit_cycles == fb.resident_bit_cycles
        assert lb.fdd_distance_weights == fb.fdd_distance_weights
        assert lb.sdc_avf == fb.sdc_avf
        assert lb.due_avf == fb.due_avf
    lr = compute_iq_avf("x", legacy, deadness)
    fr = compute_iq_avf("x", fast, deadness)
    assert lr.ipc_over_sdc_avf == fr.ipc_over_sdc_avf
    assert lr.ipc_over_due_avf == fr.ipc_over_due_avf
    # The persistent store must key both identically.
    assert cache_key(legacy) == cache_key(fast)


class TestDifferentialMatrix:
    """Both paths agree over profiles, triggers, and machine variants."""

    @pytest.mark.parametrize("profile", ALL_PROFILES,
                             ids=[p.name for p in ALL_PROFILES])
    def test_every_profile_every_trigger(self, profile):
        program_ = synthesize(profile, target_instructions=3000,
                              seed=TEST_SEED)
        execution = FunctionalSimulator(program_).run()
        assert execution.clean
        deadness = analyze_deadness(execution)
        base = MachineConfig(fetch_bubble_prob=profile.fetch_bubble_prob)
        for trigger in TRIGGERS:
            machine = replace(base,
                              squash=replace(base.squash, trigger=trigger))
            legacy, fast = _run_both(program_, execution.trace, machine)
            _assert_identical(legacy, fast, deadness)

    @pytest.mark.parametrize("variant", [
        "throttle", "resume_at_miss_return", "ooo_baseline", "ooo_l1",
        "tiny_queue", "wide_machine",
    ])
    def test_machine_variants(self, variant, small_program, small_execution,
                              small_deadness, base_machine):
        machines = {
            "throttle": replace(base_machine, squash=SquashConfig(
                trigger=Trigger.L1_MISS, action=SquashAction.THROTTLE)),
            "resume_at_miss_return": replace(base_machine,
                                             squash=SquashConfig(
                                                 trigger=Trigger.L1_MISS,
                                                 resume_at_miss_return=True)),
            "ooo_baseline": replace(base_machine,
                                    issue_policy=IssuePolicy.OOO_WINDOW),
            "ooo_l1": replace(base_machine,
                              issue_policy=IssuePolicy.OOO_WINDOW,
                              squash=SquashConfig(trigger=Trigger.L1_MISS)),
            "tiny_queue": replace(base_machine, iq_entries=8),
            "wide_machine": replace(base_machine, fetch_width=8,
                                    issue_width=8, commit_width=8),
        }
        legacy, fast = _run_both(small_program, small_execution.trace,
                                 machines[variant])
        _assert_identical(legacy, fast, small_deadness)


class TestEdgeCases:
    """The corners ISSUE 4 calls out, on both paths."""

    def test_zero_committed_breakdown(self):
        """A run that committed nothing produces an all-zero breakdown,
        with or without a DeadnessAnalysis, on both interval forms."""
        for intervals in ([], IntervalTimeline([])):
            result = PipelineResult(cycles=25, committed=0,
                                    intervals=intervals, iq_entries=64,
                                    stats={})
            for policy in AccountingPolicy:
                breakdown = compute_breakdown(result, None, policy)
                assert breakdown.ace_bit_cycles == 0.0
                assert breakdown.resident_bit_cycles == 0.0
                assert breakdown.unace_bit_cycles == {}
                assert breakdown.fdd_distance_weights == {}
                assert breakdown.sdc_avf == 0.0

    def test_minimal_one_instruction_trace(self):
        """The smallest simulatable program: a lone HALT."""
        prog = program([I(Opcode.HALT)])
        execution = FunctionalSimulator(prog).run()
        assert execution.clean
        deadness = analyze_deadness(execution)
        legacy, fast = _run_both(prog, execution.trace, MachineConfig())
        _assert_identical(legacy, fast, deadness)
        assert fast.committed == len(execution.trace)

    def test_last_instruction_squashed(self):
        """A trace whose final instruction is an exposure-squash victim."""
        body = [I(Opcode.MOVI, r1=1, imm=7)]
        for _ in range(24):
            body.append(I(Opcode.ADDI, r1=1, r2=1, imm=48))
            body.append(I(Opcode.LD, r1=2, r2=1, imm=0))
            body.append(I(Opcode.ADD, r1=3, r2=2, r3=2))
        prog = program(body)
        execution = FunctionalSimulator(prog).run()
        assert execution.clean
        deadness = analyze_deadness(execution)
        machine = MachineConfig(squash=SquashConfig(trigger=Trigger.L0_MISS))
        legacy, fast = _run_both(prog, execution.trace, machine)
        _assert_identical(legacy, fast, deadness)
        assert fast.stats["squashed_instructions"] > 0
        last_seq = max(op.seq for op in execution.trace)
        squashed = {iv.seq for iv in fast.intervals
                    if iv.kind is OccupantKind.SQUASHED}
        assert last_seq in squashed  # the case this test exists for
        committed = {iv.seq for iv in fast.intervals
                     if iv.kind is OccupantKind.COMMITTED}
        assert last_seq in committed  # ... and it was refetched

    def test_queue_never_fills(self, small_program, small_execution,
                               small_deadness, base_machine):
        """An IQ larger than the whole trace never exerts backpressure."""
        machine = replace(base_machine, iq_entries=16384)
        legacy, fast = _run_both(small_program, small_execution.trace,
                                 machine)
        _assert_identical(legacy, fast, small_deadness)
        peak = max((len(small_execution.trace), 1))
        assert fast.iq_entries == 16384
        assert len(fast.intervals) >= peak

    def test_no_bubble_stream(self, small_program, small_execution,
                              small_deadness, base_machine):
        """bubble_prob=0 exercises the pure-skip (draw-free) path."""
        machine = replace(base_machine, fetch_bubble_prob=0.0)
        legacy, fast = _run_both(small_program, small_execution.trace,
                                 machine)
        _assert_identical(legacy, fast, small_deadness)


class TestBreakdownPaths:
    """The three breakdown integrators are interchangeable."""

    @pytest.fixture(scope="class")
    def fast_result(self, small_program, small_execution, squash_machine):
        return run_interval(PipelineSimulator(
            small_program, small_execution.trace, squash_machine,
            seed=TEST_SEED))

    def test_python_fallback_matches_numpy(self, fast_result, small_deadness,
                                           monkeypatch):
        import repro.avf.occupancy as occ

        for policy in AccountingPolicy:
            vectorised = compute_breakdown(fast_result, small_deadness,
                                           policy)
            monkeypatch.setattr(occ, "_np", None)
            fallback = compute_breakdown(fast_result, small_deadness, policy)
            monkeypatch.undo()
            assert vectorised.ace_bit_cycles == fallback.ace_bit_cycles
            assert vectorised.unace_bit_cycles == fallback.unace_bit_cycles
            assert (vectorised.fdd_distance_weights
                    == fallback.fdd_distance_weights)
            assert (vectorised.resident_bit_cycles
                    == fallback.resident_bit_cycles)
            assert vectorised.unread_bit_cycles == fallback.unread_bit_cycles
            assert vectorised.ex_ace_bit_cycles == fallback.ex_ace_bit_cycles

    def test_timeline_requires_deadness(self, fast_result):
        with pytest.raises(ValueError):
            compute_breakdown(fast_result, None)

    def test_timeline_materializes_lazily(self, fast_result):
        timeline = fast_result.timeline
        assert timeline is not None
        assert timeline._materialized is None
        interval = fast_result.intervals[0]
        assert interval.alloc_cycle == timeline.alloc[0]
        assert timeline._materialized is not None

    def test_occupancy_fraction_uses_columns(self, fast_result):
        column_total = fast_result.timeline.total_resident_cycles()
        object_total = sum(iv.resident_cycles
                           for iv in fast_result.intervals)
        assert column_total == object_total

    def test_list_results_have_no_timeline(self, small_pipeline):
        plain = PipelineResult(cycles=10, committed=0, intervals=[],
                               iq_entries=4, stats={})
        assert plain.timeline is None


class TestKernelSelection:
    """run() dispatches on the runtime context's interval_kernel flag."""

    def test_default_uses_interval_kernel(self, small_program,
                                          small_execution, base_machine):
        result = PipelineSimulator(small_program, small_execution.trace,
                                   base_machine, seed=TEST_SEED).run()
        assert isinstance(result.intervals, IntervalTimeline)

    def test_flag_selects_legacy_loop(self, small_program, small_execution,
                                      base_machine):
        with use_runtime(interval_kernel=False):
            result = PipelineSimulator(small_program, small_execution.trace,
                                       base_machine, seed=TEST_SEED).run()
        assert not isinstance(result.intervals, IntervalTimeline)

    def test_cli_exposes_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["table1", "--no-interval-kernel"])
        assert args.no_interval_kernel


class TestTimelineStore:
    """The persistent cross-exhibit timeline store (tentpole layer 2)."""

    def _settings(self):
        from repro.experiments.common import ExperimentSettings

        return ExperimentSettings(target_instructions=2500, seed=TEST_SEED)

    def test_second_pass_simulates_nothing(self, tmp_path):
        from repro.experiments.common import clear_caches, run_benchmark

        settings = self._settings()
        profiles = ALL_PROFILES[:3]
        with use_runtime(cache_dir=tmp_path) as runtime:
            for profile in profiles:
                for trigger in (Trigger.NONE, Trigger.L1_MISS):
                    run_benchmark(profile, settings, trigger)
            assert runtime.telemetry.counters["pipeline_sims"] == 6
        clear_caches()
        with use_runtime(cache_dir=tmp_path) as runtime:
            for profile in profiles:
                for trigger in (Trigger.NONE, Trigger.L1_MISS):
                    run = run_benchmark(profile, settings, trigger)
                    assert isinstance(run.pipeline.intervals,
                                      IntervalTimeline)
            assert runtime.telemetry.counters["pipeline_sims"] == 0
            assert runtime.telemetry.counters["timeline_store_hits"] == 6
        clear_caches()

    def test_store_round_trip_is_exact(self, tmp_path):
        from repro.experiments.common import clear_caches, run_benchmark

        settings = self._settings()
        profile = ALL_PROFILES[0]
        with use_runtime(cache_dir=tmp_path):
            first = run_benchmark(profile, settings, Trigger.L1_MISS)
        clear_caches()
        with use_runtime(cache_dir=tmp_path):
            second = run_benchmark(profile, settings, Trigger.L1_MISS)
        clear_caches()
        assert first.pipeline.cycles == second.pipeline.cycles
        assert first.pipeline.stats == second.pipeline.stats
        assert cache_key(first.pipeline) == cache_key(second.pipeline)
        for policy in AccountingPolicy:
            a = compute_breakdown(first.pipeline, first.deadness, policy)
            b = compute_breakdown(second.pipeline, second.deadness, policy)
            assert a.ace_bit_cycles == b.ace_bit_cycles
            assert a.unace_bit_cycles == b.unace_bit_cycles

    def test_ablations_share_the_store(self, tmp_path):
        """Ablation runs route through run_benchmark and hit the store."""
        from repro.experiments import ablations
        from repro.experiments.common import clear_caches

        settings = self._settings()
        profiles = ALL_PROFILES[:2]
        with use_runtime(cache_dir=tmp_path) as runtime:
            ablations.accounting_policy(settings, profiles)
            # Both policies integrate the same runs: 2 sims, not 4.
            assert runtime.telemetry.counters["pipeline_sims"] == 2
        clear_caches()
        with use_runtime(cache_dir=tmp_path) as runtime:
            ablations.accounting_policy(settings, profiles)
            assert runtime.telemetry.counters["pipeline_sims"] == 0
        clear_caches()

    def test_memo_keys_on_full_machine_config(self):
        """Satellite 2: runs differing in any machine knob never alias."""
        from repro.experiments.common import (
            ExperimentSettings,
            _run_key,
        )

        settings = ExperimentSettings()
        profile = ALL_PROFILES[0]
        a = settings.machine_for(profile, Trigger.NONE)
        b = replace(a, iq_entries=a.iq_entries * 2)
        c = replace(a, issue_policy=IssuePolicy.OOO_WINDOW)
        keys = {_run_key(profile, settings, m) for m in (a, b, c)}
        assert len(keys) == 3


class TestWarmSnapshotLru:
    """Satellite 1: the warm-hierarchy snapshot cache is LRU-bounded."""

    def test_eviction_when_over_limit(self, small_program, small_execution,
                                      base_machine, monkeypatch):
        core_mod.clear_warm_snapshots()
        monkeypatch.setattr(core_mod, "_WARM_SNAPSHOT_LIMIT", 2)
        before = core_mod.warm_snapshot_evictions
        for tail in (11, 12, 13, 14):
            machine = replace(base_machine, warmup_tail_accesses=tail)
            PipelineSimulator(small_program, small_execution.trace,
                              machine, seed=TEST_SEED).run()
        assert len(core_mod._WARM_SNAPSHOTS) <= 2
        assert core_mod.warm_snapshot_evictions >= before + 2
        core_mod.clear_warm_snapshots()

    def test_hit_refreshes_recency(self, small_program, small_execution,
                                   base_machine, monkeypatch):
        core_mod.clear_warm_snapshots()
        monkeypatch.setattr(core_mod, "_WARM_SNAPSHOT_LIMIT", 2)

        def simulate(machine):
            PipelineSimulator(small_program, small_execution.trace,
                              machine, seed=TEST_SEED).run()

        first = replace(base_machine, warmup_tail_accesses=21)
        second = replace(base_machine, warmup_tail_accesses=22)
        simulate(first)
        simulate(second)
        keys_before = list(core_mod._WARM_SNAPSHOTS)
        simulate(first)  # hit: must move first's key to MRU position
        assert list(core_mod._WARM_SNAPSHOTS) == [keys_before[1],
                                                  keys_before[0]]
        # A third distinct config now evicts ``second``, not ``first``.
        simulate(replace(base_machine, warmup_tail_accesses=23))
        assert keys_before[0] in core_mod._WARM_SNAPSHOTS
        assert keys_before[1] not in core_mod._WARM_SNAPSHOTS
        core_mod.clear_warm_snapshots()

    def test_eviction_counter_in_verbose_footer(self):
        from repro.runtime.telemetry import Telemetry

        telemetry = Telemetry()
        telemetry.increment("warm_hierarchy_hits", 3)
        telemetry.increment("warm_hierarchy_misses", 2)
        telemetry.increment("warm_snapshot_evictions", 1)
        summary = telemetry.format_summary(verbose=True)
        assert "1 snapshots evicted" in summary


class TestWarmSnapshotEvictionOrder:
    """Direct coverage for `_WARM_SNAPSHOTS` eviction *order* and the
    `warm_snapshot_evictions` telemetry counter.

    The LRU bound itself is proven above; here we pin down (a) that
    evictions proceed strictly least-recently-used-first across a long
    insertion sequence, and (b) that each real eviction ticks the runtime
    telemetry counter that the ``--verbose`` footer reports — previously
    only the footer formatting was tested, with hand-incremented
    counters.
    """

    def _simulate(self, program_, execution, machine, tail):
        PipelineSimulator(program_, execution.trace,
                          replace(machine, warmup_tail_accesses=tail),
                          seed=TEST_SEED).run()

    def test_evictions_are_oldest_first(self, small_program,
                                        small_execution, base_machine,
                                        monkeypatch):
        core_mod.clear_warm_snapshots()
        monkeypatch.setattr(core_mod, "_WARM_SNAPSHOT_LIMIT", 3)
        inserted = []
        for tail in (31, 32, 33):
            self._simulate(small_program, small_execution, base_machine,
                           tail)
            inserted.append(list(core_mod._WARM_SNAPSHOTS)[-1])
        # Each further insert evicts exactly the oldest surviving key, in
        # the original insertion order.
        for round_index, tail in enumerate((34, 35, 36)):
            self._simulate(small_program, small_execution, base_machine,
                           tail)
            surviving = list(core_mod._WARM_SNAPSHOTS)
            assert len(surviving) == 3
            for old_key in inserted[:round_index + 1]:
                assert old_key not in surviving
            for kept_key in inserted[round_index + 1:]:
                assert kept_key in surviving
        core_mod.clear_warm_snapshots()

    def test_real_evictions_tick_runtime_telemetry(self, small_program,
                                                   small_execution,
                                                   base_machine,
                                                   monkeypatch):
        core_mod.clear_warm_snapshots()
        monkeypatch.setattr(core_mod, "_WARM_SNAPSHOT_LIMIT", 2)
        with use_runtime() as runtime:
            for tail in (41, 42, 43, 44):
                self._simulate(small_program, small_execution,
                               base_machine, tail)
            counters = runtime.telemetry.counters
            assert counters["warm_snapshot_evictions"] == 2
            assert counters["warm_hierarchy_misses"] == 4
            summary = runtime.telemetry.format_summary(verbose=True)
            assert "2 snapshots evicted" in summary
            # A warm hit must refresh, not evict.
            evictions_before = counters["warm_snapshot_evictions"]
            self._simulate(small_program, small_execution, base_machine,
                           44)
            assert counters["warm_snapshot_evictions"] == evictions_before
            assert counters["warm_hierarchy_hits"] == 1
        core_mod.clear_warm_snapshots()
