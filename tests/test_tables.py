"""Tests for the table formatter."""

import pytest

from repro.util.tables import format_percent, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["xxx", "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert "---" in lines[1]
        assert lines[2].startswith("xxx")

    def test_title(self):
        text = format_table(["h"], [["v"]], title="T1")
        assert text.splitlines()[0] == "T1"

    def test_floats_formatted(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_column_count(self):
        text = format_table(["a", "b", "c"], [[1, 2, 3], [4, 5, 6]])
        assert len(text.splitlines()) == 4


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.29) == "29.0%"

    def test_digits(self):
        assert format_percent(0.12345, digits=2) == "12.35%"
