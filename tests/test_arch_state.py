"""Tests for architectural state."""

from repro.arch.state import ADDRESS_MASK, WORD_MASK, ArchState


class TestRegisters:
    def test_r0_reads_zero(self):
        state = ArchState()
        state.write_gpr(0, 123)
        assert state.read_gpr(0) == 0

    def test_write_read(self):
        state = ArchState()
        state.write_gpr(5, 42)
        assert state.read_gpr(5) == 42

    def test_64_bit_wrap(self):
        state = ArchState()
        state.write_gpr(5, WORD_MASK + 3)
        assert state.read_gpr(5) == 2

    def test_negative_values_wrap(self):
        state = ArchState()
        state.write_gpr(5, -1)
        assert state.read_gpr(5) == WORD_MASK


class TestPredicates:
    def test_p0_always_true(self):
        state = ArchState()
        state.write_predicate(0, False)
        assert state.read_predicate(0) is True

    def test_default_false(self):
        assert ArchState().read_predicate(7) is False

    def test_write_read(self):
        state = ArchState()
        state.write_predicate(7, True)
        assert state.read_predicate(7) is True


class TestMemory:
    def test_unmapped_reads_zero(self):
        assert ArchState().load(0x1234) == 0

    def test_store_load(self):
        state = ArchState()
        state.store(0x1234, 99)
        assert state.load(0x1234) == 99

    def test_address_masking(self):
        state = ArchState()
        state.store(ADDRESS_MASK + 1 + 0x10, 7)  # wraps to 0x10
        assert state.load(0x10) == 7

    def test_value_masking(self):
        state = ArchState()
        state.store(0x10, WORD_MASK + 5)
        assert state.load(0x10) == 4
