"""End-to-end integration tests across the whole stack."""

import pytest

from repro.avf.avf_calc import compute_iq_avf
from repro.avf.occupancy import AccountingPolicy, compute_breakdown
from repro.due.tracking import TrackingLevel, due_avf_with_tracking
from repro.experiments.common import ExperimentSettings, run_benchmark
from repro.pipeline.config import Trigger
from repro.workloads.spec2000 import get_profile

SETTINGS = ExperimentSettings(target_instructions=12_000, seed=2004)


@pytest.fixture(scope="module")
def crafty_base():
    return run_benchmark(get_profile("crafty"), SETTINGS, Trigger.NONE)


@pytest.fixture(scope="module")
def crafty_l1():
    return run_benchmark(get_profile("crafty"), SETTINGS, Trigger.L1_MISS)


class TestEndToEnd:
    def test_full_chain_consistency(self, crafty_base):
        run = crafty_base
        assert run.execution.clean
        assert run.pipeline.committed == len(run.execution.trace)
        assert len(run.deadness.classes) == len(run.execution.trace)
        assert run.report.ipc == pytest.approx(run.pipeline.ipc)

    def test_due_decomposition(self, crafty_base):
        breakdown = crafty_base.report.breakdown
        components = breakdown.false_due_components()
        assert sum(components.values()) == pytest.approx(
            breakdown.false_due_avf)
        assert breakdown.due_avf == pytest.approx(
            breakdown.sdc_avf + breakdown.false_due_avf)

    def test_parity_more_than_doubles_error_rate(self, crafty_base):
        # Paper Section 4.1: adding detection turns 29 % SDC into 62 % DUE.
        breakdown = crafty_base.report.breakdown
        assert breakdown.due_avf > 1.5 * breakdown.sdc_avf

    def test_squash_plus_tracking_story(self, crafty_base, crafty_l1):
        base_due = crafty_base.report.due_avf
        combined_due = due_avf_with_tracking(crafty_l1.report.breakdown,
                                             TrackingLevel.STORE_PI)
        assert combined_due < base_due * 0.8

    def test_tracking_never_below_true_due(self, crafty_l1):
        breakdown = crafty_l1.report.breakdown
        for level in TrackingLevel:
            assert due_avf_with_tracking(breakdown, level) >= \
                breakdown.true_due_avf - 1e-12

    def test_policies_ordering_everywhere(self, crafty_l1):
        conservative = compute_breakdown(
            crafty_l1.pipeline, crafty_l1.deadness,
            AccountingPolicy.CONSERVATIVE)
        read_gated = compute_breakdown(
            crafty_l1.pipeline, crafty_l1.deadness,
            AccountingPolicy.READ_GATED)
        assert read_gated.sdc_avf <= conservative.sdc_avf
        assert read_gated.due_avf <= conservative.due_avf

    def test_report_builder(self, crafty_base):
        report = compute_iq_avf("crafty", crafty_base.pipeline,
                                crafty_base.deadness)
        assert report.sdc_avf == pytest.approx(crafty_base.report.sdc_avf)


class TestSuiteLevelShape:
    """Aggregate sanity over a mixed int/fp subset: the qualitative claims
    of the paper's abstract must hold on our substrate."""

    @pytest.fixture(scope="class")
    def subset(self):
        profiles = [get_profile(n) for n in
                    ("crafty", "gzip-graphic", "ammp", "swim")]
        base = [run_benchmark(p, SETTINGS, Trigger.NONE) for p in profiles]
        l1 = [run_benchmark(p, SETTINGS, Trigger.L1_MISS) for p in profiles]
        return base, l1

    def test_squash_reduces_avf_more_than_ipc(self, subset):
        base, l1 = subset
        avf_ratio = (sum(r.report.sdc_avf for r in l1)
                     / sum(r.report.sdc_avf for r in base))
        ipc_ratio = (sum(r.report.ipc for r in l1)
                     / sum(r.report.ipc for r in base))
        assert avf_ratio < ipc_ratio  # MITF improves

    def test_every_benchmark_keeps_ipc_sane(self, subset):
        base, l1 = subset
        for run in base + l1:
            assert 0.3 < run.report.ipc < 4.0

    def test_false_due_share_substantial(self, subset):
        # Paper: false DUE is up to ~52 % of total DUE with parity only.
        base, _ = subset
        shares = [r.report.false_due_avf / r.report.due_avf for r in base]
        assert max(shares) > 0.3

    def test_int_wrong_path_exceeds_fp(self, subset):
        base, _ = subset
        def wrong_path_share(run):
            comps = run.report.false_due_components()
            return comps.get("wrong_path", 0.0)
        int_share = (wrong_path_share(base[0]) + wrong_path_share(base[1]))
        fp_share = (wrong_path_share(base[2]) + wrong_path_share(base[3]))
        assert int_share > fp_share
