"""Brute-force oracle for the dead-code analysis.

The strongest statement the analysis makes is: *this dynamic instruction's
execution did not matter*. For each instruction classified dead (or
neutral, or predicated-false) we can check that claim directly: re-execute
the program with that single dynamic instance replaced by a NOP and
compare the observable output. Any divergence is an analysis bug.

The converse (live instructions must matter) is deliberately not asserted
instruction-by-instruction — the analysis is conservative, e.g. control
decisions are always live even when both paths compute the same values —
but we do check that live instructions matter *much more often*.
"""

import pytest

from repro.analysis.deadcode import DEAD_CLASSES, DynClass
from repro.arch.executor import FunctionalSimulator
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode

_NOP = Instruction(Opcode.NOP)


def _nop_changes_output(program, baseline, seq) -> bool:
    rerun = FunctionalSimulator(program).run(
        record_trace=False, override_seq=seq, override_instruction=_NOP)
    return rerun.output_signature() != baseline.output_signature()


@pytest.fixture(scope="module")
def oracle_setup(small_program, small_execution, small_deadness):
    return small_program, small_execution, small_deadness


class TestDeadInstructionsAreRemovable:
    @pytest.mark.parametrize("dead_class", sorted(
        DEAD_CLASSES, key=lambda c: c.value))
    def test_nopping_dead_instances_preserves_output(self, oracle_setup,
                                                     dead_class):
        program, execution, deadness = oracle_setup
        checked = 0
        for seq, cls in enumerate(deadness.classes):
            if cls is not dead_class:
                continue
            assert not _nop_changes_output(program, execution, seq), (
                f"{dead_class} instruction at seq {seq} "
                f"({execution.trace[seq].instruction}) was not removable")
            checked += 1
            if checked >= 12:
                break
        if deadness.count(dead_class) > 0:
            assert checked > 0

    def test_nopping_neutral_preserves_output(self, oracle_setup):
        program, execution, deadness = oracle_setup
        checked = 0
        for seq, cls in enumerate(deadness.classes):
            if cls is not DynClass.NEUTRAL:
                continue
            if execution.trace[seq].instruction.opcode is Opcode.NOP:
                continue  # already a NOP
            assert not _nop_changes_output(program, execution, seq)
            checked += 1
            if checked >= 8:
                break
        assert checked > 0

    def test_nopping_pred_false_preserves_output(self, oracle_setup):
        program, execution, deadness = oracle_setup
        checked = 0
        for seq, cls in enumerate(deadness.classes):
            if cls is not DynClass.PRED_FALSE:
                continue
            if execution.trace[seq].instruction.is_control:
                continue  # a nullified branch replaced by NOP is identical
            assert not _nop_changes_output(program, execution, seq)
            checked += 1
            if checked >= 8:
                break
        assert checked > 0


class TestLiveInstructionsMatter:
    def test_live_instances_usually_not_removable(self, oracle_setup):
        program, execution, deadness = oracle_setup
        sampled = 0
        mattered = 0
        for seq in range(100, len(deadness.classes), 97):
            if deadness.class_of(seq) is not DynClass.LIVE:
                continue
            op = execution.trace[seq]
            if not op.executed or op.instruction.opcode is Opcode.NOP:
                continue
            sampled += 1
            if _nop_changes_output(program, execution, seq):
                mattered += 1
            if sampled >= 25:
                break
        assert sampled >= 10
        # The analysis is *very* conservative: much of the LIVE class is
        # control plumbing (e.g. compares gating dead writes) whose removal
        # does not change output. The literature reports the same effect —
        # ACE analysis overestimates injection-measured AVF severalfold.
        # What must hold is the qualitative gap: some live instances matter
        # (dead ones never do, asserted above at zero tolerance).
        assert mattered >= 2
