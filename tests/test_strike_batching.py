"""Differential harness for the vectorised strike batcher.

The batcher's contract is the same as every other fast path in this
repo: *bit-identical results*. These tests prove it four ways:

* golden — for every protection configuration (each ``TrackingLevel``
  plus unprotected and ECC), a pinned-seed campaign classified through
  the batched path must produce the same tallies, tracker misses,
  confidence intervals, and oracle counters as the scalar per-trial
  loop, on both the plain and the squash-heavy pipeline;
* stream equivalence — a hypothesis property that the array sampler
  draws exactly the (interval, bit, cycle) sequence the per-trial
  ``derive_seed`` sampler draws, for any seed and any ``--jobs N``
  sharding of the index space;
* mask soundness — every (instruction, bit) flip of a tiny program that
  exercises all three static rules: the precomputed bit-matrix kills a
  strike iff ``EffectOracle.classify_static`` kills it;
* fallback parity — the pure-Python path (NumPy absent) reproduces the
  NumPy results batch-for-batch and tally-for-tally.

Plus the cache-key non-forking guarantee (a batched campaign's tally is
served warm to a scalar run and vice versa) and a pinned regression for
the mcf-181 OOO+L0 baseline pathology from ROADMAP.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.faults.batch as batch_mod
from repro.arch.executor import FunctionalSimulator
from repro.cli import build_parser, main
from repro.due.tracking import TrackingLevel
from repro.faults.batch import (
    BatchClassifier,
    StrikeBatch,
    build_kill_masks,
    draw_strike_batch,
    kill_matrix,
)
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    run_trial_block,
    trial_seed,
)
from repro.faults.injector import StrikeEvaluator
from repro.faults.model import StrikeModel
from repro.faults.oracle import EffectOracle
from repro.isa.encoding import ENCODING_BITS
from repro.isa.opcodes import Opcode
from repro.pipeline.config import (
    IssuePolicy,
    MachineConfig,
    SquashConfig,
    Trigger,
)
from repro.pipeline.core import PipelineSimulator
from repro.pipeline.iq import NO_VALUE
from repro.runtime.context import reset_runtime, use_runtime
from repro.runtime.engine import shard_trials
from repro.runtime.telemetry import Telemetry
from repro.util.rng import DeterministicRng
from repro.workloads.codegen import synthesize
from repro.workloads.spec2000 import get_profile
from tests.helpers import I, program

STATIC_REASONS = {
    "non-live field",
    "predicated-false, non-qp/opcode flip",
    "dead destination value",
}


def _golden_configs():
    configs = [CampaignConfig(trials=50, seed=77)]
    configs += [CampaignConfig(trials=50, seed=77, parity=True,
                               tracking=level) for level in TrackingLevel]
    configs.append(CampaignConfig(trials=50, seed=77, ecc=True))
    return configs


def _config_id(config):
    if config.ecc:
        return "ecc"
    if config.parity:
        return config.tracking.name.lower()
    return "unprotected"


def _evaluator(prog, baseline, config, **kwargs):
    return StrikeEvaluator(
        prog, baseline, parity=config.parity, tracking=config.tracking,
        pet_entries=config.pet_entries, ecc=config.ecc, **kwargs)


def _scalar_block(prog, baseline, pipeline, config):
    evaluator = _evaluator(prog, baseline, config)
    counts, misses = run_trial_block(prog, baseline, pipeline, config,
                                     0, config.trials, evaluator=evaluator)
    return counts, misses, evaluator


def _batched_block(prog, baseline, pipeline, config, **eval_kwargs):
    evaluator = _evaluator(prog, baseline, config, **eval_kwargs)
    batch = draw_strike_batch(pipeline, config, prog.name, 0, config.trials)
    classifier = BatchClassifier(evaluator, pipeline)
    counts, misses = run_trial_block(prog, baseline, pipeline, config,
                                     0, config.trials, evaluator=evaluator,
                                     strikes=batch, classifier=classifier)
    return counts, misses, evaluator, classifier


class TestGoldenDifferential:
    """Satellite (a): batched vs scalar, every protection configuration."""

    @pytest.mark.parametrize("config", _golden_configs(), ids=_config_id)
    def test_batched_matches_scalar(self, config, small_program,
                                    small_execution, small_pipeline):
        sc, sm, s_eval = _scalar_block(small_program, small_execution,
                                       small_pipeline, config)
        bc, bm, b_eval, classifier = _batched_block(
            small_program, small_execution, small_pipeline, config)
        assert bc == sc
        assert bm == sm
        # Oracle accounting must be indistinguishable: same memo hits,
        # static kills, executions, and the same computed entries.
        assert b_eval.oracle.counters() == s_eval.oracle.counters()
        assert b_eval.oracle.new_entries() == s_eval.oracle.new_entries()
        # Derived statistics (rates + binomial CIs) follow.
        scalar_result = CampaignResult(config=config, counts=Counter(sc),
                                       tracker_misses=sm)
        batched_result = CampaignResult(config=config, counts=Counter(bc),
                                        tracker_misses=bm)
        assert (batched_result.sdc_avf_estimate
                == scalar_result.sdc_avf_estimate)
        assert (batched_result.due_avf_estimate
                == scalar_result.due_avf_estimate)
        from repro.due.outcomes import FaultOutcome

        for outcome in FaultOutcome:
            assert (batched_result.rate_confidence(outcome)
                    == scalar_result.rate_confidence(outcome))
        # Every trial is accounted for exactly once by the classifier.
        stats = classifier.counters()
        assert stats["batch_trials"] == config.trials
        survivors = stats["batch_trials"] - stats["batch_vector_kills"]
        assert (stats["batch_scalar_kills"] + stats["batch_reexecutions"]
                == survivors)

    @pytest.mark.parametrize("config", [
        CampaignConfig(trials=50, seed=77, parity=True),
        CampaignConfig(trials=50, seed=77),
    ], ids=["parity", "unprotected"])
    def test_batched_matches_scalar_on_squash_pipeline(
            self, config, small_program, small_execution, squash_pipeline):
        """The squash-heavy pipeline exercises the wrong-path/squashed
        interval kinds the vector pass classifies without the oracle."""
        sc, sm, s_eval = _scalar_block(small_program, small_execution,
                                       squash_pipeline, config)
        bc, bm, b_eval, _ = _batched_block(
            small_program, small_execution, squash_pipeline, config)
        assert (bc, bm) == (sc, sm)
        assert b_eval.oracle.counters() == s_eval.oracle.counters()

    def test_static_filter_off_matches_scalar(self, small_program,
                                              small_execution,
                                              small_pipeline):
        """``--no-static-filter`` composes with batching: both paths
        re-execute every survivor and still agree."""
        config = CampaignConfig(trials=40, seed=9, parity=True)
        unfiltered = _evaluator(small_program, small_execution, config,
                                static_filter=False)
        sc, sm = run_trial_block(small_program, small_execution,
                                 small_pipeline, config, 0, config.trials,
                                 evaluator=unfiltered)
        bc, bm, b_eval, _ = _batched_block(
            small_program, small_execution, small_pipeline, config,
            static_filter=False)
        assert (bc, bm) == (sc, sm)
        assert b_eval.oracle.counters() == unfiltered.oracle.counters()
        assert b_eval.oracle.static_kills == 0

    def test_run_campaign_batched_vs_no_batch_flag(
            self, small_program, small_execution, small_pipeline):
        config = CampaignConfig(trials=60, seed=11, parity=True,
                                tracking=TrackingLevel.REG_PI)
        with use_runtime():
            batched = run_campaign(small_program, small_execution,
                                   small_pipeline, config)
        with use_runtime(batch_strikes=False):
            scalar = run_campaign(small_program, small_execution,
                                  small_pipeline, config)
        assert batched.counts == scalar.counts
        assert batched.tracker_misses == scalar.tracker_misses

    def test_run_campaign_sharded_batched_matches_serial_scalar(
            self, small_program, small_execution, small_pipeline):
        config = CampaignConfig(trials=48, seed=21, parity=True)
        with use_runtime(jobs=3):
            sharded = run_campaign(small_program, small_execution,
                                   small_pipeline, config)
        with use_runtime(batch_strikes=False):
            scalar = run_campaign(small_program, small_execution,
                                  small_pipeline, config)
        assert sharded.counts == scalar.counts
        assert sharded.tracker_misses == scalar.tracker_misses

    def test_cache_key_does_not_fork(self, tmp_path, small_program,
                                     small_execution, small_pipeline):
        """Batched and scalar campaigns share one cache entry: a tally
        computed batched is served warm to a ``--no-batch-strikes`` run
        (and the other way round), so results can never diverge by mode."""
        config = CampaignConfig(trials=30, seed=5, parity=True)
        with use_runtime(cache_dir=tmp_path) as context:
            cold = run_campaign(small_program, small_execution,
                                small_pipeline, config)
            assert context.telemetry.counters["campaign_trials"] == 30
        with use_runtime(cache_dir=tmp_path, batch_strikes=False) as context:
            warm = run_campaign(small_program, small_execution,
                                small_pipeline, config)
            # Served entirely from the batched run's cache entry.
            assert context.telemetry.counters["campaign_trials"] == 0
            assert context.cache.hits >= 1
        assert warm.counts == cold.counts
        assert warm.tracker_misses == cold.tracker_misses

        other = CampaignConfig(trials=30, seed=6, parity=True)
        with use_runtime(cache_dir=tmp_path, batch_strikes=False) as context:
            cold2 = run_campaign(small_program, small_execution,
                                 small_pipeline, other)
        with use_runtime(cache_dir=tmp_path) as context:
            warm2 = run_campaign(small_program, small_execution,
                                 small_pipeline, other)
            assert context.telemetry.counters["campaign_trials"] == 0
        assert warm2.counts == cold2.counts


class TestSamplerStreamEquivalence:
    """Satellite (b): the array sampler replays the scalar draw stream."""

    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           jobs=st.integers(min_value=1, max_value=8))
    @settings(max_examples=10, deadline=None)
    def test_sampler_stream_equivalence(self, seed, jobs, small_program,
                                        small_pipeline):
        config = CampaignConfig(trials=36, seed=seed)
        full = draw_strike_batch(small_pipeline, config,
                                 small_program.name, 0, config.trials)
        sampler = StrikeModel(small_pipeline)
        intervals = small_pipeline.intervals
        for index, (row, cycle, bit) in enumerate(full.triples()):
            rng = DeterministicRng(
                trial_seed(config, small_program.name, index))
            strike = sampler.sample(rng)
            assert bit == strike.bit
            if row == NO_VALUE:
                assert strike.interval is None
                assert cycle == 0
            else:
                assert strike.interval is intervals[row]
                assert cycle == strike.cycle
        # Any --jobs N sharding: a shard's independent draw equals the
        # corresponding slice of the whole-campaign batch.
        for block in shard_trials(config.trials, jobs):
            shard = draw_strike_batch(small_pipeline, config,
                                      small_program.name,
                                      block.start, block.stop)
            assert shard == full.slice(block.start, block.stop)

    @given(seed=st.integers(min_value=0, max_value=2 ** 32),
           parity=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_prefix_digest_seeds_match_trial_seed(self, seed, parity):
        """The batcher's forked-digest seed derivation is byte-for-byte
        ``trial_seed`` for every trial index."""
        config = CampaignConfig(trials=10, seed=seed, parity=parity)
        assert batch_mod._trial_seeds(config, "prog", 3, 13) == [
            trial_seed(config, "prog", index) for index in range(3, 13)]

    def test_ecc_sees_the_same_strike_stream(self, small_program,
                                             small_pipeline):
        """``trial_seed`` excludes ``ecc`` so protected and unprotected
        campaigns compare the identical strikes; the batcher preserves
        that."""
        plain = CampaignConfig(trials=30, seed=4)
        ecc = CampaignConfig(trials=30, seed=4, ecc=True)
        assert (draw_strike_batch(small_pipeline, plain,
                                  small_program.name, 0, 30)
                == draw_strike_batch(small_pipeline, ecc,
                                     small_program.name, 0, 30))


@pytest.fixture(scope="module")
def rule_setup():
    """A tiny program whose trace exercises every static-filter rule
    (mirrors ``test_oracle.py``): a live value, a dead destination, a
    predicated-false op, and a live op with a non-live IMM field."""
    prog = program([
        I(Opcode.MOVI, r1=1, imm=5),
        I(Opcode.MOVI, r1=9, imm=3),
        I(Opcode.CMP_NE, r1=6, r2=1, r3=1),
        I(Opcode.ADDI, qp=6, r1=2, r2=1, imm=1),
        I(Opcode.ADD, r1=3, r2=1, r3=1),
        I(Opcode.OUT, r2=1),
    ])
    baseline = FunctionalSimulator(prog).run()
    assert baseline.clean
    return prog, baseline


class TestMaskSoundness:
    """Satellite (c): bit-matrix masks == scalar static rules, point by
    point, over every (instruction, bit) flip."""

    def test_masks_match_classify_static_exhaustively(self, rule_setup):
        prog, baseline = rule_setup
        oracle = EffectOracle(prog, baseline)
        masks = build_kill_masks(baseline, oracle.deadness)
        assert len(masks) == len(baseline.trace)
        reasons = set()
        for seq in range(len(baseline.trace)):
            for bit in range(ENCODING_BITS):
                static = oracle.classify_static(seq, bit)
                assert bool((masks[seq] >> bit) & 1) == (static is not None), \
                    (seq, bit, static)
                if static is not None:
                    reasons.add(static)
        # The program must actually exercise all three rules, or the
        # sweep proves less than it claims.
        assert reasons == STATIC_REASONS

    def test_masks_match_on_session_workload_stride(self, small_program,
                                                    small_execution):
        """Beyond hand-built corners: strided sweep of the real trace."""
        oracle = EffectOracle(small_program, small_execution)
        masks = build_kill_masks(small_execution, oracle.deadness)
        checked = killed = 0
        for seq in range(0, len(small_execution.trace), 97):
            for bit in range(ENCODING_BITS):
                static = oracle.classify_static(seq, bit)
                assert bool((masks[seq] >> bit) & 1) == (static is not None)
                checked += 1
                killed += static is not None
        assert checked > 0 and killed > 0

    def test_kill_matrix_mirrors_mask_bits(self, rule_setup):
        if batch_mod._np is None:
            pytest.skip("NumPy not available")
        prog, baseline = rule_setup
        masks = build_kill_masks(baseline, EffectOracle(prog,
                                                        baseline).deadness)
        matrix = kill_matrix(masks)
        assert matrix.shape == (len(masks), ENCODING_BITS)
        for seq, mask in enumerate(masks):
            for bit in range(ENCODING_BITS):
                assert bool(matrix[seq, bit]) == bool((mask >> bit) & 1)


class TestFallbackParity:
    """Satellite (d): the pure-Python path is exercised and identical."""

    @pytest.mark.parametrize("config", [
        CampaignConfig(trials=40, seed=13, parity=True,
                       tracking=TrackingLevel.PI_COMMIT),
        CampaignConfig(trials=40, seed=13, ecc=True),
        CampaignConfig(trials=40, seed=13),
    ], ids=["pi_commit", "ecc", "unprotected"])
    def test_python_fallback_matches_numpy(self, monkeypatch, config,
                                           small_program, small_execution,
                                           small_pipeline):
        with_np = _batched_block(small_program, small_execution,
                                 small_pipeline, config)
        numpy_batch = draw_strike_batch(small_pipeline, config,
                                        small_program.name, 0,
                                        config.trials)
        monkeypatch.setattr(batch_mod, "_np", None)
        fallback_batch = draw_strike_batch(small_pipeline, config,
                                           small_program.name, 0,
                                           config.trials)
        assert fallback_batch == numpy_batch
        without_np = _batched_block(small_program, small_execution,
                                    small_pipeline, config)
        assert without_np[0] == with_np[0]
        assert without_np[1] == with_np[1]
        assert (without_np[2].oracle.counters()
                == with_np[2].oracle.counters())
        assert without_np[3].counters() == with_np[3].counters()

    def test_run_campaign_under_fallback(self, monkeypatch, small_program,
                                         small_execution, small_pipeline):
        config = CampaignConfig(trials=30, seed=2, parity=True)
        with use_runtime():
            with_np = run_campaign(small_program, small_execution,
                                   small_pipeline, config)
        monkeypatch.setattr(batch_mod, "_np", None)
        with use_runtime():
            without_np = run_campaign(small_program, small_execution,
                                      small_pipeline, config)
        assert without_np.counts == with_np.counts
        assert without_np.tracker_misses == with_np.tracker_misses


class TestStrikeBatch:
    def test_len_slice_and_equality(self, small_program, small_pipeline):
        config = CampaignConfig(trials=20, seed=1)
        batch = draw_strike_batch(small_pipeline, config,
                                  small_program.name, 0, 20)
        assert len(batch) == 20
        part = batch.slice(5, 12)
        assert (part.start, part.stop, len(part)) == (5, 12, 7)
        assert part.triples() == batch.triples()[5:12]
        assert part == batch.slice(5, 12)
        assert part != batch
        assert batch.slice(0, 20) == batch

    def test_slice_outside_range_rejected(self, small_program,
                                          small_pipeline):
        config = CampaignConfig(trials=10, seed=1)
        batch = draw_strike_batch(small_pipeline, config,
                                  small_program.name, 2, 8)
        with pytest.raises(ValueError):
            batch.slice(0, 5)
        with pytest.raises(ValueError):
            batch.slice(5, 9)

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            StrikeBatch(0, 2, [1], [0, 0], [3, 4])

    def test_degenerate_pipeline_raises_like_strike_model(
            self, small_program, small_pipeline):
        from dataclasses import replace

        empty = replace(small_pipeline, cycles=0, intervals=[])
        config = CampaignConfig(trials=5, seed=1)
        with pytest.raises(ValueError, match="empty entry-cycle space"):
            draw_strike_batch(empty, config, small_program.name, 0, 5)
        with pytest.raises(ValueError, match="empty entry-cycle space"):
            StrikeModel(empty)


class TestTelemetryAndFlags:
    def test_campaign_ticks_batch_counters(self, small_program,
                                           small_execution, small_pipeline):
        with use_runtime() as context:
            run_campaign(small_program, small_execution, small_pipeline,
                         CampaignConfig(trials=40, seed=3))
            counters = context.telemetry.counters
            summary = context.telemetry.format_summary()
        assert counters["batch_trials"] == 40
        assert (counters["batch_vector_kills"]
                + counters["batch_scalar_kills"]
                + counters["batch_reexecutions"]) == 40
        assert "batch:" in summary

    def test_no_batch_leaves_counters_silent(self, small_program,
                                             small_execution,
                                             small_pipeline):
        with use_runtime(batch_strikes=False) as context:
            run_campaign(small_program, small_execution, small_pipeline,
                         CampaignConfig(trials=20, seed=3))
            assert context.telemetry.counters["batch_trials"] == 0
            assert "batch:" not in context.telemetry.format_summary()

    def test_batch_line_format(self):
        telemetry = Telemetry()
        telemetry.merge_counters({"batch_trials": 10,
                                  "batch_vector_kills": 7,
                                  "batch_scalar_kills": 2,
                                  "batch_reexecutions": 1})
        assert ("batch: 7 vector kills, 2 scalar kills, 1 re-executions "
                "over 10 trials") in telemetry.format_summary()

    def test_parser_flag_default_and_toggle(self):
        assert not build_parser().parse_args(["figure1"]).no_batch_strikes
        assert build_parser().parse_args(
            ["figure1", "--no-batch-strikes"]).no_batch_strikes

    def test_main_with_no_batch_strikes(self, capsys):
        try:
            assert main(["figure1", "--instructions", "6000",
                         "--trials", "20", "--no-batch-strikes"]) == 0
            out = capsys.readouterr().out
            assert "unprotected" in out
            assert "batch:" not in out
        finally:
            reset_runtime()


def test_mcf_ooo_l0_baseline_completes():
    """Regression pin for the mcf OOO+L0 deadlock fix.

    The pathology was never scheduler pressure: an issued wrong-path
    load could survive its own squash window as an orphan and stall the
    OOO commit scan forever. The kernel and per-cycle loops now flush
    issued wrong-path entries whose resolution window has passed, so
    this baseline must finish within the default 30M-cycle budget."""
    profile = get_profile("mcf")
    prog = synthesize(profile, target_instructions=24_000, seed=2004)
    baseline = FunctionalSimulator(prog).run()
    assert baseline.clean
    machine = MachineConfig(
        fetch_bubble_prob=profile.fetch_bubble_prob,
        issue_policy=IssuePolicy.OOO_WINDOW,
        squash=SquashConfig(trigger=Trigger.L0_MISS))
    result = PipelineSimulator(prog, baseline.trace, machine,
                               seed=2004).run()
    assert result.cycles <= machine.max_cycles
