"""Tests for the deterministic RNG layer."""

import pytest

from repro.util.rng import DeterministicRng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) and ("a", "b") must hash differently.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(7)
        b = DeterministicRng(7)
        assert [a.randint(0, 100) for _ in range(20)] == \
            [b.randint(0, 100) for _ in range(20)]

    def test_different_seed_diverges(self):
        a = DeterministicRng(7)
        b = DeterministicRng(8)
        assert [a.randint(0, 10 ** 9) for _ in range(5)] != \
            [b.randint(0, 10 ** 9) for _ in range(5)]

    def test_child_streams_independent_of_sibling_draws(self):
        parent = DeterministicRng(7)
        child_a = parent.child("a")
        expected = [child_a.randint(0, 1000) for _ in range(5)]
        # Re-derive after consuming draws elsewhere: stream unchanged.
        parent2 = DeterministicRng(7)
        parent2.child("b").randint(0, 1000)
        child_a2 = parent2.child("a")
        assert [child_a2.randint(0, 1000) for _ in range(5)] == expected

    def test_choice_and_shuffle_deterministic(self):
        a = DeterministicRng(3)
        b = DeterministicRng(3)
        items_a = list(range(10))
        items_b = list(range(10))
        a.shuffle(items_a)
        b.shuffle(items_b)
        assert items_a == items_b

    def test_bernoulli_bounds(self):
        rng = DeterministicRng(1)
        assert all(not rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_rejects_bad_p(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).bernoulli(1.5)

    def test_bernoulli_rate(self):
        rng = DeterministicRng(11)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_geometric_mean(self):
        rng = DeterministicRng(5)
        draws = [rng.geometric(0.5) for _ in range(4000)]
        mean = sum(draws) / len(draws)
        assert 0.8 < mean < 1.2  # E = (1-p)/p = 1

    def test_geometric_maximum(self):
        rng = DeterministicRng(5)
        assert all(rng.geometric(0.01, maximum=3) <= 3 for _ in range(200))

    def test_geometric_rejects_bad_p(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).geometric(0.0)

    def test_randrange_bounds(self):
        rng = DeterministicRng(9)
        assert all(0 <= rng.randrange(7) < 7 for _ in range(200))

    def test_sample_unique(self):
        rng = DeterministicRng(9)
        picked = rng.sample(range(20), 5)
        assert len(set(picked)) == 5
