"""Bit-weight rule tests (repro.avf.ace)."""

import pytest

from repro.analysis.deadcode import DynClass
from repro.avf.ace import WRONG_PATH_CATEGORY, BitWeights, bit_weights_for
from repro.isa.encoding import ENCODING_BITS, OPCODE_BITS, R1_BITS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.iq import OccupancyInterval, OccupantKind


def interval(kind, seq=0):
    return OccupancyInterval(
        seq=None if kind is OccupantKind.WRONG_PATH else seq,
        instruction=Instruction(Opcode.ADD, r1=1, r2=2, r3=3),
        kind=kind, alloc_cycle=0, issue_cycle=5, dealloc_cycle=9)


class TestBitWeights:
    def test_must_cover_encoding(self):
        with pytest.raises(ValueError):
            BitWeights(10, 10, "x")

    def test_category_required_with_unace(self):
        with pytest.raises(ValueError):
            BitWeights(ENCODING_BITS - 1, 1, None)
        with pytest.raises(ValueError):
            BitWeights(ENCODING_BITS, 0, "x")


class TestRules:
    def test_live_all_ace(self):
        w = bit_weights_for(interval(OccupantKind.COMMITTED), DynClass.LIVE)
        assert w.ace_bits == ENCODING_BITS and w.unace_bits == 0

    def test_neutral_opcode_only(self):
        w = bit_weights_for(interval(OccupantKind.COMMITTED),
                            DynClass.NEUTRAL)
        assert w.ace_bits == OPCODE_BITS
        assert w.unace_category == "neutral"

    def test_dead_dest_specifier_only(self):
        for cls in (DynClass.FDD_REG, DynClass.FDD_REG_RETURN,
                    DynClass.TDD_REG, DynClass.FDD_MEM, DynClass.TDD_MEM):
            w = bit_weights_for(interval(OccupantKind.COMMITTED), cls)
            assert w.ace_bits == R1_BITS
            assert w.unace_category == cls.value

    def test_pred_false_nothing_ace(self):
        w = bit_weights_for(interval(OccupantKind.COMMITTED),
                            DynClass.PRED_FALSE)
        assert w.ace_bits == 0

    def test_wrong_path(self):
        w = bit_weights_for(interval(OccupantKind.WRONG_PATH), None)
        assert w.ace_bits == 0
        assert w.unace_category == WRONG_PATH_CATEGORY

    def test_squashed_conservative_uses_class(self):
        w = bit_weights_for(interval(OccupantKind.SQUASHED), DynClass.LIVE,
                            squash_victims_harmless=False)
        assert w.ace_bits == ENCODING_BITS

    def test_squashed_harmless_is_unace(self):
        w = bit_weights_for(interval(OccupantKind.SQUASHED), DynClass.LIVE,
                            squash_victims_harmless=True)
        assert w.ace_bits == 0

    def test_committed_requires_class(self):
        with pytest.raises(ValueError):
            bit_weights_for(interval(OccupantKind.COMMITTED), None)
