"""Fault-outcome taxonomy tests."""

from repro.due.outcomes import FaultOutcome


class TestTaxonomy:
    def test_benign_classes(self):
        for outcome in (FaultOutcome.BENIGN_UNREAD,
                        FaultOutcome.BENIGN_UNACE,
                        FaultOutcome.CORRECTED):
            assert outcome.is_benign
            assert not outcome.is_error

    def test_error_classes(self):
        for outcome in (FaultOutcome.SDC, FaultOutcome.FALSE_DUE,
                        FaultOutcome.TRUE_DUE, FaultOutcome.TRAP,
                        FaultOutcome.HANG):
            assert outcome.is_error
            assert not outcome.is_benign

    def test_partition(self):
        for outcome in FaultOutcome:
            assert outcome.is_error != outcome.is_benign

    def test_values_stable(self):
        # Serialized campaign results depend on these strings.
        assert FaultOutcome.SDC.value == "sdc"
        assert FaultOutcome.FALSE_DUE.value == "false_due"
        assert FaultOutcome.BENIGN_UNREAD.value == "benign_unread"
