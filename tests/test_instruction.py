"""Tests for the Instruction dataclass."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, Opcode


class TestValidation:
    def test_qp_range(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, qp=64)

    def test_reg_ranges(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, r1=128)
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, r2=-1)


class TestProperties:
    def test_dest_gpr(self):
        assert Instruction(Opcode.ADD, r1=5).dest_gpr == 5
        assert Instruction(Opcode.ST, r1=5).dest_gpr == 0
        assert Instruction(Opcode.ADD, r1=0).dest_gpr == 0  # r0 discarded

    def test_writes_gpr_excludes_r0(self):
        assert not Instruction(Opcode.ADD, r1=0).writes_gpr
        assert Instruction(Opcode.ADD, r1=1).writes_gpr

    def test_dest_predicate(self):
        assert Instruction(Opcode.CMP_EQ, r1=70).dest_predicate == 6
        assert Instruction(Opcode.ADD, r1=70).dest_predicate == 0

    def test_source_gprs_skip_r0(self):
        inst = Instruction(Opcode.ADD, r1=1, r2=0, r3=9)
        assert inst.source_gprs() == (9,)

    def test_store_sources(self):
        inst = Instruction(Opcode.ST, r1=3, r2=4, imm=1)
        assert set(inst.source_gprs()) == {3, 4}

    def test_is_flags(self):
        assert Instruction(Opcode.LD).is_load
        assert Instruction(Opcode.ST).is_store
        assert Instruction(Opcode.NOP).is_neutral
        assert Instruction(Opcode.BR).is_control
        assert not Instruction(Opcode.ADD).is_control

    def test_instr_class(self):
        assert Instruction(Opcode.MUL).instr_class is InstrClass.MUL

    def test_with_qp(self):
        inst = Instruction(Opcode.ADD, r1=1)
        assert inst.with_qp(5).qp == 5
        assert inst.qp == 0  # original untouched (frozen)

    def test_frozen(self):
        inst = Instruction(Opcode.ADD)
        with pytest.raises(AttributeError):
            inst.r1 = 3


class TestStr:
    @pytest.mark.parametrize("instruction,needle", [
        (Instruction(Opcode.ADD, r1=1, r2=2, r3=3), "add r1 = r2, r3"),
        (Instruction(Opcode.ADDI, r1=1, r2=2, imm=5), "addi r1 = r2, 5"),
        (Instruction(Opcode.MOVI, r1=1, imm=7), "movi r1 = 7"),
        (Instruction(Opcode.LD, r1=1, r2=2, imm=3), "ld r1 = [r2 + 3]"),
        (Instruction(Opcode.ST, r1=1, r2=2, imm=3), "st [r2 + 3] = r1"),
        (Instruction(Opcode.CMP_EQ, r1=5, r2=1, r3=2), "cmp_eq p5 = r1, r2"),
        (Instruction(Opcode.BR, qp=3, imm=-4), "(p3) br -4"),
        (Instruction(Opcode.OUT, r2=7), "out r7"),
        (Instruction(Opcode.NOP), "nop"),
    ])
    def test_disassembly(self, instruction, needle):
        assert str(instruction) == needle
