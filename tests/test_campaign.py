"""Monte-Carlo campaign tests."""

import pytest

from repro.due.outcomes import FaultOutcome
from repro.due.tracking import TrackingLevel
from repro.faults.campaign import CampaignConfig, CampaignResult, run_campaign


@pytest.fixture(scope="module")
def campaigns(small_program, small_execution, small_pipeline):
    def make(**kwargs):
        config = CampaignConfig(trials=150, seed=77, **kwargs)
        return run_campaign(small_program, small_execution, small_pipeline,
                            config)

    return {
        "unprotected": make(),
        "parity": make(parity=True, tracking=TrackingLevel.PARITY_ONLY),
        "tracked": make(parity=True, tracking=TrackingLevel.MEM_PI),
    }


class TestConfig:
    def test_trials_validated(self):
        with pytest.raises(ValueError):
            CampaignConfig(trials=0)

    @pytest.mark.parametrize("pet_entries", [0, -1, -512])
    def test_pet_entries_validated(self, pet_entries):
        with pytest.raises(ValueError):
            CampaignConfig(pet_entries=pet_entries)

    @pytest.mark.parametrize("seed", [-1, -2004])
    def test_seed_validated(self, seed):
        with pytest.raises(ValueError):
            CampaignConfig(seed=seed)

    def test_valid_config_accepted(self):
        config = CampaignConfig(trials=1, seed=0, pet_entries=1)
        assert config.trials == 1
        assert config.seed == 0
        assert config.pet_entries == 1


class TestCampaign:
    def test_counts_sum_to_trials(self, campaigns):
        for result in campaigns.values():
            assert result.trials == 150

    def test_unprotected_has_no_due(self, campaigns):
        result = campaigns["unprotected"]
        assert result.counts[FaultOutcome.TRUE_DUE] == 0
        assert result.counts[FaultOutcome.FALSE_DUE] == 0

    def test_parity_has_no_sdc(self, campaigns):
        # With parity and no tracking, every read corruption is detected.
        result = campaigns["parity"]
        assert result.counts[FaultOutcome.SDC] == 0
        assert result.counts[FaultOutcome.TRAP] == 0

    def test_parity_due_at_least_unprotected_sdc(self, campaigns):
        # Detection converts SDC into (true) DUE and adds false DUE.
        assert campaigns["parity"].due_avf_estimate >= \
            campaigns["unprotected"].sdc_avf_estimate

    def test_tracking_reduces_false_due(self, campaigns):
        assert campaigns["tracked"].false_due_estimate <= \
            campaigns["parity"].false_due_estimate

    def test_tracking_soundness(self, campaigns):
        # Suppressed-but-harmful outcomes are the known trace-replay
        # artifact; they must be rare.
        tracked = campaigns["tracked"]
        assert tracked.tracker_misses <= 0.05 * tracked.trials

    def test_rates_and_confidence(self, campaigns):
        result = campaigns["unprotected"]
        rate = result.rate(FaultOutcome.BENIGN_UNREAD)
        assert 0.0 < rate < 1.0
        assert 0.0 < result.rate_confidence(FaultOutcome.BENIGN_UNREAD) < 0.2

    def test_summary_nonempty(self, campaigns):
        summary = campaigns["unprotected"].summary()
        assert summary
        assert sum(summary.values()) == pytest.approx(1.0)

    def test_determinism(self, small_program, small_execution,
                         small_pipeline):
        config = CampaignConfig(trials=40, seed=5)
        first = run_campaign(small_program, small_execution, small_pipeline,
                             config)
        second = run_campaign(small_program, small_execution, small_pipeline,
                              config)
        assert first.counts == second.counts


class TestCrossValidation:
    def test_injection_sdc_below_conservative_analytic(
            self, campaigns, small_pipeline, small_deadness):
        """ACE analysis is deliberately conservative: the injection-based
        SDC AVF must not exceed it (beyond noise)."""
        from repro.avf.occupancy import compute_breakdown

        analytic = compute_breakdown(small_pipeline, small_deadness).sdc_avf
        injected = campaigns["unprotected"].sdc_avf_estimate
        margin = campaigns["unprotected"].rate_confidence(
            FaultOutcome.SDC, FaultOutcome.TRAP, FaultOutcome.HANG)
        assert injected <= analytic + margin


class TestEcc:
    def test_ecc_eliminates_all_errors(self, small_program, small_execution,
                                       small_pipeline):
        result = run_campaign(
            small_program, small_execution, small_pipeline,
            CampaignConfig(trials=120, seed=9, ecc=True))
        assert result.counts[FaultOutcome.SDC] == 0
        assert result.counts[FaultOutcome.TRUE_DUE] == 0
        assert result.counts[FaultOutcome.FALSE_DUE] == 0
        assert result.counts[FaultOutcome.TRAP] == 0
        assert result.counts[FaultOutcome.CORRECTED] > 0

    def test_ecc_and_parity_exclusive(self):
        with pytest.raises(ValueError):
            CampaignConfig(ecc=True, parity=True)

    def test_corrected_rate_tracks_read_fraction(self, small_program,
                                                 small_execution,
                                                 small_pipeline):
        ecc = run_campaign(small_program, small_execution, small_pipeline,
                           CampaignConfig(trials=150, seed=9, ecc=True))
        plain = run_campaign(small_program, small_execution, small_pipeline,
                             CampaignConfig(trials=150, seed=9))
        # ECC corrects exactly the strikes that are read before dealloc:
        # the benign_unread rate must agree between the two campaigns.
        assert ecc.rate(FaultOutcome.BENIGN_UNREAD) == pytest.approx(
            plain.rate(FaultOutcome.BENIGN_UNREAD), abs=0.02)
