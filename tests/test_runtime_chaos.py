"""Chaos injector and failure-taxonomy unit tests.

The chaos harness must itself be deterministic: identical seeds make
identical kill/delay/poison decisions regardless of scheduling, which is
what lets the resilience suite assert bit-identical tallies under
injected faults.
"""

import pickle
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.runtime.chaos import (
    CHAOS_MODES,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
    in_worker_process,
)
from repro.runtime.resilience import (
    RetryPolicy,
    TrialCrash,
    TrialTimeout,
    WorkerLost,
    classify_failure,
)


class TestChaosConfig:
    def test_parse_modes(self):
        config = ChaosConfig.parse("kill-worker, corrupt-cache", seed=7)
        assert config.modes == ("kill-worker", "corrupt-cache")
        assert config.seed == 7
        assert config.enabled("kill-worker")
        assert not config.enabled("delay-trial")

    def test_parse_dedupes_and_strips(self):
        config = ChaosConfig.parse("kill-worker,kill-worker, ,raise-trial")
        assert config.modes == ("kill-worker", "raise-trial")

    def test_parse_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosConfig.parse("kill-worker,meteor-strike")

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            ChaosConfig.parse(" , ")

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            ChaosConfig(modes=("kill-worker",), kill_prob=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(modes=("delay-trial",), delay_seconds=-1.0)

    def test_all_documented_modes_accepted(self):
        config = ChaosConfig.parse(",".join(CHAOS_MODES))
        assert set(config.modes) == set(CHAOS_MODES)

    def test_picklable_for_worker_handoff(self):
        config = ChaosConfig.parse("kill-worker", seed=3)
        assert pickle.loads(pickle.dumps(config)) == config


class TestInjectorDeterminism:
    def test_decisions_replay_exactly(self):
        a = ChaosInjector(ChaosConfig(modes=("raise-trial",), seed=42))
        b = ChaosInjector(ChaosConfig(modes=("raise-trial",), seed=42))
        decisions = [a.decide(0.3, "raise", "trial", i) for i in range(64)]
        assert decisions == [b.decide(0.3, "raise", "trial", i)
                             for i in range(64)]
        assert any(decisions) and not all(decisions)

    def test_different_seeds_differ(self):
        a = ChaosInjector(ChaosConfig(modes=(), seed=1))
        b = ChaosInjector(ChaosConfig(modes=(), seed=2))
        assert [a.decide(0.5, "x", i) for i in range(64)] != \
            [b.decide(0.5, "x", i) for i in range(64)]

    def test_sites_are_independent_streams(self):
        injector = ChaosInjector(ChaosConfig(modes=(), seed=9))
        kills = [injector.decide(0.5, "kill", i) for i in range(64)]
        raises = [injector.decide(0.5, "raise", i) for i in range(64)]
        assert kills != raises

    def test_poisoned_trials_matches_maybe_raise(self):
        config = ChaosConfig(modes=("poison-trial",), seed=11,
                             poison_prob=0.2)
        injector = ChaosInjector(config)
        expected = injector.poisoned_trials(50)
        assert expected  # prob 0.2 over 50 trials must hit something
        observed = []
        for index in range(50):
            try:
                injector.maybe_raise(("trial", index), attempt=3)
            except ChaosError:
                observed.append(index)
        assert tuple(observed) == expected

    def test_transient_raise_only_on_first_attempt(self):
        config = ChaosConfig(modes=("raise-trial",), seed=4, raise_prob=1.0)
        injector = ChaosInjector(config)
        with pytest.raises(ChaosError):
            injector.maybe_raise(("trial", 0), attempt=0)
        injector.maybe_raise(("trial", 0), attempt=1)  # must not raise


class TestInjectorSafety:
    def test_kill_never_fires_in_parent_process(self):
        assert not in_worker_process()
        config = ChaosConfig(modes=("kill-worker",), seed=1, kill_prob=1.0)
        ChaosInjector(config).maybe_kill(("shard", 0, 10), attempt=0)
        # Still alive: the parent is never killed.

    def test_interrupt_raises_keyboard_interrupt(self):
        config = ChaosConfig(modes=("interrupt",), seed=1,
                             interrupt_prob=1.0)
        with pytest.raises(KeyboardInterrupt):
            ChaosInjector(config).maybe_interrupt(("trial", 0))

    def test_corrupt_file_damages_deterministically(self, tmp_path):
        payload = bytes(range(256)) * 8
        first = tmp_path / "a.bin"
        second = tmp_path / "b.bin"
        first.write_bytes(payload)
        second.write_bytes(payload)
        injector = ChaosInjector(ChaosConfig(modes=("corrupt-cache",),
                                             seed=6))
        assert injector.corrupt_file(first, "cache", "k1")
        assert injector.corrupt_file(second, "cache", "k1")
        assert first.read_bytes() == second.read_bytes() != payload

    def test_corrupt_missing_file_is_harmless(self, tmp_path):
        injector = ChaosInjector(ChaosConfig(modes=("corrupt-cache",)))
        assert not injector.corrupt_file(tmp_path / "absent.bin", "x")


class TestClassifyFailure:
    def test_runtime_faults_pass_through(self):
        fault = TrialTimeout("deadline")
        assert classify_failure(fault) is fault

    def test_broken_pool_is_worker_lost(self):
        fault = classify_failure(BrokenProcessPool("pool died"))
        assert isinstance(fault, WorkerLost)

    def test_timeout_error_is_trial_timeout(self):
        assert isinstance(classify_failure(TimeoutError("slow")),
                          TrialTimeout)

    def test_generic_exception_is_trial_crash(self):
        fault = classify_failure(ZeroDivisionError("oops"))
        assert isinstance(fault, TrialCrash)
        assert "ZeroDivisionError" in str(fault)

    def test_chaos_error_is_trial_crash(self):
        assert isinstance(classify_failure(ChaosError("boom")), TrialCrash)

    def test_trial_crash_survives_pickling(self):
        fault = TrialCrash("trial 7 raised ChaosError: boom", trial_index=7)
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.trial_index == 7
        assert str(clone) == str(fault)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(trial_timeout=0.0)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_cap=1.0, jitter=0.5)
        delays = [policy.backoff_delay("campaign", 3, attempt)
                  for attempt in range(1, 8)]
        assert delays == [policy.backoff_delay("campaign", 3, attempt)
                          for attempt in range(1, 8)]
        for attempt, delay in enumerate(delays, start=1):
            base = min(1.0, 0.1 * 2 ** (attempt - 1))
            assert base * 0.5 <= delay <= base * 1.5
        # Exponential growth until the cap dominates.
        assert delays[-1] <= 1.5

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.2, backoff_cap=10.0, jitter=0.0)
        assert policy.backoff_delay("x", 0, 1) == pytest.approx(0.2)
        assert policy.backoff_delay("x", 0, 3) == pytest.approx(0.8)

    def test_deadline_scales_with_items(self):
        policy = RetryPolicy(trial_timeout=0.5, startup_grace=0.0)
        assert policy.deadline_for(10) == pytest.approx(5.0)
        assert policy.deadline_for(0) == pytest.approx(0.5)
        assert RetryPolicy().deadline_for(10) is None

    def test_deadline_includes_startup_grace(self):
        # Fork + argument-pickling costs count against the deadline (the
        # clock starts at submit), so the default policy pads it.
        policy = RetryPolicy(trial_timeout=0.5)
        assert policy.deadline_for(2) == pytest.approx(
            1.0 + policy.startup_grace)
        with pytest.raises(ValueError):
            RetryPolicy(startup_grace=-0.1)
