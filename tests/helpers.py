"""Hand-assembly helpers for unit tests."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import FunctionInfo, Program


def I(opcode: Opcode, qp: int = 0, r1: int = 0, r2: int = 0, r3: int = 0,
      imm: int = 0) -> Instruction:  # noqa: E743 (deliberate short name)
    return Instruction(opcode, qp=qp, r1=r1, r2=r2, r3=r3, imm=imm)


def program(instructions: Sequence[Instruction],
            functions: Optional[List[FunctionInfo]] = None,
            name: str = "test") -> Program:
    """Build a Program, appending HALT if the code does not end with one."""
    code = list(instructions)
    if not code or code[-1].opcode is not Opcode.HALT:
        code.append(I(Opcode.HALT))
    return Program(code, functions or [], entry=0, name=name)


def run(instructions: Sequence[Instruction], **kwargs):
    """Assemble + execute; returns the ExecutionResult."""
    from repro.arch.executor import FunctionalSimulator

    return FunctionalSimulator(program(instructions), **kwargs).run()
