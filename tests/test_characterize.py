"""Workload characterization tests."""

import pytest

from repro.experiments.common import ExperimentSettings
from repro.workloads.characterize import (
    WorkloadCharacter,
    characterize,
    format_characterization,
)
from repro.workloads.spec2000 import get_profile

SETTINGS = ExperimentSettings(target_instructions=8000, seed=13)


@pytest.fixture(scope="module")
def rows():
    profiles = [get_profile(n) for n in
                ("crafty", "mcf", "swim", "lucas")]
    return characterize(SETTINGS, profiles)


class TestCharacterize:
    def test_fraction_bounds(self, rows):
        for row in rows:
            for value in (row.neutral_frac, row.load_frac, row.store_frac,
                          row.branch_frac, row.pred_false_frac,
                          row.dead_frac, row.mispredict_rate):
                assert 0.0 <= value <= 1.0
            assert row.instructions > 1000
            assert row.ipc > 0

    def test_suite_contrasts(self, rows):
        by_name = {r.name: r for r in rows}
        # FP codes carry more neutral padding; int codes mispredict more.
        fp_neutral = (by_name["swim"].neutral_frac
                      + by_name["lucas"].neutral_frac) / 2
        int_neutral = (by_name["crafty"].neutral_frac
                       + by_name["mcf"].neutral_frac) / 2
        assert fp_neutral > int_neutral
        assert by_name["crafty"].mispredict_rate > \
            by_name["lucas"].mispredict_rate

    def test_memory_behaviour_measured(self, rows):
        for row in rows:
            assert row.l0_miss_per_kilo > 0
            assert row.l1_miss_per_kilo >= 0
            assert row.l0_miss_per_kilo >= row.l1_miss_per_kilo

    def test_format(self, rows):
        text = format_characterization(rows)
        assert "Workload characterization" in text
        assert "suite means" in text
        assert "crafty" in text
