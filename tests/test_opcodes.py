"""Tests for the opcode taxonomy."""

import pytest

from repro.isa import opcodes
from repro.isa.opcodes import InstrClass, Opcode


class TestDecodeOpcode:
    def test_architected_values_roundtrip(self):
        for op in Opcode:
            if op is Opcode.ILLEGAL:
                continue
            assert opcodes.decode_opcode(int(op)) is op

    def test_unarchitected_values_are_illegal(self):
        for value in (24, 63, 100, 126, 127):
            assert opcodes.decode_opcode(value) is Opcode.ILLEGAL

    def test_total_over_7_bit_space(self):
        for value in range(128):
            assert isinstance(opcodes.decode_opcode(value), Opcode)


class TestClassification:
    def test_every_opcode_has_a_class(self):
        for op in Opcode:
            assert isinstance(opcodes.instr_class(op), InstrClass)

    def test_neutral_set(self):
        assert opcodes.is_neutral(Opcode.NOP)
        assert opcodes.is_neutral(Opcode.PREFETCH)
        assert opcodes.is_neutral(Opcode.HINT)
        assert not opcodes.is_neutral(Opcode.ADD)
        assert not opcodes.is_neutral(Opcode.LD)

    def test_gpr_writers(self):
        assert opcodes.writes_gpr(Opcode.ADD)
        assert opcodes.writes_gpr(Opcode.LD)
        assert opcodes.writes_gpr(Opcode.MOVI)
        assert not opcodes.writes_gpr(Opcode.ST)
        assert not opcodes.writes_gpr(Opcode.BR)
        assert not opcodes.writes_gpr(Opcode.NOP)
        assert not opcodes.writes_gpr(Opcode.CMP_EQ)

    def test_predicate_writers(self):
        for op in (Opcode.CMP_EQ, Opcode.CMP_LT, Opcode.CMP_NE):
            assert opcodes.writes_predicate(op)
        assert not opcodes.writes_predicate(Opcode.ADD)

    def test_store_reads_data_and_base(self):
        assert opcodes.gpr_sources(Opcode.ST) == ("r1", "r2")

    def test_load_reads_base_only(self):
        assert opcodes.gpr_sources(Opcode.LD) == ("r2",)

    def test_reg_reg_alu_reads_two(self):
        assert opcodes.gpr_sources(Opcode.XOR) == ("r2", "r3")

    def test_movi_reads_nothing(self):
        assert opcodes.gpr_sources(Opcode.MOVI) == ()

    def test_control_set(self):
        for op in (Opcode.BR, Opcode.CALL, Opcode.RET, Opcode.HALT):
            assert opcodes.is_control(op)
        assert not opcodes.is_control(Opcode.ADD)

    def test_wide_imm_opcodes(self):
        assert Opcode.MOVI in opcodes.WIDE_IMM_OPCODES
        assert Opcode.BR in opcodes.WIDE_IMM_OPCODES
        assert Opcode.CALL in opcodes.WIDE_IMM_OPCODES
        assert Opcode.ADDI not in opcodes.WIDE_IMM_OPCODES

    def test_classes_partition(self):
        # Every opcode lands in exactly one mutually understood class.
        assert opcodes.instr_class(Opcode.MUL) is InstrClass.MUL
        assert opcodes.instr_class(Opcode.LD) is InstrClass.LOAD
        assert opcodes.instr_class(Opcode.ST) is InstrClass.STORE
        assert opcodes.instr_class(Opcode.OUT) is InstrClass.OUTPUT
        assert opcodes.instr_class(Opcode.NOP) is InstrClass.NEUTRAL
        assert opcodes.instr_class(Opcode.ILLEGAL) is InstrClass.ILLEGAL
