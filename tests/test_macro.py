"""Macro-redundancy false-DUE comparison tests."""

import pytest

from repro.avf.occupancy import compute_breakdown
from repro.due.macro import (
    FALSE_SIGNAL_CATEGORIES,
    RedundancyScheme,
    compare_schemes,
    false_due_avf,
)


@pytest.fixture(scope="module")
def breakdown(small_pipeline, small_deadness):
    return compute_breakdown(small_pipeline, small_deadness)


class TestRanking:
    def test_paper_ordering(self, breakdown):
        """Lockstep >= RMT-all >= RMT-outputs in false-DUE exposure."""
        lockstep = false_due_avf(breakdown, RedundancyScheme.LOCKSTEP)
        rmt_all = false_due_avf(breakdown,
                                RedundancyScheme.RMT_ALL_INSTRUCTIONS)
        rmt_out = false_due_avf(breakdown, RedundancyScheme.RMT_OUTPUTS_ONLY)
        assert lockstep >= rmt_all >= rmt_out
        assert lockstep > rmt_out  # strict on a workload with wrong path

    def test_lockstep_bounded_by_parity_false_due(self, breakdown):
        # Lockstep never signals on neutral instructions, so it stays
        # below the parity-protected queue's total false DUE.
        assert false_due_avf(breakdown, RedundancyScheme.LOCKSTEP) <= \
            breakdown.false_due_avf

    def test_category_sets_nested(self):
        lockstep = FALSE_SIGNAL_CATEGORIES[RedundancyScheme.LOCKSTEP]
        rmt_all = FALSE_SIGNAL_CATEGORIES[
            RedundancyScheme.RMT_ALL_INSTRUCTIONS]
        rmt_out = FALSE_SIGNAL_CATEGORIES[RedundancyScheme.RMT_OUTPUTS_ONLY]
        assert rmt_out < rmt_all < lockstep

    def test_wrong_path_only_hits_lockstep(self):
        for scheme, categories in FALSE_SIGNAL_CATEGORIES.items():
            expected = scheme is RedundancyScheme.LOCKSTEP
            assert ("wrong_path" in categories) == expected

    def test_compare_schemes_keys(self, breakdown):
        comparison = compare_schemes(breakdown)
        assert set(comparison) == {"lockstep", "rmt_all", "rmt_outputs"}
        assert all(0.0 <= v <= 1.0 for v in comparison.values())
