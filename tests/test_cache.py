"""Cache and hierarchy tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import AccessResult, CacheHierarchy, HierarchyConfig


def tiny_cache(ways=2, sets=2, line=4):
    return Cache(CacheConfig(size_words=ways * sets * line,
                             line_words=line, ways=ways, name="T"))


class TestCacheConfig:
    def test_geometry_validated(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=0, line_words=4, ways=2)
        with pytest.raises(ValueError):
            CacheConfig(size_words=100, line_words=4, ways=2)  # not divisible
        with pytest.raises(ValueError):
            CacheConfig(size_words=24, line_words=3, ways=2)  # line not pow2

    def test_num_sets(self):
        config = CacheConfig(size_words=64, line_words=4, ways=2)
        assert config.num_sets == 8


class TestCacheBehaviour:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(3)  # same line
        assert (cache.hits, cache.misses) == (2, 1)

    def test_different_lines_in_same_set(self):
        cache = tiny_cache(ways=2, sets=2, line=4)
        # Lines 0 and 2 map to set 0 (2 sets): both fit in 2 ways.
        cache.access(0)
        cache.access(2 * 4)
        assert cache.access(0)
        assert cache.access(2 * 4)

    def test_lru_eviction(self):
        cache = tiny_cache(ways=2, sets=1, line=4)
        cache.access(0)  # line 0
        cache.access(4)  # line 1
        cache.access(8)  # line 2 -> evicts line 0
        assert not cache.access(0)

    def test_lru_updated_on_hit(self):
        cache = tiny_cache(ways=2, sets=1, line=4)
        cache.access(0)
        cache.access(4)
        cache.access(0)  # touch line 0: line 1 becomes LRU
        cache.access(8)  # evicts line 1
        assert cache.access(0)
        assert not cache.access(4)

    def test_probe_does_not_mutate(self):
        cache = tiny_cache()
        cache.access(0)
        hits, misses = cache.hits, cache.misses
        assert cache.probe(0)
        assert not cache.probe(64)
        assert (cache.hits, cache.misses) == (hits, misses)

    def test_miss_rate(self):
        cache = tiny_cache()
        assert cache.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_reset_stats(self):
        cache = tiny_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=200))
    def test_set_occupancy_bounded_by_ways(self, addresses):
        cache = tiny_cache(ways=2, sets=2, line=4)
        for address in addresses:
            cache.access(address)
        for tags in cache._sets:
            assert len(tags) <= 2

    @given(st.lists(st.integers(0, 1023), min_size=1, max_size=200))
    def test_repeat_of_last_address_always_hits(self, addresses):
        cache = tiny_cache()
        for address in addresses:
            cache.access(address)
        assert cache.probe(addresses[-1])


class TestHierarchy:
    def test_default_geometry(self):
        config = HierarchyConfig()
        assert config.l0.size_words < config.l1.size_words \
            < config.l2.size_words

    def test_miss_levels_and_latency(self):
        hierarchy = CacheHierarchy()
        first = hierarchy.access(0)
        assert first.l0_miss and first.l1_miss and first.l2_miss
        assert first.latency == hierarchy.config.memory_latency
        assert first.hit_level == "MEM"
        second = hierarchy.access(0)
        assert not second.l0_miss
        assert second.latency == hierarchy.config.l0_latency
        assert second.hit_level == "L0"

    def test_l1_hit_after_l0_eviction(self):
        hierarchy = CacheHierarchy()
        line = hierarchy.config.l0.line_words
        l0_lines = hierarchy.config.l0.size_words // line
        hierarchy.access(0)
        # Stream enough lines to evict line 0 from L0 but not from L1.
        for i in range(1, l0_lines + 1):
            hierarchy.access(i * line)
        result = hierarchy.access(0)
        assert result.l0_miss and not result.l1_miss
        assert result.latency == hierarchy.config.l1_latency
        assert result.hit_level == "L1"

    def test_reset_stats(self):
        hierarchy = CacheHierarchy()
        hierarchy.access(0)
        hierarchy.reset_stats()
        assert hierarchy.l0.accesses == 0
        assert hierarchy.l2.accesses == 0
