"""Branch-predictor tests."""

import pytest

from repro.pipeline.branch import GShareBranchPredictor
from repro.util.rng import DeterministicRng


class TestGShare:
    def test_learns_always_taken(self):
        predictor = GShareBranchPredictor(history_bits=0)
        for _ in range(8):
            predictor.update(pc=100, taken=True)
        assert predictor.predict(100)

    def test_learns_loop_pattern(self):
        # A loop backedge taken many times then falling through once:
        # the predictor should be near-perfect after warmup.
        predictor = GShareBranchPredictor()
        mispredicts = 0
        for _ in range(50):
            for i in range(20):
                taken = i < 19
                if predictor.update(pc=7, taken=taken) != taken:
                    mispredicts += 1
        assert mispredicts / predictor.predictions < 0.2

    def test_random_stream_near_half(self):
        predictor = GShareBranchPredictor()
        rng = DeterministicRng(42)
        for _ in range(4000):
            predictor.update(pc=9, taken=rng.bernoulli(0.5))
        assert 0.35 < predictor.mispredict_rate < 0.65

    def test_counters_saturate(self):
        predictor = GShareBranchPredictor(table_bits=4, history_bits=0)
        for _ in range(100):
            predictor.update(pc=0, taken=True)
        # One not-taken must not flip the prediction (2-bit hysteresis).
        predictor.update(pc=0, taken=False)
        assert predictor.predict(0)

    def test_rate_zero_before_use(self):
        assert GShareBranchPredictor().mispredict_rate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            GShareBranchPredictor(table_bits=0)
        with pytest.raises(ValueError):
            GShareBranchPredictor(history_bits=-1)

    def test_distinct_pcs_do_not_alias_much(self):
        predictor = GShareBranchPredictor(history_bits=0)
        for _ in range(10):
            predictor.update(pc=1, taken=True)
            predictor.update(pc=2, taken=False)
        assert predictor.predict(1)
        assert not predictor.predict(2)
