"""Exposure-reduction mechanism tests (squash and throttle)."""

from dataclasses import replace

import pytest

from repro.avf.occupancy import AccountingPolicy, compute_breakdown
from repro.pipeline.config import SquashAction, SquashConfig, Trigger
from repro.pipeline.core import PipelineSimulator
from repro.pipeline.iq import OccupantKind


@pytest.fixture(scope="module")
def l0_pipeline(small_program, small_execution, base_machine):
    machine = replace(base_machine,
                      squash=SquashConfig(trigger=Trigger.L0_MISS))
    return PipelineSimulator(small_program, small_execution.trace,
                             machine, seed=1234).run()


@pytest.fixture(scope="module")
def throttle_pipeline(small_program, small_execution, base_machine):
    machine = replace(base_machine,
                      squash=SquashConfig(trigger=Trigger.L1_MISS,
                                          action=SquashAction.THROTTLE))
    return PipelineSimulator(small_program, small_execution.trace,
                             machine, seed=1234).run()


class TestSquashMechanics:
    def test_squash_fires(self, squash_pipeline):
        assert squash_pipeline.stats["squash_events"] > 0
        assert squash_pipeline.stats["squashed_instructions"] > 0

    def test_no_squash_without_trigger(self, small_pipeline):
        assert small_pipeline.stats["squash_events"] == 0
        kinds = {i.kind for i in small_pipeline.intervals}
        assert OccupantKind.SQUASHED not in kinds

    def test_squashed_intervals_never_issued(self, squash_pipeline):
        for interval in squash_pipeline.intervals:
            if interval.kind is OccupantKind.SQUASHED:
                assert not interval.issued

    def test_squash_victims_are_refetched_and_commit(self, squash_pipeline,
                                                     small_execution):
        committed = {i.seq for i in squash_pipeline.intervals
                     if i.kind is OccupantKind.COMMITTED}
        assert committed == {op.seq for op in small_execution.trace}

    def test_squashed_seq_appears_again(self, squash_pipeline):
        squashed = [i.seq for i in squash_pipeline.intervals
                    if i.kind is OccupantKind.SQUASHED]
        committed = {i.seq for i in squash_pipeline.intervals
                     if i.kind is OccupantKind.COMMITTED}
        assert squashed  # some victims exist
        assert all(seq in committed for seq in squashed)

    def test_l0_trigger_fires_at_least_as_often(self, l0_pipeline,
                                                squash_pipeline):
        assert l0_pipeline.stats["squash_events"] >= \
            squash_pipeline.stats["squash_events"]

    def test_squash_costs_some_ipc(self, small_pipeline, squash_pipeline):
        assert squash_pipeline.ipc <= small_pipeline.ipc * 1.02


class TestSquashAvfEffect:
    def test_sdc_avf_falls(self, small_pipeline, squash_pipeline,
                           small_deadness):
        base = compute_breakdown(small_pipeline, small_deadness)
        squashed = compute_breakdown(squash_pipeline, small_deadness)
        assert squashed.sdc_avf < base.sdc_avf

    def test_due_avf_falls(self, small_pipeline, squash_pipeline,
                           small_deadness):
        base = compute_breakdown(small_pipeline, small_deadness)
        squashed = compute_breakdown(squash_pipeline, small_deadness)
        assert squashed.due_avf < base.due_avf

    def test_read_gated_policy_benefits_more(self, squash_pipeline,
                                             small_deadness):
        conservative = compute_breakdown(
            squash_pipeline, small_deadness, AccountingPolicy.CONSERVATIVE)
        read_gated = compute_breakdown(
            squash_pipeline, small_deadness, AccountingPolicy.READ_GATED)
        # Read gating proves squash victims harmless, so it reports a
        # strictly lower (or equal) AVF than the conservative accounting.
        assert read_gated.sdc_avf <= conservative.sdc_avf


class TestThrottle:
    def test_throttle_stalls_fetch(self, throttle_pipeline):
        assert throttle_pipeline.stats["throttle_cycles"] > 0

    def test_throttle_squashes_nothing(self, throttle_pipeline):
        assert throttle_pipeline.stats["squash_events"] == 0

    def test_throttle_reduces_occupancy(self, small_pipeline,
                                        throttle_pipeline):
        assert throttle_pipeline.occupancy_fraction() < \
            small_pipeline.occupancy_fraction()


class TestOooIssue:
    def test_ooo_improves_ipc(self, small_program, small_execution,
                              base_machine):
        from dataclasses import replace
        from repro.pipeline.config import IssuePolicy
        from repro.pipeline.core import PipelineSimulator

        ooo = replace(base_machine, issue_policy=IssuePolicy.OOO_WINDOW)
        in_order_run = PipelineSimulator(
            small_program, small_execution.trace, base_machine,
            seed=1234).run()
        ooo_run = PipelineSimulator(
            small_program, small_execution.trace, ooo, seed=1234).run()
        assert ooo_run.ipc > in_order_run.ipc
        assert ooo_run.committed == in_order_run.committed

    def test_ooo_commits_in_order(self, small_program, small_execution,
                                  base_machine):
        from dataclasses import replace
        from repro.pipeline.config import IssuePolicy
        from repro.pipeline.core import PipelineSimulator
        from repro.pipeline.iq import OccupantKind

        ooo = replace(base_machine, issue_policy=IssuePolicy.OOO_WINDOW)
        result = PipelineSimulator(small_program, small_execution.trace,
                                   ooo, seed=1234).run()
        committed = [i for i in result.intervals
                     if i.kind is OccupantKind.COMMITTED]
        deallocs = [i.dealloc_cycle for i in
                    sorted(committed, key=lambda i: i.seq)]
        assert deallocs == sorted(deallocs)

    def test_ooo_squash_still_works(self, small_program, small_execution,
                                    base_machine):
        from dataclasses import replace
        from repro.pipeline.config import (IssuePolicy, SquashConfig,
                                           Trigger)
        from repro.pipeline.core import PipelineSimulator

        machine = replace(base_machine,
                          issue_policy=IssuePolicy.OOO_WINDOW,
                          squash=SquashConfig(trigger=Trigger.L1_MISS))
        result = PipelineSimulator(small_program, small_execution.trace,
                                   machine, seed=1234).run()
        assert result.stats["squash_events"] > 0
        assert result.committed == len(small_execution.trace)
