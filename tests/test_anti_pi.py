"""Anti-π bit tests."""

from repro.due.anti_pi import anti_pi_bit, anti_pi_suppresses
from repro.isa.encoding import Field, field_bits
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class TestAntiPiBit:
    def test_set_for_neutral_types(self):
        for opcode in (Opcode.NOP, Opcode.PREFETCH, Opcode.HINT):
            assert anti_pi_bit(Instruction(opcode))

    def test_clear_for_everything_else(self):
        for opcode in (Opcode.ADD, Opcode.LD, Opcode.ST, Opcode.BR,
                       Opcode.OUT, Opcode.CMP_EQ, Opcode.MOVI):
            assert not anti_pi_bit(Instruction(opcode))


class TestSuppression:
    def test_non_opcode_bits_suppressed(self):
        nop = Instruction(Opcode.NOP)
        for field in (Field.QP, Field.R1, Field.R2, Field.R3, Field.IMM7):
            for bit in field_bits(field):
                assert anti_pi_suppresses(nop, bit)

    def test_opcode_bits_not_suppressed(self):
        nop = Instruction(Opcode.NOP)
        for bit in field_bits(Field.OPCODE):
            assert not anti_pi_suppresses(nop, bit)

    def test_non_neutral_never_suppressed(self):
        add = Instruction(Opcode.ADD, r1=1, r2=2, r3=3)
        for bit in range(41):
            assert not anti_pi_suppresses(add, bit)
