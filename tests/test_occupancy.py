"""Occupancy integration tests with hand-computed expectations."""

import pytest

from repro.analysis.deadcode import DeadnessAnalysis, DynClass
from repro.avf.occupancy import (
    AccountingPolicy,
    OccupancyBreakdown,
    compute_breakdown,
)
from repro.isa.encoding import ENCODING_BITS, OPCODE_BITS, R1_BITS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.iq import OccupancyInterval, OccupantKind
from repro.pipeline.result import PipelineResult


def make_result(intervals, cycles=100, entries=4):
    return PipelineResult(cycles=cycles, committed=len(intervals),
                          intervals=intervals, iq_entries=entries)


def interval(seq, kind, alloc, issue, dealloc):
    return OccupancyInterval(
        seq=seq if kind is not OccupantKind.WRONG_PATH else None,
        instruction=Instruction(Opcode.ADD, r1=1),
        kind=kind, alloc_cycle=alloc, issue_cycle=issue,
        dealloc_cycle=dealloc)


def deadness(classes, distances=None):
    return DeadnessAnalysis(classes=list(classes),
                            overwrite_distance=distances or {})


class TestHandComputed:
    def test_single_live_interval(self):
        # One occupant, ACE for 10 of 100 cycles in one of 4 entries.
        result = make_result(
            [interval(0, OccupantKind.COMMITTED, 0, 10, 12)])
        breakdown = compute_breakdown(result, deadness([DynClass.LIVE]))
        expected = (ENCODING_BITS * 10) / (ENCODING_BITS * 4 * 100)
        assert breakdown.sdc_avf == pytest.approx(expected)
        assert breakdown.false_due_avf == 0.0
        assert breakdown.ex_ace_fraction == pytest.approx(
            (ENCODING_BITS * 2) / (ENCODING_BITS * 400))

    def test_neutral_split(self):
        result = make_result(
            [interval(0, OccupantKind.COMMITTED, 0, 10, 10)])
        breakdown = compute_breakdown(result, deadness([DynClass.NEUTRAL]))
        denom = ENCODING_BITS * 4 * 100
        assert breakdown.sdc_avf == pytest.approx(OPCODE_BITS * 10 / denom)
        assert breakdown.false_due_components()["neutral"] == pytest.approx(
            (ENCODING_BITS - OPCODE_BITS) * 10 / denom)

    def test_dead_split_and_distance_weight(self):
        result = make_result(
            [interval(0, OccupantKind.COMMITTED, 0, 20, 20)])
        breakdown = compute_breakdown(
            result, deadness([DynClass.FDD_REG], {0: 100}))
        denom = ENCODING_BITS * 4 * 100
        assert breakdown.sdc_avf == pytest.approx(R1_BITS * 20 / denom)
        assert breakdown.pet_covered_fraction(512) == 1.0
        assert breakdown.pet_covered_fraction(64) == 0.0

    def test_idle_fraction(self):
        result = make_result(
            [interval(0, OccupantKind.COMMITTED, 0, 10, 20)])
        breakdown = compute_breakdown(result, deadness([DynClass.LIVE]))
        assert breakdown.idle_fraction == pytest.approx(1 - 20 / 400)

    def test_due_is_true_plus_false(self):
        result = make_result([
            interval(0, OccupantKind.COMMITTED, 0, 10, 10),
            interval(1, OccupantKind.COMMITTED, 0, 10, 10),
        ])
        breakdown = compute_breakdown(
            result, deadness([DynClass.LIVE, DynClass.PRED_FALSE]))
        assert breakdown.due_avf == pytest.approx(
            breakdown.true_due_avf + breakdown.false_due_avf)
        assert breakdown.true_due_avf == breakdown.sdc_avf


class TestPolicies:
    def _squashed_result(self):
        return make_result([
            interval(0, OccupantKind.SQUASHED, 0, None, 30),
            interval(0, OccupantKind.COMMITTED, 30, 40, 41),
        ])

    def test_conservative_charges_victims(self):
        breakdown = compute_breakdown(
            self._squashed_result(), deadness([DynClass.LIVE]),
            AccountingPolicy.CONSERVATIVE)
        denom = ENCODING_BITS * 4 * 100
        assert breakdown.sdc_avf == pytest.approx(
            ENCODING_BITS * (30 + 10) / denom)
        assert breakdown.unread_bit_cycles == 0.0

    def test_read_gated_ignores_victims(self):
        breakdown = compute_breakdown(
            self._squashed_result(), deadness([DynClass.LIVE]),
            AccountingPolicy.READ_GATED)
        denom = ENCODING_BITS * 4 * 100
        assert breakdown.sdc_avf == pytest.approx(
            ENCODING_BITS * 10 / denom)
        assert breakdown.unread_fraction == pytest.approx(
            ENCODING_BITS * 30 / denom)

    def test_wrong_path_never_needs_deadness(self):
        result = make_result(
            [interval(None, OccupantKind.WRONG_PATH, 0, 5, 8)])
        breakdown = compute_breakdown(result, None)
        assert breakdown.sdc_avf == 0.0
        assert "wrong_path" in breakdown.false_due_components()

    def test_committed_requires_deadness(self):
        result = make_result(
            [interval(0, OccupantKind.COMMITTED, 0, 5, 8)])
        with pytest.raises(ValueError):
            compute_breakdown(result, None)


class TestPetFraction:
    def test_mixed_distances(self):
        result = make_result([
            interval(0, OccupantKind.COMMITTED, 0, 10, 10),
            interval(1, OccupantKind.COMMITTED, 0, 30, 30),
        ])
        breakdown = compute_breakdown(
            result,
            deadness([DynClass.FDD_REG, DynClass.FDD_REG],
                     {0: 100, 1: 10_000}))
        # Residency weights 10 vs 30: only the first is PET-coverable.
        assert breakdown.pet_covered_fraction(512) == pytest.approx(0.25)

    def test_never_overwritten_uncovered(self):
        result = make_result(
            [interval(0, OccupantKind.COMMITTED, 0, 10, 10)])
        breakdown = compute_breakdown(
            result, deadness([DynClass.FDD_REG], {0: None}))
        assert breakdown.pet_covered_fraction(1 << 20) == 0.0

    def test_empty_is_zero(self):
        result = make_result(
            [interval(0, OccupantKind.COMMITTED, 0, 10, 10)])
        breakdown = compute_breakdown(result, deadness([DynClass.LIVE]))
        assert breakdown.pet_covered_fraction(512) == 0.0
