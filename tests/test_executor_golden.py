"""Golden-model tests: executor ALU semantics vs reference lambdas.

Hypothesis drives random 64-bit operands through every ALU opcode in a
real program and compares against independently written reference
semantics — catching any divergence between the executor's fast paths and
the architecture definition.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.arch.executor import FunctionalSimulator
from repro.isa.opcodes import Opcode
from tests.helpers import I, program

MASK = (1 << 64) - 1


def _signed(value):
    return value - (1 << 64) if value & (1 << 63) else value


GOLDEN = {
    Opcode.ADD: lambda a, b: (a + b) & MASK,
    Opcode.SUB: lambda a, b: (a - b) & MASK,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: (a << (b % 64)) & MASK,
    Opcode.SHR: lambda a, b: a >> (b % 64),
    Opcode.MUL: lambda a, b: (a * b) & MASK,
}

CMP_GOLDEN = {
    Opcode.CMP_EQ: lambda a, b: a == b,
    Opcode.CMP_NE: lambda a, b: a != b,
    Opcode.CMP_LT: lambda a, b: _signed(a) < _signed(b),
}

words = st.integers(0, MASK)


def _load_constant(reg, value):
    """Materialise an arbitrary 64-bit constant: four 16-bit chunks."""
    ops = [I(Opcode.MOVI, r1=reg, imm=(value >> 48) & 0xFFFF)]
    shift_reg = 63  # temp register holding the shift amount
    ops.append(I(Opcode.MOVI, r1=shift_reg, imm=16))
    for shift in (32, 16, 0):
        chunk = (value >> shift) & 0xFFFF
        ops.append(I(Opcode.SHL, r1=reg, r2=reg, r3=shift_reg))
        ops.append(I(Opcode.MOVI, r1=62, imm=chunk))
        ops.append(I(Opcode.OR, r1=reg, r2=reg, r3=62))
    return ops


def _run_binop(opcode, a, b):
    code = _load_constant(1, a) + _load_constant(2, b) + [
        I(opcode, r1=3, r2=1, r3=2),
        I(Opcode.OUT, r2=3),
    ]
    result = FunctionalSimulator(program(code)).run(record_trace=False)
    assert result.clean
    return result.outputs[0]


class TestAluGoldenModel:
    @given(words, words, st.sampled_from(sorted(GOLDEN, key=int)))
    def test_matches_reference(self, a, b, opcode):
        assert _run_binop(opcode, a, b) == GOLDEN[opcode](a, b)

    @given(words, words, st.sampled_from(sorted(CMP_GOLDEN, key=int)))
    def test_compares_match_reference(self, a, b, opcode):
        code = _load_constant(1, a) + _load_constant(2, b) + [
            I(opcode, r1=5, r2=1, r3=2),
            I(Opcode.MOVI, r1=4, imm=0),
            I(Opcode.MOVI, qp=5, r1=4, imm=1),
            I(Opcode.OUT, r2=4),
        ]
        result = FunctionalSimulator(program(code)).run(record_trace=False)
        assert result.clean
        assert bool(result.outputs[0]) == CMP_GOLDEN[opcode](a, b)

    @given(words)
    def test_constant_materialisation(self, value):
        code = _load_constant(1, value) + [I(Opcode.OUT, r2=1)]
        result = FunctionalSimulator(program(code)).run(record_trace=False)
        assert result.outputs[0] == value
