"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_exhibit_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.instructions == 60_000
        assert args.profiles is None
        assert args.seed == 2004


class TestMain:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "crafty" in output
        assert "regenerated" in output

    def test_table1_small(self, capsys):
        assert main(["table1", "--instructions", "6000",
                     "--profiles", "2"]) == 0
        output = capsys.readouterr().out
        assert "Design Point" in output
        assert "Squash on L1 load misses" in output

    def test_figure3_small(self, capsys):
        assert main(["figure3", "--instructions", "6000",
                     "--profiles", "2"]) == 0
        assert "PET entries" in capsys.readouterr().out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--instructions", "6000",
                     "--trials", "30"]) == 0
        assert "unprotected" in capsys.readouterr().out
