"""CLI tests."""

import pytest

from repro.cli import build_parser, main
from repro.runtime.chaos import ChaosConfig, ChaosInjector
from repro.runtime.context import reset_runtime


@pytest.fixture(autouse=True)
def _restore_runtime():
    """main() installs a global runtime context; don't leak it."""
    yield
    reset_runtime()


class TestParser:
    def test_exhibit_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.instructions == 60_000
        assert args.profiles is None
        assert args.seed == 2004

    def test_resilience_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.retries == 2
        assert args.trial_timeout is None
        assert args.checkpoint_dir is None
        assert not args.resume
        assert args.chaos is None
        assert args.chaos_seed == 1337


class TestFlagValidation:
    def test_negative_retries_rejected(self, capsys):
        assert main(["figure1", "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        assert main(["figure1", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_unknown_chaos_mode_rejected(self, capsys):
        assert main(["figure1", "--chaos", "meteor-strike"]) == 2
        assert "unknown chaos mode" in capsys.readouterr().err


class TestMain:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "crafty" in output
        assert "regenerated" in output

    def test_table1_small(self, capsys):
        assert main(["table1", "--instructions", "6000",
                     "--profiles", "2"]) == 0
        output = capsys.readouterr().out
        assert "Design Point" in output
        assert "Squash on L1 load misses" in output

    def test_figure3_small(self, capsys):
        assert main(["figure3", "--instructions", "6000",
                     "--profiles", "2"]) == 0
        assert "PET entries" in capsys.readouterr().out

    def test_figure1_small(self, capsys):
        assert main(["figure1", "--instructions", "6000",
                     "--trials", "30"]) == 0
        assert "unprotected" in capsys.readouterr().out

    def test_figure1_chaos_matches_clean_run(self, capsys):
        """CLI-level golden equivalence: the exhibit text is identical
        with and without injected faults (the [regenerated in Ns] lines
        and telemetry footer differ, so compare the table body only)."""
        flags = ["figure1", "--instructions", "6000", "--trials", "24"]

        def exhibit_lines(out):
            return [line for line in out.splitlines()
                    if line and not line.startswith(("[", "  worker"))]

        assert main(list(flags)) == 0
        golden = exhibit_lines(capsys.readouterr().out)
        assert main(flags + ["--chaos", "raise-trial,delay-trial",
                             "--retries", "3"]) == 0
        chaotic = capsys.readouterr().out
        assert exhibit_lines(chaotic) == golden
        assert "resilience:" in chaotic

    def test_chaos_interrupt_exits_130(self, capsys, tmp_path):
        # Pick a chaos seed whose injected interrupt (default prob 0.05)
        # hits one of the campaign's 24 trials.
        def fires(seed):
            injector = ChaosInjector(ChaosConfig(modes=("interrupt",),
                                                 seed=seed))
            return any(injector.decide(0.05, "interrupt", "trial", i)
                       for i in range(24))

        seed = next(s for s in range(500) if fires(s))
        code = main(["figure1", "--instructions", "6000", "--trials", "24",
                     "--checkpoint-dir", str(tmp_path),
                     "--chaos", "interrupt", "--chaos-seed", str(seed)])
        assert code == 130
        captured = capsys.readouterr()
        assert "[interrupted:" in captured.err
        assert "--resume" in captured.err
        # The interrupted run still prints its telemetry account.
        assert "[runtime:" in captured.out
