"""Dedup/coalescing and LRU-bound properties of the AVF query server.

The load-bearing invariant: *K* requests over *M* distinct keys — any
interleaving, any connection fan-out, any worker count — produce exactly
*M* cold computations and *K* correct responses. A stub resolver counts
its invocations per key, so a duplicate simulation is a counted fact,
not an inference from timing.
"""

from __future__ import annotations

import asyncio
import threading
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.context import use_runtime
from repro.serve.client import AsyncServeClient
from repro.serve.server import AvfServer, ServeConfig


class CountingResolver:
    """Thread-safe per-key invocation counter standing in for the engine."""

    def __init__(self, delay: float = 0.0):
        self.delay = delay
        self.calls = {}
        self._lock = threading.Lock()

    def __call__(self, query):
        with self._lock:
            self.calls[query.key] = self.calls.get(query.key, 0) + 1
        if self.delay:
            time.sleep(self.delay)
        return {"echo": query.seed}


def request_for(seed: int) -> dict:
    """Distinct seeds are the cheapest way to mint distinct keys."""
    return {"op": "avf", "profile": "crafty",
            "target_instructions": 700, "seed": seed}


class TestDedupCoalescing:
    @settings(max_examples=20, deadline=None)
    @given(
        distinct=st.integers(min_value=1, max_value=5),
        picks=st.lists(st.integers(min_value=0, max_value=4),
                       min_size=1, max_size=24),
        workers=st.integers(min_value=1, max_value=3),
    )
    def test_k_requests_over_m_keys_yield_m_computes(self, distinct, picks,
                                                     workers):
        """However K requests interleave, each distinct key computes once."""
        seeds = [1000 + i for i in range(distinct)]
        assigned = [seeds[p % distinct] for p in picks]
        resolver = CountingResolver(delay=0.002)
        config = ServeConfig(host="127.0.0.1", port=0, lru_entries=64,
                             compute_workers=workers)

        async def main():
            server = AvfServer(config, resolver=resolver)
            await server.start()
            pool = []
            try:
                for _ in range(min(4, len(assigned))):
                    pool.append(await AsyncServeClient().connect(
                        "127.0.0.1", server.port))
                finals = await asyncio.gather(
                    *(pool[i % len(pool)].request(request_for(seed))
                      for i, seed in enumerate(assigned)))
                stats = dict(server.stats)
            finally:
                for client in pool:
                    await client.close()
                await server.stop()
            return finals, stats

        with use_runtime():
            finals, stats = asyncio.run(main())

        used = set(assigned)
        assert len(resolver.calls) == len(used)
        assert all(count == 1 for count in resolver.calls.values()), \
            f"duplicate cold simulations: {resolver.calls}"
        assert stats["serve_cold_computes"] == len(used)
        # Every one of the K responses is correct for *its* key.
        assert len(finals) == len(assigned)
        for seed, final in zip(assigned, finals):
            assert final["ok"] is True
            assert final["value"] == {"echo": seed}
        # Request accounting is airtight: cold + coalesced + warm == K.
        assert stats["serve_requests"] == len(assigned)
        assert (stats["serve_cold_computes"]
                + stats.get("serve_coalesced", 0)
                + stats.get("serve_warm_hits", 0)) == len(assigned)

    def test_gated_coalescing_is_deterministic(self):
        """Five requests land while the one compute is provably in flight:
        exactly one ``cold`` acceptance, four ``coalesced``, one resolver
        call, five identical answers."""
        started = threading.Event()
        release = threading.Event()
        resolver_calls = []

        def gated_resolver(query):
            resolver_calls.append(query.key)
            started.set()
            assert release.wait(10), "test deadlock: resolver never released"
            return {"echo": query.seed}

        async def main():
            server = AvfServer(ServeConfig(host="127.0.0.1", port=0),
                               resolver=gated_resolver)
            await server.start()
            client = await AsyncServeClient().connect(
                "127.0.0.1", server.port)
            try:
                event_logs = [[] for _ in range(5)]
                tasks = [asyncio.ensure_future(
                    client.request(request_for(42), log))
                    for log in event_logs]
                # Every request must be *accepted* before we let the one
                # computation finish — that forces the coalesced path.
                while not all(log for log in event_logs):
                    await asyncio.sleep(0.005)
                release.set()
                finals = await asyncio.gather(*tasks)
                accept_statuses = sorted(log[0]["status"]
                                         for log in event_logs)
                stats = dict(server.stats)
            finally:
                await client.close()
                await server.stop()
            return finals, accept_statuses, stats

        with use_runtime():
            finals, accept_statuses, stats = asyncio.run(main())
        assert accept_statuses == ["coalesced"] * 4 + ["cold"]
        assert len(resolver_calls) == 1
        assert stats["serve_cold_computes"] == 1
        assert stats["serve_coalesced"] == 4
        assert [final["value"] for final in finals] == [{"echo": 42}] * 5


class TestLruBounds:
    @settings(max_examples=15, deadline=None)
    @given(capacity=st.integers(min_value=1, max_value=4),
           extra=st.integers(min_value=1, max_value=6))
    def test_lru_bounds_entries_and_refetch_is_correct(self, capacity,
                                                       extra):
        """Live entries never exceed the cap; an evicted key re-fetches
        correctly (one extra compute) and then serves warm again."""
        total = capacity + extra
        resolver = CountingResolver()
        config = ServeConfig(host="127.0.0.1", port=0, lru_entries=capacity)

        async def main():
            server = AvfServer(config, resolver=resolver)
            await server.start()
            client = await AsyncServeClient().connect(
                "127.0.0.1", server.port)
            try:
                for seed in range(total):
                    final = await client.request(request_for(seed))
                    assert final["value"] == {"echo": seed}
                    assert len(server._lru) <= capacity
                assert len(server._lru) == capacity
                assert server.stats["serve_lru_evictions"] == total - capacity
                # Seed 0 is long evicted: re-fetch recomputes, correctly.
                refetch = await client.request(request_for(0))
                assert refetch["status"] == "cold"
                assert refetch["value"] == {"echo": 0}
                # ... and the re-fetched answer is warm on the next ask.
                again = await client.request(request_for(0))
                assert again["status"] == "warm"
                assert again["value"] == {"echo": 0}
                stats = dict(server.stats)
            finally:
                await client.close()
                await server.stop()
            return stats

        with use_runtime():
            stats = asyncio.run(main())
        # Exactly one duplicate compute — the post-eviction re-fetch.
        assert sum(resolver.calls.values()) == total + 1
        assert max(resolver.calls.values()) == 2
        # The re-fetch insert evicts one more entry past the initial fill.
        assert stats["serve_lru_evictions"] == total - capacity + 1
        assert stats["serve_warm_hits"] == 1

    def test_lru_zero_disables_warm_serving(self):
        resolver = CountingResolver()
        config = ServeConfig(host="127.0.0.1", port=0, lru_entries=0)

        async def main():
            server = AvfServer(config, resolver=resolver)
            await server.start()
            client = await AsyncServeClient().connect(
                "127.0.0.1", server.port)
            try:
                first = await client.request(request_for(5))
                second = await client.request(request_for(5))
                stats = dict(server.stats)
            finally:
                await client.close()
                await server.stop()
            return first, second, stats

        with use_runtime():
            first, second, stats = asyncio.run(main())
        assert first["status"] == "cold"
        assert second["status"] == "cold"
        assert first["value"] == second["value"] == {"echo": 5}
        assert sum(resolver.calls.values()) == 2
        assert stats["serve_cold_computes"] == 2
        assert stats.get("serve_lru_evictions", 0) == 0
