"""PET-buffer mechanism and coverage tests."""

import pytest

from repro.analysis.deadcode import DynClass, analyze_deadness
from repro.due.pet import PetBuffer, pet_coverage_by_size
from repro.isa.opcodes import Opcode
from tests.helpers import I, run


def feed(buffer, result, pi_seq):
    """Retire a whole trace, flagging one instruction's π bit."""
    decisions = []
    for op in result.trace:
        decision = buffer.retire(op, pi_set=(op.seq == pi_seq))
        if decision is not None:
            decisions.append(decision)
    decisions.extend(buffer.drain())
    return decisions


class TestMechanism:
    def test_validation(self):
        with pytest.raises(ValueError):
            PetBuffer(entries=0)

    def test_clear_pi_never_decides(self):
        buffer = PetBuffer(entries=2)
        result = run([I(Opcode.NOP)] * 8)
        assert feed(buffer, result, pi_seq=-1) == []

    def test_fdd_suppressed(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=5),  # pi here: FDD
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        ])
        decisions = feed(PetBuffer(entries=2), result, pi_seq=0)
        assert len(decisions) == 1
        assert not decisions[0].signal
        assert "FDD" in decisions[0].reason

    def test_read_forces_signal(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=5),  # pi here: read by OUT
            I(Opcode.OUT, r2=1),
            I(Opcode.MOVI, r1=1, imm=6),
        ])
        decisions = feed(PetBuffer(entries=2), result, pi_seq=0)
        assert decisions[0].signal
        assert "read" in decisions[0].reason

    def test_overwrite_outside_buffer_signals(self):
        # Overwrite exists but falls outside a 1-entry buffer window.
        result = run([
            I(Opcode.MOVI, r1=1, imm=5),  # pi
            I(Opcode.NOP),
            I(Opcode.NOP),
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        ])
        decisions = feed(PetBuffer(entries=1), result, pi_seq=0)
        assert decisions[0].signal

    def test_large_buffer_catches_distant_overwrite(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=5),  # pi
            *[I(Opcode.NOP)] * 20,
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        ])
        decisions = feed(PetBuffer(entries=64), result, pi_seq=0)
        assert not decisions[0].signal

    def test_predicate_resource(self):
        result = run([
            I(Opcode.CMP_EQ, r1=5, r2=0, r3=0),  # pi: p5, never read
            I(Opcode.CMP_NE, r1=5, r2=0, r3=0),  # overwrites p5
        ])
        decisions = feed(PetBuffer(entries=4), result, pi_seq=0)
        assert not decisions[0].signal

    def test_predicate_read_signals(self):
        result = run([
            I(Opcode.CMP_EQ, r1=5, r2=0, r3=0),  # pi: p5
            I(Opcode.MOVI, qp=5, r1=1, imm=3),  # reads p5
            I(Opcode.CMP_NE, r1=5, r2=0, r3=0),
        ])
        decisions = feed(PetBuffer(entries=4), result, pi_seq=0)
        assert decisions[0].signal

    def test_store_untracked_by_default(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=0x40),
            I(Opcode.ST, r1=1, r2=1, imm=0),  # pi on a store
            I(Opcode.ST, r1=0, r2=1, imm=0),  # overwrites
        ])
        decisions = feed(PetBuffer(entries=4), result, pi_seq=1)
        assert decisions[0].signal
        assert "no trackable result" in decisions[0].reason

    def test_store_tracked_with_memory_extension(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=0x40),
            I(Opcode.ST, r1=1, r2=1, imm=0),  # pi on a store
            I(Opcode.ST, r1=0, r2=1, imm=0),  # overwrites same word
        ])
        buffer = PetBuffer(entries=4, track_memory=True)
        decisions = feed(buffer, result, pi_seq=1)
        assert not decisions[0].signal

    def test_no_overwrite_in_buffer_signals(self):
        result = run([
            I(Opcode.MOVI, r1=1, imm=5),  # pi, never overwritten
            I(Opcode.NOP),
        ])
        decisions = feed(PetBuffer(entries=8), result, pi_seq=0)
        assert decisions[0].signal

    def test_eviction_happens_at_capacity(self):
        buffer = PetBuffer(entries=3)
        result = run([I(Opcode.NOP)] * 10)
        for op in result.trace[:3]:
            assert buffer.retire(op, pi_set=False) is None
        assert len(buffer) == 3
        buffer.retire(result.trace[3], pi_set=False)
        assert len(buffer) == 3


class TestCoverageCurves:
    def test_monotone_in_size(self, small_deadness):
        coverage = pet_coverage_by_size(small_deadness,
                                        sizes=(16, 64, 256, 1024, 4096))
        values = [coverage[s] for s in (16, 64, 256, 1024, 4096)]
        assert values == sorted(values)

    def test_bounds(self, small_deadness):
        coverage = pet_coverage_by_size(small_deadness, sizes=(1, 1 << 20))
        assert 0.0 <= coverage[1] <= coverage[1 << 20] <= 1.0

    def test_denominator_classes_nest(self, small_deadness):
        sizes = (512,)
        all_fdd = (DynClass.FDD_REG, DynClass.FDD_REG_RETURN,
                   DynClass.FDD_MEM)
        narrow = pet_coverage_by_size(
            small_deadness, sizes, classes=(DynClass.FDD_REG,),
            denominator_classes=all_fdd)[512]
        wide = pet_coverage_by_size(
            small_deadness, sizes, classes=all_fdd,
            denominator_classes=all_fdd)[512]
        assert narrow <= wide

    def test_bad_size_rejected(self, small_deadness):
        with pytest.raises(ValueError):
            pet_coverage_by_size(small_deadness, sizes=(0,))

    def test_consistency_with_mechanism(self):
        """The analytic coverage rule must agree with the FIFO mechanism:
        an FDD instruction is suppressed iff its overwrite distance fits."""
        result = run([
            I(Opcode.MOVI, r1=1, imm=5),
            *[I(Opcode.NOP)] * 10,
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        ])
        deadness = analyze_deadness(result)
        distance = deadness.overwrite_distance[0]
        ok = feed(PetBuffer(entries=distance), result, pi_seq=0)
        too_small = feed(PetBuffer(entries=distance - 1), result, pi_seq=0)
        assert not ok[0].signal
        assert too_small[0].signal
