"""Strike-evaluation fast-path tests.

The fast path's contract is *bit-identical tallies*: the effect oracle
(memoization + static pre-filter), the campaign-scoped evaluator, the
π-bit tracker memo, and the pipeline's warmed-hierarchy snapshot may only
change wall-clock, never a single outcome. These tests prove that
contract three ways:

* brute force — every ``(seq, bit)`` point of a tiny program whose trace
  exercises all three static-filter rules is compared against the seed
  slow path (``architectural_effect``);
* sampled — statically-killed points of the session workload are spot
  checked by re-execution;
* end-to-end — campaign tallies from every fast-path configuration
  (shared evaluator, static filter on/off, preloaded oracle) must equal
  the seed-era per-trial loop across every tracking level, plus the
  unprotected and ECC configurations.
"""

from collections import Counter

import pytest

from repro.arch.executor import FunctionalSimulator
from repro.due.pi_bit import PiBitTracker
from repro.due.tracking import TrackingLevel
from repro.faults.campaign import (
    CampaignConfig,
    run_campaign,
    run_trial_block,
    trial_seed,
)
from repro.faults.injector import (
    StrikeEvaluator,
    architectural_effect,
    evaluate_strike,
)
from repro.faults.model import StrikeModel
from repro.faults.oracle import (
    EffectOracle,
    load_persisted,
    oracle_cache_key,
    persist,
    validate_table,
)
from repro.isa.encoding import ENCODING_BITS, Field, field_bits
from repro.isa.opcodes import Opcode
from repro.runtime.cache import ResultCache
from repro.runtime.context import use_runtime
from repro.runtime.telemetry import Telemetry
from repro.util.rng import DeterministicRng
from tests.helpers import I, program

R3_BIT = next(iter(field_bits(Field.R3)))
IMM_BIT = next(iter(field_bits(Field.IMM7)))
OPCODE_BIT = next(iter(field_bits(Field.OPCODE)))

STATIC_REASONS = {
    "non-live field",
    "predicated-false, non-qp/opcode flip",
    "dead destination value",
}


@pytest.fixture(scope="module")
def rule_setup():
    """A tiny program whose trace exercises every static-filter rule."""
    prog = program([
        I(Opcode.MOVI, r1=1, imm=5),            # live value
        I(Opcode.MOVI, r1=9, imm=3),            # dead: r9 never read
        I(Opcode.CMP_NE, r1=6, r2=1, r3=1),     # p6 = (r1 != r1) = False
        I(Opcode.ADDI, qp=6, r1=2, r2=1, imm=1),  # predicated false
        I(Opcode.ADD, r1=3, r2=1, r3=1),        # live, non-live IMM field
        I(Opcode.OUT, r2=1),
    ])
    baseline = FunctionalSimulator(prog).run()
    assert baseline.clean
    return prog, baseline


class TestStaticFilterSoundness:
    def test_exhaustive_equivalence_on_tiny_program(self, rule_setup):
        """Every (seq, bit) point: oracle == seed slow path, and every
        static classification is backed by an actual "none" re-execution."""
        prog, baseline = rule_setup
        oracle = EffectOracle(prog, baseline)
        reasons = set()
        for seq in range(len(baseline.trace)):
            for bit in range(ENCODING_BITS):
                truth = architectural_effect(prog, baseline, seq, bit)
                assert oracle.effect(seq, bit) == truth, (seq, bit)
                reason = oracle.classify_static(seq, bit)
                if reason is not None:
                    assert truth == "none", (seq, bit, reason)
                    reasons.add(reason)
        # The tiny program must actually exercise all three rules, or the
        # exhaustive sweep proves less than it claims.
        assert reasons == STATIC_REASONS
        assert oracle.static_kills > 0
        points = len(baseline.trace) * ENCODING_BITS
        assert oracle.executions + oracle.static_kills == points

    def test_sampled_on_session_workload(self, small_program,
                                         small_execution):
        """Statically-killed points of the real workload re-execute to
        "none" — the rules hold beyond hand-built corner cases."""
        oracle = EffectOracle(small_program, small_execution)
        trace = small_execution.trace
        killed = []
        for seq in range(0, len(trace), 97):
            for bit in range(ENCODING_BITS):
                if oracle.classify_static(seq, bit) is not None:
                    killed.append((seq, bit))
        assert len(killed) >= 40, "stride found too few inert points"
        rng = DeterministicRng(2024)
        for _ in range(40):
            seq, bit = killed[rng.randrange(len(killed))]
            assert architectural_effect(
                small_program, small_execution, seq, bit) == "none", (seq, bit)


class TestOracleMemo:
    def test_memo_serves_repeats_without_reexecution(self, rule_setup):
        prog, baseline = rule_setup
        oracle = EffectOracle(prog, baseline, static_filter=False)
        first = oracle.effect(0, IMM_BIT)
        second = oracle.effect(0, IMM_BIT)
        assert first == second == "sdc"
        assert oracle.executions == 1
        assert oracle.memo_hits == 1

    def test_static_kill_is_memoized_too(self, rule_setup):
        prog, baseline = rule_setup
        oracle = EffectOracle(prog, baseline)
        assert oracle.effect(1, IMM_BIT) == "none"
        assert (oracle.static_kills, oracle.executions) == (1, 0)
        assert oracle.effect(1, IMM_BIT) == "none"
        assert (oracle.static_kills, oracle.memo_hits) == (1, 1)

    def test_filter_off_reexecutes_inert_points(self, rule_setup):
        prog, baseline = rule_setup
        oracle = EffectOracle(prog, baseline, static_filter=False)
        assert oracle.effect(1, IMM_BIT) == "none"
        assert (oracle.executions, oracle.static_kills) == (1, 0)

    def test_preload_serves_without_execution(self, rule_setup):
        prog, baseline = rule_setup
        donor = EffectOracle(prog, baseline)
        donor.effect(0, IMM_BIT)
        donor.effect(1, IMM_BIT)
        table = donor.new_entries()
        assert table == {(0, IMM_BIT): "sdc", (1, IMM_BIT): "none"}

        warm = EffectOracle(prog, baseline)
        assert warm.preload(table) == 2
        assert warm.effect(0, IMM_BIT) == "sdc"
        assert (warm.executions, warm.memo_hits) == (0, 1)
        # Preloaded entries are not re-exported.
        assert warm.new_entries() == {}

    def test_preload_never_overwrites_local_entries(self, rule_setup):
        prog, baseline = rule_setup
        oracle = EffectOracle(prog, baseline)
        assert oracle.effect(0, IMM_BIT) == "sdc"
        assert oracle.preload({(0, IMM_BIT): "hang"}) == 0
        assert oracle.effect(0, IMM_BIT) == "sdc"

    def test_counter_names_match_telemetry(self, rule_setup):
        prog, baseline = rule_setup
        oracle = EffectOracle(prog, baseline)
        assert set(oracle.counters()) == {
            "oracle_memo_hits", "oracle_static_kills", "oracle_executions"}


class TestOraclePersistence:
    def test_roundtrip_and_union_merge(self, tmp_path, rule_setup):
        prog, _ = rule_setup
        cache = ResultCache(tmp_path)
        key = oracle_cache_key(prog)
        persist(cache, key, {(0, 3): "sdc"})
        assert load_persisted(cache, key) == {(0, 3): "sdc"}
        # A second campaign's entries merge, never replace.
        persist(cache, key, {(1, 4): "none"})
        assert load_persisted(cache, key) == {(0, 3): "sdc", (1, 4): "none"}

    def test_empty_entries_are_not_written(self, tmp_path, rule_setup):
        prog, _ = rule_setup
        cache = ResultCache(tmp_path)
        persist(cache, oracle_cache_key(prog), {})
        assert cache.puts == 0

    def test_malformed_table_counts_as_error_miss(self, tmp_path,
                                                  rule_setup):
        prog, _ = rule_setup
        cache = ResultCache(tmp_path)
        key = oracle_cache_key(prog)
        cache.put(key, {"not-a-point": "sdc"})
        assert load_persisted(cache, key) == {}
        assert cache.errors == 1

    def test_no_cache_is_a_clean_noop(self, rule_setup):
        prog, _ = rule_setup
        key = oracle_cache_key(prog)
        assert load_persisted(None, key) == {}
        persist(None, key, {(0, 3): "sdc"})  # must not raise

    @pytest.mark.parametrize("bad", [
        ["not", "a", "dict"],
        {(1,): "none"},
        {(1, 2, 3): "none"},
        {("x", 2): "none"},
        {(1, 2): "bogus-effect"},
    ])
    def test_validate_table_rejects_malformed(self, bad):
        assert validate_table(bad) is None

    def test_validate_table_accepts_sound(self):
        table = {(0, 3): "sdc", (7, 40): "none"}
        assert validate_table(table) == table


class TestTrackerMemo:
    @pytest.mark.parametrize("level", list(TrackingLevel))
    def test_shared_tracker_matches_fresh_instances(self, small_execution,
                                                    level):
        """The campaign-shared (memoizing) tracker must answer exactly as
        a per-trial throwaway tracker did, for both memo key classes."""
        trace = small_execution.trace
        shared = PiBitTracker(trace, level)
        for seq in range(0, len(trace), 1291):
            for bit in (R3_BIT, OPCODE_BIT):
                fresh = PiBitTracker(trace, level).process_fault(seq, bit)
                assert shared.process_fault(seq, bit) == fresh
                # Second ask is served from the memo; still identical.
                assert shared.process_fault(seq, bit) == fresh


def _seed_slow_path(prog, baseline, pipeline_result, config):
    """The seed-era campaign loop: one throwaway evaluator per trial."""
    sampler = StrikeModel(pipeline_result)
    counts = Counter()
    tracker_misses = 0
    for index in range(config.trials):
        rng = DeterministicRng(trial_seed(config, prog.name, index))
        verdict = evaluate_strike(
            sampler.sample(rng), prog, baseline,
            parity=config.parity, tracking=config.tracking,
            pet_entries=config.pet_entries, ecc=config.ecc)
        counts[verdict.outcome] += 1
        if verdict.tracker_miss:
            tracker_misses += 1
    return counts, tracker_misses


def _golden_configs():
    configs = [CampaignConfig(trials=50, seed=77)]
    configs += [CampaignConfig(trials=50, seed=77, parity=True,
                               tracking=level) for level in TrackingLevel]
    configs.append(CampaignConfig(trials=50, seed=77, ecc=True))
    return configs


def _config_id(config):
    if config.ecc:
        return "ecc"
    if config.parity:
        return config.tracking.name.lower()
    return "unprotected"


class TestGoldenEquivalence:
    """Satellite (d): fast-path tallies == seed slow path, bit for bit."""

    @pytest.mark.parametrize("config", _golden_configs(), ids=_config_id)
    def test_every_fast_path_matches_seed_slow_path(
            self, config, small_program, small_execution, small_pipeline):
        golden = _seed_slow_path(small_program, small_execution,
                                 small_pipeline, config)

        # Campaign-scoped evaluator, static filter on (the default path).
        fast = run_trial_block(small_program, small_execution,
                               small_pipeline, config, 0, config.trials)
        assert fast == golden

        # Static filter off: same tallies, more re-execution.
        unfiltered = StrikeEvaluator(
            small_program, small_execution, parity=config.parity,
            tracking=config.tracking, pet_entries=config.pet_entries,
            ecc=config.ecc, static_filter=False)
        assert run_trial_block(small_program, small_execution,
                               small_pipeline, config, 0, config.trials,
                               evaluator=unfiltered) == golden

        # Warm oracle (as after a persisted-cache load): zero execution.
        donor = StrikeEvaluator(
            small_program, small_execution, parity=config.parity,
            tracking=config.tracking, pet_entries=config.pet_entries,
            ecc=config.ecc)
        run_trial_block(small_program, small_execution, small_pipeline,
                        config, 0, config.trials, evaluator=donor)
        warm_oracle = EffectOracle(small_program, small_execution)
        warm_oracle.preload(donor.oracle.new_entries())
        warm = StrikeEvaluator(
            small_program, small_execution, parity=config.parity,
            tracking=config.tracking, pet_entries=config.pet_entries,
            ecc=config.ecc, oracle=warm_oracle)
        assert run_trial_block(small_program, small_execution,
                               small_pipeline, config, 0, config.trials,
                               evaluator=warm) == golden
        assert warm_oracle.executions == 0
        assert warm_oracle.static_kills == 0

    def test_run_campaign_identical_with_filter_off(
            self, small_program, small_execution, small_pipeline):
        config = CampaignConfig(trials=60, seed=11, parity=True,
                                tracking=TrackingLevel.REG_PI)
        with use_runtime():
            fast = run_campaign(small_program, small_execution,
                                small_pipeline, config)
        with use_runtime(static_filter=False):
            slow = run_campaign(small_program, small_execution,
                                small_pipeline, config)
        assert fast.counts == slow.counts
        assert fast.tracker_misses == slow.tracker_misses

    def test_campaign_ticks_oracle_telemetry(
            self, small_program, small_execution, small_pipeline):
        with use_runtime() as context:
            run_campaign(small_program, small_execution, small_pipeline,
                         CampaignConfig(trials=40, seed=3))
            counters = context.telemetry.counters
            summary = context.telemetry.format_summary()
        consulted = (counters["oracle_memo_hits"]
                     + counters["oracle_static_kills"]
                     + counters["oracle_executions"])
        assert consulted > 0
        assert "oracle:" in summary


class TestOracleTelemetryFormat:
    def test_oracle_line_rendered(self):
        telemetry = Telemetry()
        telemetry.merge_counters({"oracle_memo_hits": 6,
                                  "oracle_static_kills": 3,
                                  "oracle_executions": 1})
        assert ("oracle: 6 memo hits, 3 static kills, 1 re-executions "
                "(90% fast path)") in telemetry.format_summary()

    def test_silent_when_oracle_unused(self):
        assert "oracle:" not in Telemetry().format_summary()

    def test_verbose_appends_warm_hierarchy_and_raw_counters(self):
        telemetry = Telemetry()
        telemetry.increment("warm_hierarchy_hits", 2)
        telemetry.increment("warm_hierarchy_misses")
        summary = telemetry.format_summary(verbose=True)
        assert ("warm hierarchy: 2 snapshot restores, "
                "1 full warm-ups") in summary
        assert "  warm_hierarchy_hits: 2" in summary
        # Non-verbose stays terse.
        assert "warm hierarchy" not in telemetry.format_summary()
