"""Single-strike evaluation tests."""

import pytest

from repro.arch.executor import FunctionalSimulator
from repro.due.outcomes import FaultOutcome
from repro.due.tracking import TrackingLevel
from repro.faults.injector import (
    StrikeVerdict,
    architectural_effect,
    corrupt_instruction,
    evaluate_strike,
)
from repro.faults.model import Strike
from repro.isa.encoding import Field, field_bits
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.iq import OccupancyInterval, OccupantKind
from tests.helpers import I, program

R3_BIT = next(iter(field_bits(Field.R3)))
IMM_BIT = next(iter(field_bits(Field.IMM7)))


class TestCorruptInstruction:
    def test_changes_instruction(self):
        original = I(Opcode.ADD, r1=1, r2=2, r3=3)
        for bit in range(41):
            assert corrupt_instruction(original, bit) != original

    def test_r3_flip_changes_source(self):
        original = I(Opcode.ADD, r1=1, r2=2, r3=3)
        corrupted = corrupt_instruction(original, R3_BIT)
        assert corrupted.r3 != 3


@pytest.fixture(scope="module")
def tiny_setup():
    prog = program([
        I(Opcode.MOVI, r1=1, imm=5),
        I(Opcode.MOVI, r1=9, imm=3),  # dead: r9 never read
        I(Opcode.OUT, r2=1),
    ])
    baseline = FunctionalSimulator(prog).run()
    return prog, baseline


class TestArchitecturalEffect:
    def test_dead_value_corruption_is_none(self, tiny_setup):
        prog, baseline = tiny_setup
        # Flip an immediate bit of the dead MOVI: output unchanged.
        assert architectural_effect(prog, baseline, 1, IMM_BIT) == "none"

    def test_live_value_corruption_is_sdc(self, tiny_setup):
        prog, baseline = tiny_setup
        assert architectural_effect(prog, baseline, 0, IMM_BIT) == "sdc"

    def test_opcode_corruption_can_trap(self, tiny_setup):
        prog, baseline = tiny_setup
        # HALT(23) with bit 40 flipped decodes as ILLEGAL (87).
        halt_seq = len(baseline.trace) - 1
        opcode_high_bit = 34 + 6
        assert architectural_effect(prog, baseline, halt_seq,
                                    opcode_high_bit) == "trap"

    def test_hang_detected(self):
        # Corrupting a high immediate bit of the loop counter makes the
        # loop run ~2^17 times longer than the baseline: classified "hang".
        prog = program([
            I(Opcode.MOVI, r1=1, imm=2),
            I(Opcode.ADDI, r1=1, r2=1, imm=-1),  # loop head
            I(Opcode.CMP_NE, r1=5, r2=1, r3=0),
            I(Opcode.BR, qp=5, imm=-2),
            I(Opcode.OUT, r2=1),
        ])
        baseline = FunctionalSimulator(prog).run()
        assert baseline.clean
        assert architectural_effect(prog, baseline, 0, bit=30) == "hang"


def strike_on(interval, cycle, bit=R3_BIT):
    return Strike(interval=interval, cycle=cycle, bit=bit)


def committed_interval(seq, alloc=0, issue=10, dealloc=12):
    return OccupancyInterval(seq, I(Opcode.MOVI, r1=1, imm=5),
                             OccupantKind.COMMITTED, alloc, issue, dealloc)


class TestEvaluateStrike:
    def test_idle_strike_benign(self, tiny_setup):
        prog, baseline = tiny_setup
        verdict = evaluate_strike(Strike(None, 0, 3), prog, baseline)
        assert verdict.outcome is FaultOutcome.BENIGN_UNREAD

    def test_ex_ace_strike_benign(self, tiny_setup):
        prog, baseline = tiny_setup
        verdict = evaluate_strike(
            strike_on(committed_interval(0), cycle=11), prog, baseline)
        assert verdict.outcome is FaultOutcome.BENIGN_UNREAD

    def test_never_issued_benign(self, tiny_setup):
        prog, baseline = tiny_setup
        interval = OccupancyInterval(0, I(Opcode.MOVI, r1=1, imm=5),
                                     OccupantKind.SQUASHED, 0, None, 9)
        verdict = evaluate_strike(strike_on(interval, 5), prog, baseline)
        assert verdict.outcome is FaultOutcome.BENIGN_UNREAD

    def test_live_corruption_unprotected_is_sdc(self, tiny_setup):
        prog, baseline = tiny_setup
        verdict = evaluate_strike(
            strike_on(committed_interval(0), 5, bit=IMM_BIT),
            prog, baseline, parity=False)
        assert verdict.outcome is FaultOutcome.SDC

    def test_dead_corruption_unprotected_is_benign(self, tiny_setup):
        prog, baseline = tiny_setup
        verdict = evaluate_strike(
            strike_on(committed_interval(1), 5, bit=IMM_BIT),
            prog, baseline, parity=False)
        assert verdict.outcome is FaultOutcome.BENIGN_UNACE

    def test_parity_turns_sdc_into_true_due(self, tiny_setup):
        prog, baseline = tiny_setup
        verdict = evaluate_strike(
            strike_on(committed_interval(0), 5, bit=IMM_BIT),
            prog, baseline, parity=True,
            tracking=TrackingLevel.PARITY_ONLY)
        assert verdict.outcome is FaultOutcome.TRUE_DUE

    def test_parity_dead_is_false_due(self, tiny_setup):
        prog, baseline = tiny_setup
        verdict = evaluate_strike(
            strike_on(committed_interval(1), 5, bit=IMM_BIT),
            prog, baseline, parity=True,
            tracking=TrackingLevel.PARITY_ONLY)
        assert verdict.outcome is FaultOutcome.FALSE_DUE

    def test_tracking_avoids_false_due(self, tiny_setup):
        prog, baseline = tiny_setup
        verdict = evaluate_strike(
            strike_on(committed_interval(1), 5, bit=IMM_BIT),
            prog, baseline, parity=True, tracking=TrackingLevel.REG_PI)
        assert verdict.outcome is FaultOutcome.BENIGN_UNACE

    def test_wrong_path_false_due_without_tracking(self, tiny_setup):
        prog, baseline = tiny_setup
        interval = OccupancyInterval(None, I(Opcode.ADD, r1=1),
                                     OccupantKind.WRONG_PATH, 0, 5, 8)
        untracked = evaluate_strike(strike_on(interval, 2), prog, baseline,
                                    parity=True,
                                    tracking=TrackingLevel.PARITY_ONLY)
        tracked = evaluate_strike(strike_on(interval, 2), prog, baseline,
                                  parity=True,
                                  tracking=TrackingLevel.PI_COMMIT)
        assert untracked.outcome is FaultOutcome.FALSE_DUE
        assert tracked.outcome is FaultOutcome.BENIGN_UNACE

    def test_wrong_path_unprotected_benign(self, tiny_setup):
        prog, baseline = tiny_setup
        interval = OccupancyInterval(None, I(Opcode.ADD, r1=1),
                                     OccupantKind.WRONG_PATH, 0, 5, 8)
        verdict = evaluate_strike(strike_on(interval, 2), prog, baseline)
        assert verdict.outcome is FaultOutcome.BENIGN_UNACE
