"""Property tests for trial sharding and per-trial seed derivation.

The parallel engine's determinism rests on two facts checked here:
(1) any sharding of the trial index space covers each index exactly once,
and (2) per-trial seed streams never collide across trials, configs, or
programs — so a shard's tallies depend only on which indices it covers.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.due.tracking import TrackingLevel
from repro.faults.campaign import CampaignConfig, run_trial_block, trial_seed
from repro.runtime.engine import shard_trials


class TestShardTrials:
    @given(trials=st.integers(min_value=0, max_value=400),
           shards=st.integers(min_value=1, max_value=40))
    def test_partition_covers_every_index_exactly_once(self, trials, shards):
        blocks = shard_trials(trials, shards)
        seen = Counter()
        for block in blocks:
            seen.update(block)
        assert seen == Counter(range(trials))

    @given(trials=st.integers(min_value=1, max_value=400),
           shards=st.integers(min_value=1, max_value=40))
    def test_blocks_contiguous_nonempty_and_balanced(self, trials, shards):
        blocks = shard_trials(trials, shards)
        assert 1 <= len(blocks) <= shards
        assert blocks[0].start == 0
        assert blocks[-1].stop == trials
        for left, right in zip(blocks, blocks[1:]):
            assert left.stop == right.start
        sizes = [len(b) for b in blocks]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1

    def test_zero_trials(self):
        assert shard_trials(0, 4) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shard_trials(-1, 2)
        with pytest.raises(ValueError):
            shard_trials(10, 0)


_PARTITION_CONFIG = CampaignConfig(trials=24, seed=3, parity=True)


@pytest.fixture(scope="module")
def serial_tally(small_program, small_execution, small_pipeline):
    """One-block reference tally for the partition property test."""
    return run_trial_block(small_program, small_execution, small_pipeline,
                           _PARTITION_CONFIG, 0, 24)


class TestTrialSeeds:
    def test_no_collisions_across_indices_configs_programs(self):
        configs = [
            CampaignConfig(trials=10, seed=2004),
            CampaignConfig(trials=10, seed=2004, parity=True),
            CampaignConfig(trials=10, seed=2004, parity=True,
                           tracking=TrackingLevel.MEM_PI),
            CampaignConfig(trials=10, seed=7),
        ]
        seeds = [
            trial_seed(config, name, index)
            for config in configs
            for name in ("crafty", "mcf")
            for index in range(2000)
        ]
        assert len(seeds) == len(set(seeds))

    def test_seed_depends_only_on_index_not_on_shard(self):
        config = CampaignConfig(trials=100, seed=11)
        # The seed of trial 57 is the same whether computed "inside" a
        # shard starting at 0, 50, or 57 — it is a pure function of index.
        assert (trial_seed(config, "p", 57)
                == trial_seed(config, "p", 57)
                != trial_seed(config, "p", 58))

    @given(cuts=st.sets(st.integers(min_value=1, max_value=23), max_size=6))
    @settings(max_examples=12, deadline=None)
    def test_any_partition_reproduces_the_serial_tally(
            self, cuts, serial_tally, small_program, small_execution,
            small_pipeline):
        """Merged shard tallies equal the one-block tally for any cut set."""
        config = _PARTITION_CONFIG
        serial_counts, serial_misses = serial_tally
        bounds = [0] + sorted(cuts) + [24]
        merged: Counter = Counter()
        misses = 0
        for start, stop in zip(bounds, bounds[1:]):
            counts, shard_misses = run_trial_block(
                small_program, small_execution, small_pipeline, config,
                start, stop)
            merged.update(counts)
            misses += shard_misses
        assert merged == serial_counts
        assert misses == serial_misses
