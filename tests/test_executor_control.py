"""Executor control-flow depth and ordering tests."""

import pytest

from repro.arch.executor import FunctionalSimulator
from repro.isa.opcodes import Opcode
from repro.isa.program import FunctionInfo, Program
from tests.helpers import I


class TestNestedCalls:
    def _nested_program(self):
        code = [
            I(Opcode.CALL, imm=3),  # 0: main -> outer
            I(Opcode.OUT, r2=8),  # 1
            I(Opcode.HALT),  # 2
            I(Opcode.CALL, imm=3),  # 3: outer -> inner
            I(Opcode.ADDI, r1=8, r2=8, imm=1),  # 4
            I(Opcode.RET),  # 5
            I(Opcode.MOVI, r1=8, imm=10),  # 6: inner
            I(Opcode.RET),  # 7
        ]
        return Program(code, [FunctionInfo("outer", 3, 6),
                              FunctionInfo("inner", 6, 8)], entry=0)

    def test_two_level_nesting(self):
        result = FunctionalSimulator(self._nested_program()).run()
        assert result.clean
        assert result.outputs == (11,)
        assert len(result.invocations) == 3

    def test_invocation_nesting_structure(self):
        result = FunctionalSimulator(self._nested_program()).run()
        outer = result.invocations[1]
        inner = result.invocations[2]
        assert outer.entry_pc == 3 and inner.entry_pc == 6
        # Inner returns before outer does.
        assert inner.return_seq < outer.return_seq
        # The ADDI after the inner call runs in the outer invocation.
        addi = next(op for op in result.trace
                    if op.instruction.opcode is Opcode.ADDI)
        assert addi.invocation == 1

    def test_recursion_bounded_by_limit(self):
        # A function calling itself forever must hit the budget.
        from repro.arch.executor import ExecutionLimits
        from repro.arch.result import ExecutionStatus

        code = [I(Opcode.CALL, imm=0), I(Opcode.HALT)]
        result = FunctionalSimulator(
            Program(code, [], entry=0),
            ExecutionLimits(max_instructions=500)).run()
        assert result.status is ExecutionStatus.LIMIT


class TestOutputOrdering:
    def test_outputs_in_program_order(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=1),
            I(Opcode.OUT, r2=1),
            I(Opcode.MOVI, r1=1, imm=2),
            I(Opcode.OUT, r2=1),
            I(Opcode.MOVI, r1=1, imm=3),
            I(Opcode.OUT, r2=1),
            I(Opcode.HALT),
        ]
        result = FunctionalSimulator(Program(code, [], entry=0)).run()
        assert result.outputs == (1, 2, 3)

    def test_out_reads_current_value(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=9),
            I(Opcode.OUT, r2=1),
            I(Opcode.ADDI, r1=1, r2=1, imm=1),
            I(Opcode.OUT, r2=1),
            I(Opcode.HALT),
        ]
        result = FunctionalSimulator(Program(code, [], entry=0)).run()
        assert result.outputs == (9, 10)


class TestBranchEdgeCases:
    def test_branch_to_self_loops(self):
        from repro.arch.executor import ExecutionLimits
        from repro.arch.result import ExecutionStatus

        code = [I(Opcode.BR, imm=0)]
        result = FunctionalSimulator(
            Program(code, [], entry=0),
            ExecutionLimits(max_instructions=100)).run()
        assert result.status is ExecutionStatus.LIMIT

    def test_backward_jump_before_entry_traps(self):
        from repro.arch.result import ExecutionStatus

        code = [I(Opcode.BR, imm=-5), I(Opcode.HALT)]
        result = FunctionalSimulator(Program(code, [], entry=0)).run()
        assert result.status is ExecutionStatus.TRAP_ILLEGAL

    def test_next_pc_recorded_for_taken_branch(self):
        code = [I(Opcode.BR, imm=2), I(Opcode.NOP), I(Opcode.HALT)]
        result = FunctionalSimulator(Program(code, [], entry=0)).run()
        assert result.trace[0].branch_taken
        assert result.trace[0].next_pc == 2
