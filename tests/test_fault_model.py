"""Strike-sampling tests."""

import pytest

from repro.faults.model import Strike, StrikeModel
from repro.isa.encoding import ENCODING_BITS
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.iq import OccupancyInterval, OccupantKind
from repro.pipeline.result import PipelineResult
from repro.util.rng import DeterministicRng


def make_result(intervals, cycles=100, entries=4):
    return PipelineResult(cycles=cycles, committed=0, intervals=intervals,
                          iq_entries=entries)


def occ(alloc, dealloc, seq=0):
    return OccupancyInterval(seq, Instruction(Opcode.NOP),
                             OccupantKind.COMMITTED, alloc, dealloc, dealloc)


class TestSampling:
    def test_idle_probability_matches_idle_fraction(self):
        # 100 resident entry-cycles out of 400 -> 75 % idle strikes.
        result = make_result([occ(0, 100)])
        model = StrikeModel(result, DeterministicRng(1))
        idle = sum(model.sample().hit_idle for _ in range(4000))
        assert 0.70 < idle / 4000 < 0.80

    def test_interval_weighting(self):
        # One interval 3x as resident as another gets ~3x the strikes.
        long_interval = occ(0, 90, seq=0)
        short_interval = occ(0, 30, seq=1)
        result = make_result([long_interval, short_interval], entries=2,
                             cycles=60)
        model = StrikeModel(result, DeterministicRng(2))
        hits = {0: 0, 1: 0}
        for _ in range(3000):
            strike = model.sample()
            if strike.interval is not None:
                hits[strike.interval.seq] += 1
        assert 2.3 < hits[0] / hits[1] < 3.9

    def test_strike_cycle_within_interval(self):
        result = make_result([occ(10, 40)])
        model = StrikeModel(result, DeterministicRng(3))
        for _ in range(300):
            strike = model.sample()
            if strike.interval is not None:
                assert 10 <= strike.cycle < 40

    def test_bit_range(self):
        result = make_result([occ(0, 100)])
        model = StrikeModel(result, DeterministicRng(4))
        bits = {model.sample().bit for _ in range(2000)}
        assert bits <= set(range(ENCODING_BITS))
        assert len(bits) > 30  # nearly all bit positions get hit

    def test_deterministic(self):
        result = make_result([occ(0, 100)])
        a = StrikeModel(result, DeterministicRng(5))
        b = StrikeModel(result, DeterministicRng(5))
        for _ in range(50):
            sa, sb = a.sample(), b.sample()
            assert (sa.cycle, sa.bit, sa.hit_idle) == \
                (sb.cycle, sb.bit, sb.hit_idle)

    def test_empty_space_rejected(self):
        result = make_result([], cycles=0)
        with pytest.raises(ValueError):
            StrikeModel(result, DeterministicRng(1))
