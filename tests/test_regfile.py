"""Register-file AVF analysis tests."""

import pytest

from repro.analysis.deadcode import analyze_deadness
from repro.analysis.regfile import RegisterFileAvf, compute_regfile_avf
from repro.arch.executor import FunctionalSimulator
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import PipelineSimulator
from repro.isa.opcodes import Opcode
from tests.helpers import I, program


def analyse(instructions):
    prog = program(instructions)
    execution = FunctionalSimulator(prog).run()
    deadness = analyze_deadness(execution)
    pipeline = PipelineSimulator(
        prog, execution.trace,
        MachineConfig(fetch_bubble_prob=0.0)).run()
    return compute_regfile_avf(pipeline, execution.trace, deadness), pipeline


class TestLifetimes:
    def test_live_value_counts_to_last_read(self):
        avf, pipeline = analyse([
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.NOP),
            I(Opcode.OUT, r2=1),
        ])
        assert avf.ace_reg_cycles > 0
        assert avf.dead_reg_cycles == 0

    def test_dead_value_counts_as_dead(self):
        avf, _ = analyse([
            I(Opcode.MOVI, r1=9, imm=5),  # never read
            I(Opcode.NOP),
            I(Opcode.NOP),
        ])
        assert avf.dead_reg_cycles > 0
        assert avf.ace_reg_cycles == 0

    def test_stale_tail_tracked(self):
        avf, _ = analyse([
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.OUT, r2=1),
            *[I(Opcode.NOP)] * 20,  # r1 sits stale afterwards
        ])
        assert avf.stale_reg_cycles > 0

    def test_fractions_bounded(self, small_pipeline, small_execution,
                               small_deadness):
        avf = compute_regfile_avf(small_pipeline, small_execution.trace,
                                  small_deadness)
        assert 0.0 < avf.sdc_avf < 1.0
        assert 0.0 <= avf.dead_fraction < 1.0
        assert avf.due_avf_with_parity == pytest.approx(
            avf.sdc_avf + avf.dead_fraction)
        assert avf.due_avf_with_register_pi == avf.sdc_avf

    def test_register_pi_strictly_helps(self, small_pipeline,
                                        small_execution, small_deadness):
        avf = compute_regfile_avf(small_pipeline, small_execution.trace,
                                  small_deadness)
        assert avf.due_avf_with_register_pi < avf.due_avf_with_parity

    def test_empty_result(self):
        avf = RegisterFileAvf(cycles=0)
        assert avf.sdc_avf == 0.0
        assert avf.due_avf_with_parity == 0.0


class TestExperiment:
    def test_run_and_format(self):
        from repro.experiments import regfile
        from repro.experiments.common import ExperimentSettings
        from repro.workloads.spec2000 import get_profile

        settings = ExperimentSettings(target_instructions=6000)
        result = regfile.run(settings, [get_profile("crafty"),
                                        get_profile("swim")])
        assert result.average("sdc_avf") > 0
        text = regfile.format_result(result)
        assert "Register-file AVF" in text
        assert "crafty" in text
