"""OccupancyInterval and PipelineResult unit tests."""

import pytest

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.iq import OccupancyInterval, OccupantKind
from repro.pipeline.result import PipelineResult


def interval(alloc=0, issue=5, dealloc=9, kind=OccupantKind.COMMITTED,
             seq=0):
    return OccupancyInterval(
        seq=None if kind is OccupantKind.WRONG_PATH else seq,
        instruction=Instruction(Opcode.ADD, r1=1),
        kind=kind, alloc_cycle=alloc, issue_cycle=issue,
        dealloc_cycle=dealloc)


class TestInterval:
    def test_spans(self):
        it = interval(alloc=2, issue=7, dealloc=10)
        assert it.resident_cycles == 8
        assert it.vulnerable_cycles == 5
        assert it.ex_ace_cycles == 3
        assert it.issued

    def test_never_issued(self):
        it = interval(issue=None, dealloc=9)
        assert not it.issued
        assert it.vulnerable_cycles == 0
        assert it.ex_ace_cycles == 9

    def test_repr(self):
        assert "seq=0" in repr(interval())


class TestPipelineResult:
    def _result(self, intervals, cycles=10, entries=4):
        return PipelineResult(cycles=cycles, committed=len(intervals),
                              intervals=intervals, iq_entries=entries)

    def test_ipc(self):
        result = self._result([interval(), interval(seq=1)], cycles=10)
        assert result.ipc == pytest.approx(0.2)

    def test_ipc_zero_cycles(self):
        result = self._result([], cycles=0)
        assert result.ipc == 0.0

    def test_total_entry_cycles(self):
        result = self._result([], cycles=10, entries=4)
        assert result.total_entry_cycles == 40

    def test_occupancy_fraction(self):
        result = self._result([interval(alloc=0, issue=5, dealloc=10)],
                              cycles=10, entries=4)
        assert result.occupancy_fraction() == pytest.approx(0.25)

    def test_occupancy_zero_cycles(self):
        assert self._result([], cycles=0).occupancy_fraction() == 0.0
