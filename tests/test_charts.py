"""ASCII chart tests."""

import pytest

from repro.util.charts import bar_chart, series_chart


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart([("a", 0.5), ("bb", 1.0)], width=10)
        lines = text.splitlines()
        assert lines[0].startswith("a  |")
        assert "##########" in lines[1]  # full bar for the max
        assert "#####....." in lines[0]  # half bar

    def test_title(self):
        text = bar_chart([("a", 1.0)], title="T")
        assert text.splitlines()[0] == "T"

    def test_values_shown_as_percent(self):
        text = bar_chart([("a", 0.29)], maximum=1.0)
        assert "29.0%" in text

    def test_clamps_above_maximum(self):
        text = bar_chart([("a", 2.0)], width=10, maximum=1.0)
        assert "##########" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])

    def test_zero_values_ok(self):
        text = bar_chart([("a", 0.0)], width=5)
        assert "....." in text


class TestSeriesChart:
    def test_markers_and_legend(self):
        text = series_chart(
            ["16", "512"],
            {"base": [0.1, 0.5], "plus": [0.2, 0.9]},
            width=20)
        assert "B" in text and "P" in text
        assert "B=base" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            series_chart(["a"], {"s": [1.0, 2.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            series_chart(["a"], {})

    def test_monotone_series_moves_right(self):
        text = series_chart(["lo", "hi"], {"s": [0.1, 1.0]}, width=30)
        lines = text.splitlines()
        assert lines[0].index("S") < lines[1].index("S")
