"""Public API surface tests."""

import repro


class TestApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_entry_points(self):
        assert callable(repro.run_benchmark)
        assert callable(repro.synthesize)
        assert callable(repro.analyze_deadness)
        assert callable(repro.run_campaign)

    def test_tracking_ladder_exported(self):
        assert repro.TrackingLevel.MEM_PI > repro.TrackingLevel.PARITY_ONLY

    def test_trigger_enum(self):
        assert {t.value for t in repro.Trigger} == \
            {"none", "l1_miss", "l0_miss"}


class TestResultSignatures:
    def test_output_signature_distinguishes_status(self, small_execution):
        from repro.arch.result import ExecutionResult, ExecutionStatus

        other = ExecutionResult(status=ExecutionStatus.LIMIT,
                                trace=[], outputs=small_execution.outputs)
        assert other.output_signature() != \
            small_execution.output_signature()

    def test_output_signature_distinguishes_outputs(self, small_execution):
        from repro.arch.result import ExecutionResult

        other = ExecutionResult(status=small_execution.status,
                                trace=[], outputs=(1, 2, 3))
        assert other.output_signature() != \
            small_execution.output_signature()
