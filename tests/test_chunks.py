"""Fetch-chunk π-bit tests."""

import pytest

from repro.due.tracking import TrackingLevel
from repro.isa.opcodes import Opcode
from repro.pipeline.chunks import ChunkPiModel, iter_chunks
from tests.helpers import I, run


class TestIterChunks:
    def test_plain_stream_splits_evenly(self):
        result = run([I(Opcode.NOP)] * 12)
        chunks = list(iter_chunks(result.trace, 4))
        # 12 NOPs + HALT = 13 committed ops.
        assert chunks == [(0, 4), (4, 4), (8, 4), (12, 1)]

    def test_taken_branch_ends_chunk(self):
        result = run([
            I(Opcode.NOP),
            I(Opcode.BR, imm=2),  # taken
            I(Opcode.NOP),  # skipped
            I(Opcode.NOP),
        ])
        chunks = list(iter_chunks(result.trace, 4))
        assert chunks[0] == (0, 2)  # NOP + taken BR

    def test_chunks_cover_trace(self, small_execution):
        chunks = list(iter_chunks(small_execution.trace, 6))
        assert sum(size for _, size in chunks) == len(small_execution.trace)
        position = 0
        for first, size in chunks:
            assert first == position
            position += size

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks([], 0))


class TestChunkPi:
    def test_all_clearable_chunk_is_silent(self):
        result = run([
            I(Opcode.NOP),
            I(Opcode.NOP),
            I(Opcode.MOVI, r1=9, imm=5),  # FDD
            I(Opcode.MOVI, r1=9, imm=6),  # FDD (overwritten at end: dead)
        ])
        model = ChunkPiModel(result.trace, TrackingLevel.REG_PI,
                             chunk_size=4)
        decision = model.process_chunk_fault(0, 4)
        assert not decision.signaled
        assert decision.blamed == ()

    def test_one_live_instruction_blames_chunk(self):
        result = run([
            I(Opcode.NOP),
            I(Opcode.MOVI, r1=1, imm=5),  # live
            I(Opcode.OUT, r2=1),
        ])
        model = ChunkPiModel(result.trace, TrackingLevel.REG_PI,
                             chunk_size=3)
        decision = model.process_chunk_fault(0, 3)
        assert decision.signaled
        assert 1 in decision.blamed or 2 in decision.blamed

    def test_bounds_checked(self, small_execution):
        model = ChunkPiModel(small_execution.trace, TrackingLevel.REG_PI)
        with pytest.raises(ValueError):
            model.process_chunk_fault(-1, 4)
        with pytest.raises(ValueError):
            model.process_chunk_fault(len(small_execution.trace), 1)

    def test_amplification_at_least_one(self, small_execution):
        model = ChunkPiModel(small_execution.trace, TrackingLevel.STORE_PI,
                             chunk_size=6)
        amplification = model.false_positive_amplification(limit=400)
        assert amplification >= 1.0

    def test_bigger_chunks_amplify_more(self, small_execution):
        small = ChunkPiModel(small_execution.trace, TrackingLevel.STORE_PI,
                             chunk_size=2)
        large = ChunkPiModel(small_execution.trace, TrackingLevel.STORE_PI,
                             chunk_size=12)
        assert large.false_positive_amplification(limit=400) >= \
            small.false_positive_amplification(limit=400) * 0.98
