"""Persistent result-cache correctness.

Cold vs. warm equality, key sensitivity to every ingredient, --no-cache
bypass semantics, and corrupt-entry recovery.
"""

import dataclasses
import pickle

import pytest

from repro.due.tracking import DEFAULT_PET_ENTRIES, EccScheme, TrackingLevel
from repro.experiments.common import (
    ExperimentSettings,
    clear_caches,
    run_benchmark,
)
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.pipeline.config import Trigger
from repro.runtime.cache import MISS, ResultCache, cache_key
from repro.runtime.context import configure, reset_runtime, use_runtime
from repro.workloads.profile import BenchmarkProfile

CONFIG = CampaignConfig(trials=25, seed=6, parity=True)


@pytest.fixture()
def tiny_profile() -> BenchmarkProfile:
    return BenchmarkProfile(name="cachetest", suite="int", body_items=60,
                            w_noop=20.0, fetch_bubble_prob=0.25, seed_salt=5)


class TestResultCacheStore:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("unit", 1, "two")
        assert cache.get(key) is MISS
        assert cache.put(key, {"a": 1})
        assert cache.get(key) == {"a": 1}
        assert (cache.hits, cache.misses, cache.puts) == (1, 1, 1)

    def test_none_is_a_valid_value(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("none-value")
        cache.put(key, None)
        assert cache.get(key) is None

    def test_corrupt_entry_is_a_miss_not_a_crash(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key("corrupt")
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_bytes(b"\x00garbage\xff")
        assert cache.get(key) is MISS
        assert cache.errors == 1
        # A recompute overwrites the bad entry.
        cache.put(key, [1, 2, 3])
        assert cache.get(key) == [1, 2, 3]

    def test_corrupt_entry_ticks_telemetry_counter(self, tmp_path):
        """Degrading to a miss is counted, not silent: a serving process
        (or any long-lived runtime) must be able to see its store rot."""
        with use_runtime() as context:
            cache = ResultCache(tmp_path)
            key = cache_key("corrupt-counted")
            cache.put(key, {"x": 1})
            cache.path_for(key).write_bytes(b"\x00garbage\xff")
            assert cache.get(key) is MISS
            assert context.telemetry.counters["cache_corrupt_entries"] == 1
            # A clean miss (absent entry) is NOT a corruption.
            assert cache.get(cache_key("never-stored")) is MISS
            assert context.telemetry.counters["cache_corrupt_entries"] == 1
            summary = context.telemetry.format_summary(cache=cache)
            assert "1 corrupt" in summary


class TestCacheKeys:
    def test_key_is_stable(self):
        assert cache_key("a", 1, True) == cache_key("a", 1, True)

    def test_every_campaign_ingredient_changes_the_key(self):
        base = CONFIG
        variants = [
            CampaignConfig(trials=26, seed=6, parity=True),
            CampaignConfig(trials=25, seed=7, parity=True),
            CampaignConfig(trials=25, seed=6, parity=False),
            CampaignConfig(trials=25, seed=6, parity=True,
                           tracking=TrackingLevel.MEM_PI),
            CampaignConfig(trials=25, seed=6, parity=True, pet_entries=64),
        ]
        keys = {cache_key("campaign", variant) for variant in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_program_bytes_change_the_key(self, small_program, tiny_profile):
        from repro.workloads.codegen import synthesize

        other = synthesize(tiny_profile, 2500, seed=1)
        assert cache_key(small_program) != cache_key(other)

    def test_unsupported_type_is_an_explicit_error(self):
        with pytest.raises(TypeError):
            cache_key(object())


class TestMbuCacheKeyDiscipline:
    """Growing the config must not fork the keys of pre-MBU results."""

    def test_single_bit_campaign_key_is_byte_identical_to_pre_mbu(self):
        """A replica of the config dataclass as it existed before the
        MBU tier (the six legacy fields, same name) hashes identically
        to today's config with the MBU knobs unset: every tally cached
        before the knobs existed is still served warm."""

        @dataclasses.dataclass(frozen=True)
        class CampaignConfig:  # the pre-MBU field set, field for field
            trials: int = 500
            seed: int = 2004
            parity: bool = False
            tracking: TrackingLevel = TrackingLevel.PARITY_ONLY
            pet_entries: int = DEFAULT_PET_ENTRIES
            ecc: bool = False

        legacy = CampaignConfig(trials=25, seed=6, parity=True)
        assert cache_key("campaign", legacy) == cache_key("campaign", CONFIG)

    def test_mbu_knobs_fork_the_key(self):
        base = CampaignConfig(trials=25, seed=6)
        variants = [
            CampaignConfig(trials=25, seed=6, mbu_preset="terrestrial"),
            CampaignConfig(trials=25, seed=6, mbu_preset="space"),
            CampaignConfig(trials=25, seed=6, scheme=EccScheme.SEC),
            CampaignConfig(trials=25, seed=6, scheme=EccScheme.TAEC),
            CampaignConfig(trials=25, seed=6, scheme=EccScheme.TAEC,
                           mbu_preset="terrestrial"),
        ]
        keys = {cache_key("campaign", variant)
                for variant in [base] + variants}
        assert len(keys) == len(variants) + 1

    def test_mbu_campaign_caches_warm(self, tmp_path, small_program,
                                      small_execution, small_pipeline):
        config = CampaignConfig(trials=20, seed=6, scheme=EccScheme.TAEC,
                                mbu_preset="terrestrial")
        with use_runtime(cache_dir=tmp_path) as context:
            cold = run_campaign(small_program, small_execution,
                                small_pipeline, config)
            assert context.telemetry.counters["campaign_trials"] == 20
        with use_runtime(cache_dir=tmp_path) as context:
            warm = run_campaign(small_program, small_execution,
                                small_pipeline, config)
            assert context.telemetry.counters["campaign_trials"] == 0
            assert context.cache.hits >= 1
        assert warm.counts == cold.counts
        assert warm.tracker_misses == cold.tracker_misses


class TestCampaignCaching:
    def test_cold_then_warm_equal(self, tmp_path, small_program,
                                  small_execution, small_pipeline):
        with use_runtime(cache_dir=tmp_path) as context:
            cold = run_campaign(small_program, small_execution,
                                small_pipeline, CONFIG)
            # Two puts: the effect-oracle table and the campaign tally.
            assert context.cache.puts == 2
            warm = run_campaign(small_program, small_execution,
                                small_pipeline, CONFIG)
            assert context.cache.hits == 1
        assert warm.counts == cold.counts
        assert warm.tracker_misses == cold.tracker_misses
        assert warm.trials == cold.trials

    def test_mutating_an_ingredient_misses(self, tmp_path, small_program,
                                           small_execution, small_pipeline):
        with use_runtime(cache_dir=tmp_path) as context:
            run_campaign(small_program, small_execution, small_pipeline,
                         CONFIG)
            changed = CampaignConfig(trials=25, seed=6, parity=True,
                                     tracking=TrackingLevel.PI_COMMIT)
            run_campaign(small_program, small_execution, small_pipeline,
                         changed)
            # The campaign tally missed both times (2 tally puts + 2
            # oracle-table puts); the only hit is the second campaign's
            # union-merge re-read of the shared oracle table — sharing
            # effects across configs is exactly what the oracle is for.
            assert context.cache.hits == 1
            assert context.cache.puts == 4

    def test_corrupt_campaign_entry_recomputes(self, tmp_path, small_program,
                                               small_execution,
                                               small_pipeline):
        with use_runtime(cache_dir=tmp_path) as context:
            cold = run_campaign(small_program, small_execution,
                                small_pipeline, CONFIG)
            entries = list(context.cache.root.glob("*/*.pkl"))
            assert len(entries) == 2  # campaign tally + oracle table
            tally = context.cache.path_for(
                cache_key("campaign", small_program, small_pipeline, CONFIG))
            tally.write_bytes(pickle.dumps("not a tally")[:-3])
            warm = run_campaign(small_program, small_execution,
                                small_pipeline, CONFIG)
            assert context.cache.errors >= 1
            assert context.telemetry.counters["cache_corrupt_entries"] >= 1
        assert warm.counts == cold.counts

    def test_no_cache_bypasses_reads_and_writes(self, tmp_path, small_program,
                                                small_execution,
                                                small_pipeline):
        with use_runtime(cache_dir=tmp_path, no_cache=True) as context:
            assert context.cache is None
            run_campaign(small_program, small_execution, small_pipeline,
                         CONFIG)
        assert list(tmp_path.glob("*/*.pkl")) == []

    def test_configure_no_cache_flag(self, tmp_path):
        try:
            context = configure(jobs=2, cache_dir=tmp_path, no_cache=True)
            assert context.cache is None
            assert context.jobs == 2
            context = configure(jobs=1, cache_dir=tmp_path)
            assert context.cache is not None
        finally:
            reset_runtime()


class TestExperimentCaching:
    def test_warm_run_performs_zero_simulations(self, tmp_path, tiny_profile):
        settings = ExperimentSettings(target_instructions=2500)
        clear_caches()
        try:
            with use_runtime(cache_dir=tmp_path) as context:
                cold = run_benchmark(tiny_profile, settings, Trigger.NONE)
                assert context.telemetry.counters["pipeline_sims"] == 1
                assert context.telemetry.counters["functional_sims"] == 1
            clear_caches()  # drop the in-memory layer; keep the disk layer
            with use_runtime(cache_dir=tmp_path) as context:
                warm = run_benchmark(tiny_profile, settings, Trigger.NONE)
                assert context.telemetry.counters["pipeline_sims"] == 0
                assert context.telemetry.counters["functional_sims"] == 0
                assert context.cache.hits == 2  # run entry + functional entry
            assert warm.report.ipc == cold.report.ipc
            assert warm.report.sdc_avf == cold.report.sdc_avf
            assert warm.pipeline.cycles == cold.pipeline.cycles
            assert warm.execution.output_signature() == \
                cold.execution.output_signature()
        finally:
            clear_caches()

    def test_trigger_and_size_invalidate(self, tmp_path, tiny_profile):
        settings = ExperimentSettings(target_instructions=2500)
        clear_caches()
        try:
            with use_runtime(cache_dir=tmp_path) as context:
                run_benchmark(tiny_profile, settings, Trigger.NONE)
                clear_caches()
                run_benchmark(tiny_profile, settings, Trigger.L1_MISS)
                # The timing entry misses (different squash trigger) but
                # the functional entry (trigger-independent) hits.
                assert context.telemetry.counters["pipeline_sims"] == 2
                assert context.telemetry.counters["functional_sims"] == 1
                clear_caches()
                bigger = ExperimentSettings(target_instructions=3000)
                run_benchmark(tiny_profile, bigger, Trigger.NONE)
                assert context.telemetry.counters["functional_sims"] == 2
        finally:
            clear_caches()
