"""Timing-pipeline invariants and behaviour tests."""

from dataclasses import replace

import pytest

from repro.pipeline.config import MachineConfig, SquashAction, SquashConfig, Trigger
from repro.pipeline.core import PipelineSimulator, simulate
from repro.pipeline.iq import OccupantKind


class TestIntervalInvariants:
    def test_ordering(self, small_pipeline):
        for interval in small_pipeline.intervals:
            assert interval.alloc_cycle <= interval.dealloc_cycle
            if interval.issued:
                assert interval.alloc_cycle <= interval.issue_cycle \
                    <= interval.dealloc_cycle

    def test_committed_intervals_cover_trace(self, small_pipeline,
                                             small_execution):
        committed = {i.seq for i in small_pipeline.intervals
                     if i.kind is OccupantKind.COMMITTED}
        assert committed == {op.seq for op in small_execution.trace}

    def test_committed_exactly_once(self, small_pipeline):
        seen = [i.seq for i in small_pipeline.intervals
                if i.kind is OccupantKind.COMMITTED]
        assert len(seen) == len(set(seen))

    def test_committed_intervals_issued(self, small_pipeline):
        for interval in small_pipeline.intervals:
            if interval.kind is OccupantKind.COMMITTED:
                assert interval.issued

    def test_wrong_path_has_no_seq(self, small_pipeline):
        for interval in small_pipeline.intervals:
            if interval.kind is OccupantKind.WRONG_PATH:
                assert interval.seq is None
            else:
                assert interval.seq is not None

    def test_occupancy_bounded(self, small_pipeline):
        assert 0.0 < small_pipeline.occupancy_fraction() <= 1.0

    def test_span_properties(self, small_pipeline):
        for interval in small_pipeline.intervals:
            assert interval.resident_cycles == \
                interval.vulnerable_cycles + interval.ex_ace_cycles


class TestBasicTiming:
    def test_ipc_in_sane_band(self, small_pipeline):
        assert 0.2 < small_pipeline.ipc < 6.0

    def test_committed_counts_trace(self, small_pipeline, small_execution):
        assert small_pipeline.committed == len(small_execution.trace)

    def test_stats_present(self, small_pipeline):
        for key in ("l0_misses", "l1_misses", "loads", "wrong_path_fetched",
                    "branch_predictions"):
            assert key in small_pipeline.stats

    def test_wrong_path_exists_with_random_branches(self, small_pipeline):
        assert small_pipeline.stats["wrong_path_fetched"] > 0
        assert small_pipeline.stats["branch_mispredictions"] > 0

    def test_determinism(self, small_program, small_execution, base_machine):
        first = PipelineSimulator(small_program, small_execution.trace,
                                  base_machine, seed=7).run()
        second = PipelineSimulator(small_program, small_execution.trace,
                                   base_machine, seed=7).run()
        assert first.cycles == second.cycles
        assert len(first.intervals) == len(second.intervals)

    def test_seed_changes_timing(self, small_program, small_execution,
                                 base_machine):
        first = PipelineSimulator(small_program, small_execution.trace,
                                  base_machine, seed=7).run()
        second = PipelineSimulator(small_program, small_execution.trace,
                                   base_machine, seed=8).run()
        assert first.cycles != second.cycles  # fetch bubbles differ

    def test_empty_trace_rejected(self, small_program):
        with pytest.raises(ValueError):
            PipelineSimulator(small_program, [])

    def test_iq_never_overflows(self, small_program, small_execution,
                                base_machine):
        # Indirect check: no interval may overlap more than iq_entries
        # others at any cycle; verify via a sweep over alloc points.
        result = simulate(small_program, small_execution.trace, base_machine)
        events = []
        for interval in result.intervals:
            events.append((interval.alloc_cycle, 1))
            events.append((interval.dealloc_cycle, -1))
        events.sort()
        live = 0
        for _, delta in events:
            live += delta
            assert live <= base_machine.iq_entries


class TestConfigValidation:
    def test_bad_iq(self):
        with pytest.raises(ValueError):
            MachineConfig(iq_entries=0)

    def test_bad_bubble(self):
        with pytest.raises(ValueError):
            MachineConfig(fetch_bubble_prob=1.0)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            MachineConfig(issue_width=0)


class TestWarmup:
    def test_warmup_reduces_memory_misses(self, small_program,
                                          small_execution, base_machine):
        cold = replace(base_machine, warm_caches=False)
        cold_run = simulate(small_program, small_execution.trace, cold)
        warm_run = simulate(small_program, small_execution.trace,
                            base_machine)
        assert warm_run.stats["l2_misses"] < cold_run.stats["l2_misses"]

    def test_l1_misses_survive_warmup(self, small_pipeline):
        # The cold stream must still miss the L1 (squash trigger source).
        assert small_pipeline.stats["l1_misses"] > 0
