"""Wire-level chaos differential suite for the AVF query service.

A real client talks to a real server through :class:`ChaosProxy`, which
drops, delays, resets, truncates, and garbles the byte stream on a
seeded deterministic schedule. The contract under test is absolute:

* every request either returns a payload **byte-identical** to the
  fault-free golden answer, or fails with a structured error — a wrong
  number is never acceptable;
* damage never multiplies work: across resets, retries, and desyncs,
  M distinct keys cost exactly M cold computations.

The schedule itself is also pinned down (same seed → same faults), so
a chaotic failure reproduces instead of flaking.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.experiments.common import clear_caches
from repro.runtime.context import use_runtime
from repro.serve.chaos import WIRE_CHAOS_MODES, ChaosProxy, WireChaosConfig
from repro.serve.client import ResilientAsyncClient, ServeError
from repro.serve.protocol import canonical_dumps
from repro.serve.resilience import CircuitBreaker, ClientPolicy
from repro.serve.server import AvfServer, ServeConfig
from repro.util.rng import DeterministicRng

#: The only acceptable ways for a request to not produce the golden
#: answer. Anything else (notably: a successful response with a
#: different payload) is a correctness bug.
STRUCTURED_FAILURES = (ServeError, ConnectionError, OSError, EOFError,
                       asyncio.TimeoutError, TimeoutError)

#: Retry hard, back off barely, never trip the breaker: the chaos tests
#: measure the protocol's integrity, not its patience.
PERSISTENT = ClientPolicy(retries=8, backoff_base=0.001, backoff_cap=0.01,
                          jitter=0.0)


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_caches()
    yield
    clear_caches()


class CountingResolver:
    """Thread-safe per-key invocation counter standing in for the engine."""

    def __init__(self):
        self.calls = {}
        self._lock = threading.Lock()

    def __call__(self, query):
        with self._lock:
            self.calls[query.key] = self.calls.get(query.key, 0) + 1
        return {"echo": query.seed}


def request_for(seed: int) -> dict:
    return {"op": "avf", "profile": "crafty",
            "target_instructions": 700, "seed": seed}


async def storm(requests, resolver, chaos, timeout=0.75, policy=PERSISTENT):
    """One client session through a chaos proxy against a fresh server.

    Returns ``(outcomes, proxy_counters, server_stats)`` where each
    outcome is ``("ok", response)`` or ``("fail", exception)``.
    """
    server = AvfServer(ServeConfig(host="127.0.0.1", port=0),
                       resolver=resolver)
    await server.start()
    proxy = ChaosProxy(("127.0.0.1", server.port), chaos)
    await proxy.start()
    client = ResilientAsyncClient(
        "127.0.0.1", proxy.port, timeout=timeout, policy=policy,
        breaker=CircuitBreaker(threshold=1_000_000))
    outcomes = []
    try:
        for request in requests:
            try:
                outcomes.append(("ok", await client.request(dict(request))))
            except STRUCTURED_FAILURES as exc:
                outcomes.append(("fail", exc))
    finally:
        await client.close()
        await proxy.stop()
        await server.stop()
    return outcomes, dict(proxy.counters), dict(server.stats)


# -- configuration and schedule ----------------------------------------------


class TestWireChaosConfig:
    def test_defaults_are_valid_and_armed(self):
        config = WireChaosConfig()
        assert all(config.enabled(mode) for mode in WIRE_CHAOS_MODES)

    def test_rejects_unknown_modes(self):
        with pytest.raises(ValueError, match="unknown wire chaos"):
            WireChaosConfig(modes=("drop", "scramble"))

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError, match="drop_prob"):
            WireChaosConfig(drop_prob=1.5)

    def test_rejects_probabilities_summing_past_one(self):
        with pytest.raises(ValueError, match="sum"):
            WireChaosConfig(drop_prob=0.6, reset_prob=0.6)

    def test_rejects_negative_seed_and_delay(self):
        with pytest.raises(ValueError, match="seed"):
            WireChaosConfig(seed=-1)
        with pytest.raises(ValueError, match="delay_seconds"):
            WireChaosConfig(delay_seconds=-0.1)

    def test_disabled_modes_never_fire(self):
        config = WireChaosConfig(modes=("reset",), reset_prob=1.0)
        proxy = ChaosProxy(("127.0.0.1", 1), config)
        for line in range(50):
            action, _ = proxy.decide("up", 1, line)
            assert action == "reset"


class TestDeterministicSchedule:
    def test_same_seed_same_schedule(self):
        a = ChaosProxy(("127.0.0.1", 1), WireChaosConfig(seed=7))
        b = ChaosProxy(("127.0.0.1", 2), WireChaosConfig(seed=7))
        schedule = [(d, c, i) for d in ("up", "down")
                    for c in range(1, 4) for i in range(40)]
        assert [a.decide(*s)[0] for s in schedule] \
            == [b.decide(*s)[0] for s in schedule]

    def test_different_seeds_differ(self):
        a = ChaosProxy(("127.0.0.1", 1), WireChaosConfig(seed=7))
        b = ChaosProxy(("127.0.0.1", 1), WireChaosConfig(seed=8))
        schedule = [("up", c, i) for c in range(1, 6) for i in range(40)]
        assert [a.decide(*s)[0] for s in schedule] \
            != [b.decide(*s)[0] for s in schedule]

    def test_directions_are_decorrelated(self):
        proxy = ChaosProxy(("127.0.0.1", 1), WireChaosConfig(seed=7))
        up = [proxy.decide("up", 1, i)[0] for i in range(60)]
        down = [proxy.decide("down", 1, i)[0] for i in range(60)]
        assert up != down

    def test_garbled_lines_never_decode(self):
        """0xFF stamping guarantees JSON decode failure — the structural
        reason chaos can never fabricate a plausible wrong answer."""
        line = (json.dumps({"id": 5, "event": "result", "ok": True,
                            "value": {"sdc_avf": 0.25}}) + "\n").encode()
        for seed in range(200):
            rng = DeterministicRng(seed)
            damaged = ChaosProxy.garble_line(line, rng)
            assert damaged.endswith(b"\n")
            assert damaged != line
            with pytest.raises((UnicodeDecodeError, json.JSONDecodeError)):
                json.loads(damaged)

    def test_garble_preserves_empty_lines(self):
        rng = DeterministicRng(1)
        assert ChaosProxy.garble_line(b"\n", rng) == b"\n"


# -- the differential matrix --------------------------------------------------


class TestChaosDifferential:
    @pytest.mark.parametrize("chaos_seed", [101, 202, 303, 404, 505])
    def test_no_silently_wrong_answer_under_full_chaos(self, chaos_seed):
        """All five fault modes armed: every success is byte-identical
        to the golden payload, every failure is structured, and no key
        is ever computed twice."""
        resolver = CountingResolver()
        keys = list(range(8))
        requests = [request_for(seed) for seed in keys] * 3

        outcomes, wire, stats = asyncio.run(storm(
            requests, resolver, WireChaosConfig(seed=chaos_seed)))

        successes = 0
        for (kind, payload), request in zip(outcomes, requests):
            if kind == "ok":
                successes += 1
                golden = canonical_dumps({"echo": request["seed"]})
                assert canonical_dumps(payload["value"]) == golden
            else:
                assert isinstance(payload, STRUCTURED_FAILURES)
        # The storm must neither block everything nor miss everything.
        assert successes >= len(requests) // 2, (outcomes, wire)
        faults = sum(wire.get(f"wire_{m}", 0)
                     for m in ("drop", "reset", "truncate", "garble"))
        assert faults > 0, wire
        # Dedup invariant: retries and resets never multiply work.
        assert all(count == 1 for count in resolver.calls.values()), \
            resolver.calls
        assert stats["serve_cold_computes"] == len(resolver.calls)

    def test_resets_never_multiply_computes(self):
        """Reset-heavy storm, K=30 requests over M=5 keys: exactly M
        computations, and the ones that answered answered correctly."""
        resolver = CountingResolver()
        requests = [request_for(seed % 5) for seed in range(30)]

        outcomes, wire, _ = asyncio.run(storm(
            requests, resolver,
            WireChaosConfig(modes=("reset",), seed=42, reset_prob=0.3),
            policy=ClientPolicy(retries=10, backoff_base=0.001,
                                backoff_cap=0.01, jitter=0.0)))

        for (kind, payload), request in zip(outcomes, requests):
            if kind == "ok":
                assert payload["value"] == {"echo": request["seed"]}
        assert wire["wire_reset"] > 0
        assert len(resolver.calls) == 5
        assert all(count == 1 for count in resolver.calls.values()), \
            resolver.calls

    def test_garble_only_storm_is_always_detected(self):
        """With every line at risk of damage, either the golden bytes
        arrive or the request fails — a garbled frame is never taken
        for an answer (0xFF can't decode as UTF-8)."""
        resolver = CountingResolver()
        requests = [request_for(seed % 4) for seed in range(20)]

        outcomes, wire, _ = asyncio.run(storm(
            requests, resolver,
            WireChaosConfig(modes=("garble",), seed=9, garble_prob=0.25)))

        for (kind, payload), request in zip(outcomes, requests):
            if kind == "ok":
                assert payload["value"] == {"echo": request["seed"]}
        assert wire["wire_garble"] > 0
        assert all(count == 1 for count in resolver.calls.values())

    def test_dead_upstream_is_a_structured_failure(self):
        async def main():
            proxy = ChaosProxy(("127.0.0.1", 1), WireChaosConfig(seed=1))
            await proxy.start()
            client = ResilientAsyncClient(
                "127.0.0.1", proxy.port, timeout=0.5,
                policy=ClientPolicy(retries=1, backoff_base=0.001,
                                    backoff_cap=0.01, jitter=0.0),
                breaker=CircuitBreaker(threshold=1_000_000))
            try:
                with pytest.raises(STRUCTURED_FAILURES):
                    await client.request(request_for(1))
            finally:
                await client.close()
                await proxy.stop()
            return dict(proxy.counters)

        counters = asyncio.run(main())
        assert counters["wire_upstream_refused"] >= 1


# -- the real engine under chaos ---------------------------------------------


AVF_REQUEST = {"op": "avf", "profile": "crafty",
               "target_instructions": 1500, "seed": 77}
CAMPAIGN_REQUEST = {"op": "campaign", "profile": "mcf",
                    "target_instructions": 1500, "seed": 77,
                    "trials": 20, "campaign_seed": 9, "parity": True}


class TestRealEngineUnderChaos:
    def test_warm_cold_and_campaign_answers_survive_chaos(self):
        """Cold AVF, warm AVF, and campaign queries through five chaos
        seeds: every answered payload is byte-identical to the answer a
        fault-free server gives for the same tuple."""

        async def golden_answers():
            server = AvfServer(ServeConfig(host="127.0.0.1", port=0))
            await server.start()
            client = ResilientAsyncClient(
                "127.0.0.1", server.port, timeout=30.0,
                policy=ClientPolicy(retries=0),
                breaker=CircuitBreaker(threshold=1_000_000))
            try:
                avf = await client.request(dict(AVF_REQUEST))
                campaign = await client.request(dict(CAMPAIGN_REQUEST))
            finally:
                await client.close()
                await server.stop()
            return {"avf": canonical_dumps(avf["value"]),
                    "campaign": canonical_dumps(campaign["value"])}

        with use_runtime():
            golden = asyncio.run(golden_answers())
            # cold (first ask per seed warms a fresh server's LRU from
            # the memoised engine), then warm (second ask)
            requests = [AVF_REQUEST, CAMPAIGN_REQUEST,
                        AVF_REQUEST, CAMPAIGN_REQUEST]
            answered = 0
            for chaos_seed in (11, 22, 33, 44, 55):
                outcomes, _, _ = asyncio.run(storm(
                    requests, None, WireChaosConfig(seed=chaos_seed),
                    timeout=30.0))
                for (kind, payload), request in zip(outcomes, requests):
                    if kind != "ok":
                        assert isinstance(payload, STRUCTURED_FAILURES)
                        continue
                    answered += 1
                    expected = golden["avf" if request["op"] == "avf"
                                      else "campaign"]
                    assert canonical_dumps(payload["value"]) == expected
            # Determinism guarantee aside, the storm settings are mild
            # enough that the vast majority of asks must land.
            assert answered >= 10
