"""Differential proof for the chunk-compositional timing fast path.

``repro.pipeline.compose.run_composed`` must be *bit-identical* to the
plain interval kernel: same cycle counts, same interval log (in order),
same stats, same RNG stream, and identical timing-store cache keys —
whether a chunk was executed, recorded, or replayed from the memo. These
tests run both kernels over every benchmark profile x squash trigger,
over the ablation machine variants, over tiled/scaled traces where the
memo actually engages, and over hypothesis-generated workloads; they
also pin the memo's management behaviour (LRU scopes, byte budget,
telemetry counters) and the relocatable column-block arithmetic the
splice path is built on.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.deadcode import analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.avf.avf_calc import compute_iq_avf
from repro.avf.occupancy import AccountingPolicy, compute_breakdown
from repro.isa.opcodes import Opcode
from repro.pipeline import compose
from repro.pipeline.compose import (
    chunk_memo_footprint,
    clear_chunk_memos,
    run_composed,
)
from repro.pipeline.config import (
    IssuePolicy,
    MachineConfig,
    SquashAction,
    SquashConfig,
    Trigger,
)
from repro.pipeline.core import PipelineSimulator
from repro.pipeline.iq import NO_VALUE, IntervalTimeline
from repro.pipeline.kernel import run_interval
from repro.runtime.cache import cache_key
from repro.runtime.context import use_runtime
from repro.workloads.codegen import synthesize
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.scaled import ScaledWorkload, build_scaled, scale_trace
from repro.workloads.spec2000 import ALL_PROFILES

from .conftest import TEST_SEED
from .helpers import I, program

TRIGGERS = (Trigger.NONE, Trigger.L0_MISS, Trigger.L1_MISS)


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Every test starts and ends with an empty memo."""
    clear_chunk_memos()
    yield
    clear_chunk_memos()


def _run_both(program_, trace, machine, seed=TEST_SEED):
    """(plain interval result, composed result) for one configuration."""
    ref = run_interval(PipelineSimulator(program_, trace, machine,
                                         seed=seed))
    fast = run_composed(PipelineSimulator(program_, trace, machine,
                                          seed=seed))
    return ref, fast


def _assert_identical(ref, fast, deadness=None):
    """Every observable of the two kernels must agree exactly."""
    assert isinstance(fast.intervals, IntervalTimeline)
    assert ref.cycles == fast.cycles
    assert ref.committed == fast.committed
    assert ref.iq_entries == fast.iq_entries
    assert ref.stats == fast.stats
    assert ref.ipc == fast.ipc
    ri, fi = ref.intervals, fast.intervals
    assert list(ri.seq) == list(fi.seq)
    assert list(ri.kind) == list(fi.kind)
    assert list(ri.alloc) == list(fi.alloc)
    assert list(ri.issue) == list(fi.issue)
    assert list(ri.dealloc) == list(fi.dealloc)
    assert tuple(i.encode() for i in ri.instr) == \
        tuple(i.encode() for i in fi.instr)
    # The persistent timeline store must key both identically: the memo
    # must never leak into what downstream caching observes.
    assert cache_key(ref) == cache_key(fast)
    if deadness is not None:
        for policy in AccountingPolicy:
            rb = compute_breakdown(ref, deadness, policy)
            fb = compute_breakdown(fast, deadness, policy)
            assert rb.ace_bit_cycles == fb.ace_bit_cycles
            assert rb.sdc_avf == fb.sdc_avf
            assert rb.due_avf == fb.due_avf
        rr = compute_iq_avf("x", ref, deadness)
        fr = compute_iq_avf("x", fast, deadness)
        assert rr.ipc_over_sdc_avf == fr.ipc_over_sdc_avf
        assert rr.ipc_over_due_avf == fr.ipc_over_due_avf


class TestDifferentialMatrix:
    """Composed == plain over profiles, triggers, and machine variants."""

    @pytest.mark.parametrize("profile", ALL_PROFILES,
                             ids=[p.name for p in ALL_PROFILES])
    def test_every_profile_every_trigger(self, profile):
        program_ = synthesize(profile, target_instructions=3000,
                              seed=TEST_SEED)
        execution = FunctionalSimulator(program_).run()
        assert execution.clean
        deadness = analyze_deadness(execution)
        base = MachineConfig(fetch_bubble_prob=profile.fetch_bubble_prob)
        for trigger in TRIGGERS:
            machine = replace(base,
                              squash=replace(base.squash, trigger=trigger))
            ref, fast = _run_both(program_, execution.trace, machine)
            _assert_identical(ref, fast, deadness)

    @pytest.mark.parametrize("variant", [
        "throttle", "resume_at_miss_return", "ooo_baseline", "ooo_l1",
        "ooo_l0", "tiny_queue", "wide_machine",
    ])
    def test_machine_variants(self, variant, small_program, small_execution,
                              small_deadness, base_machine):
        machines = {
            "throttle": replace(base_machine, squash=SquashConfig(
                trigger=Trigger.L1_MISS, action=SquashAction.THROTTLE)),
            "resume_at_miss_return": replace(base_machine,
                                             squash=SquashConfig(
                                                 trigger=Trigger.L1_MISS,
                                                 resume_at_miss_return=True)),
            "ooo_baseline": replace(base_machine,
                                    issue_policy=IssuePolicy.OOO_WINDOW),
            "ooo_l1": replace(base_machine,
                              issue_policy=IssuePolicy.OOO_WINDOW,
                              squash=SquashConfig(trigger=Trigger.L1_MISS)),
            "ooo_l0": replace(base_machine,
                              issue_policy=IssuePolicy.OOO_WINDOW,
                              squash=SquashConfig(trigger=Trigger.L0_MISS)),
            "tiny_queue": replace(base_machine, iq_entries=8),
            "wide_machine": replace(base_machine, fetch_width=8,
                                    issue_width=8, commit_width=8),
        }
        ref, fast = _run_both(small_program, small_execution.trace,
                              machines[variant])
        _assert_identical(ref, fast, small_deadness)

    def test_warm_memo_replay_identical(self, small_program,
                                        small_execution, base_machine):
        """A second composed run — now replaying from a warm memo — must
        still match the plain kernel bit for bit."""
        machine = replace(base_machine,
                          squash=SquashConfig(trigger=Trigger.L1_MISS))
        ref, first = _run_both(small_program, small_execution.trace,
                               machine)
        _assert_identical(ref, first)
        again = run_composed(PipelineSimulator(
            small_program, small_execution.trace, machine, seed=TEST_SEED))
        _assert_identical(ref, again)

    def test_tiled_trace_engages_memo(self):
        """On a tiled trace the memo must actually replay chunks, and the
        result must stay exact."""
        profile = next(p for p in ALL_PROFILES if p.name == "mcf")
        program_ = synthesize(profile, target_instructions=3000,
                              seed=TEST_SEED)
        execution = FunctionalSimulator(program_).run()
        tiled = scale_trace(execution.trace, 10)
        machine = MachineConfig(
            fetch_bubble_prob=0.0,
            squash=SquashConfig(trigger=Trigger.L1_MISS))
        hits0 = compose.chunk_memo_hits
        splices0 = compose.chunk_memo_splices
        ref, fast = _run_both(program_, tiled, machine)
        _assert_identical(ref, fast)
        assert compose.chunk_memo_hits > hits0
        assert compose.chunk_memo_splices > splices0

    def test_scaled_workload_differential(self):
        """A catalogue-shaped scaled workload, bubbled and unbubbled."""
        workload = ScaledWorkload(name="mcf-30k", base_profile="mcf",
                                  target_instructions=30_000)
        program_, trace = build_scaled(workload, cache=False)
        profile = next(p for p in ALL_PROFILES if p.name == "mcf")
        for bubble in (0.0, profile.fetch_bubble_prob):
            machine = MachineConfig(
                fetch_bubble_prob=bubble,
                squash=SquashConfig(trigger=Trigger.L1_MISS))
            ref, fast = _run_both(program_, trace, machine)
            _assert_identical(ref, fast)


class TestEdgeCases:
    def test_minimal_one_instruction_trace(self):
        prog = program([I(Opcode.HALT)])
        execution = FunctionalSimulator(prog).run()
        assert execution.clean
        ref, fast = _run_both(prog, execution.trace, MachineConfig())
        _assert_identical(ref, fast)

    def test_last_instruction_squashed(self):
        body = [I(Opcode.MOVI, r1=1, imm=7)]
        for _ in range(24):
            body.append(I(Opcode.ADDI, r1=1, r2=1, imm=48))
            body.append(I(Opcode.LD, r1=2, r2=1, imm=0))
            body.append(I(Opcode.ADD, r1=3, r2=2, r3=2))
        prog = program(body)
        execution = FunctionalSimulator(prog).run()
        machine = MachineConfig(squash=SquashConfig(trigger=Trigger.L0_MISS))
        ref, fast = _run_both(prog, execution.trace, machine)
        _assert_identical(ref, fast)
        assert fast.stats["squashed_instructions"] > 0

    def test_queue_never_fills(self, small_program, small_execution,
                               base_machine):
        machine = replace(base_machine, iq_entries=16384)
        ref, fast = _run_both(small_program, small_execution.trace, machine)
        _assert_identical(ref, fast)

    def test_non_dense_seq_disables_memo_exactly(self, small_program,
                                                 small_execution,
                                                 base_machine):
        """A trace whose seq numbers are not dense indexes cannot use the
        relative-seq memo; run_composed must detect that and still be
        bit-identical via plain execution."""
        sliced = small_execution.trace[1:]
        misses0 = compose.chunk_memo_misses
        ref, fast = _run_both(small_program, sliced, base_machine)
        _assert_identical(ref, fast)
        assert compose.chunk_memo_misses == misses0  # memo never engaged


class TestDispatchAndTelemetry:
    def test_runtime_dispatch_and_counters(self, small_program,
                                           small_execution, base_machine):
        machine = replace(base_machine,
                          squash=SquashConfig(trigger=Trigger.L1_MISS))

        with use_runtime(chunk_memo=False) as context:
            off = PipelineSimulator(small_program, small_execution.trace,
                                    machine, seed=TEST_SEED).run()
            assert context.telemetry.counters["chunk_memo_hits"] == 0
            assert context.telemetry.counters["chunk_memo_misses"] == 0
        with use_runtime(chunk_memo=True) as context:
            on = PipelineSimulator(small_program, small_execution.trace,
                                   machine, seed=TEST_SEED).run()
            counters = context.telemetry.counters
            assert counters["chunk_memo_hits"] \
                + counters["chunk_memo_misses"] > 0
            summary = context.telemetry.format_summary(
                jobs=1, verbose=True)
            assert "chunk memo:" in summary
        _assert_identical(off, on)
        assert cache_key(off) == cache_key(on)

    def test_cli_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["figure1", "--no-chunk-memo"])
        assert args.no_chunk_memo
        assert not build_parser().parse_args(["figure1"]).no_chunk_memo

    def test_footprint_shape(self, small_program, small_execution,
                             base_machine):
        empty = chunk_memo_footprint()
        assert empty == {"scopes": 0, "keys": 0, "segments": 0, "bytes": 0}
        run_composed(PipelineSimulator(small_program,
                                       small_execution.trace,
                                       base_machine, seed=TEST_SEED))
        footprint = chunk_memo_footprint()
        assert footprint["scopes"] == 1
        assert footprint["segments"] >= footprint["keys"] > 0
        assert footprint["bytes"] > 0


class TestMemoManagement:
    def test_scope_lru(self, small_program, small_execution, base_machine,
                       monkeypatch):
        monkeypatch.setattr(compose, "_MEMO_SCOPE_LIMIT", 2)
        for width in (2, 4, 8):
            machine = replace(base_machine, fetch_width=width)
            run_composed(PipelineSimulator(small_program,
                                           small_execution.trace,
                                           machine, seed=TEST_SEED))
        assert len(compose._MEMOS) <= 2
        assert chunk_memo_footprint()["scopes"] <= 2

    def test_byte_budget_evicts(self, small_program, small_execution,
                                base_machine, monkeypatch):
        monkeypatch.setattr(compose, "MEMO_BYTE_LIMIT", 200_000)
        evictions0 = compose.chunk_memo_evictions
        machine = replace(base_machine,
                          squash=SquashConfig(trigger=Trigger.L1_MISS))
        run_composed(PipelineSimulator(small_program,
                                       small_execution.trace,
                                       machine, seed=TEST_SEED))
        assert compose.chunk_memo_evictions > evictions0
        assert chunk_memo_footprint()["bytes"] <= 200_000
        # ... and the starved memo still reproduces the exact result.
        ref = run_interval(PipelineSimulator(small_program,
                                             small_execution.trace,
                                             machine, seed=TEST_SEED))
        again = run_composed(PipelineSimulator(small_program,
                                               small_execution.trace,
                                               machine, seed=TEST_SEED))
        _assert_identical(ref, again)

    def test_clear_resets_footprint(self, small_program, small_execution,
                                    base_machine):
        run_composed(PipelineSimulator(small_program,
                                       small_execution.trace,
                                       base_machine, seed=TEST_SEED))
        assert chunk_memo_footprint()["bytes"] > 0
        clear_chunk_memos()
        assert chunk_memo_footprint() == {
            "scopes": 0, "keys": 0, "segments": 0, "bytes": 0}


# ---------------------------------------------------------------------------
# Hypothesis: relocatable column-block arithmetic (the splice substrate).
# ---------------------------------------------------------------------------

_INSTR = I(Opcode.ADD, r1=1, r2=2, r3=3)


@st.composite
def _timelines(draw):
    n = draw(st.integers(0, 40))
    records = []
    for _ in range(n):
        kind = draw(st.integers(0, 2))
        seq = NO_VALUE if kind == 1 else draw(st.integers(0, 10_000))
        alloc = draw(st.integers(0, 100_000))
        dealloc = alloc + draw(st.integers(1, 500))
        never = draw(st.booleans())
        issue = NO_VALUE if never else draw(
            st.integers(alloc, dealloc))
        records.append((seq, kind, alloc, issue, dealloc, _INSTR))
    return IntervalTimeline(records)


@st.composite
def _cuts(draw):
    timeline = draw(_timelines())
    n = len(timeline)
    k = draw(st.integers(0, 4))
    points = sorted(draw(
        st.lists(st.integers(0, n), min_size=k, max_size=k)))
    return timeline, [0, *points, n]


class TestBlockRoundTrip:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_cuts())
    def test_slice_splice_identity(self, case):
        """Cutting a timeline into blocks and splicing them back must
        reproduce every column exactly."""
        timeline, cuts = case
        blocks = [timeline.block(a, b) for a, b in zip(cuts, cuts[1:])]
        rebuilt = IntervalTimeline.from_blocks(blocks)
        assert list(rebuilt.seq) == list(timeline.seq)
        assert list(rebuilt.kind) == list(timeline.kind)
        assert list(rebuilt.alloc) == list(timeline.alloc)
        assert list(rebuilt.issue) == list(timeline.issue)
        assert list(rebuilt.dealloc) == list(timeline.dealloc)
        assert rebuilt.instr == timeline.instr

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_timelines(), st.integers(-5_000, 5_000),
           st.integers(-5_000, 5_000))
    def test_shift_roundtrip(self, timeline, cycle_delta, seq_delta):
        """shifted(+d) then shifted(-d) is the identity, and NO_VALUE
        survives both directions untouched.

        The sentinel is in-band: a shift that would land a *real*
        coordinate exactly on NO_VALUE cannot be represented (the row
        would read back as anonymous/never-issued and the shift would
        stop being invertible), so it must refuse loudly instead of
        corrupting silently."""
        block = timeline.block(0, len(timeline))
        collides = (
            (seq_delta and (NO_VALUE - seq_delta) in block.seq)
            or (cycle_delta and (NO_VALUE - cycle_delta) in block.issue))
        if collides:
            with pytest.raises(ValueError, match="NO_VALUE sentinel"):
                block.shifted(cycle_delta, seq_delta)
            return
        shifted = block.shifted(cycle_delta, seq_delta)
        for orig, moved in zip(block.seq, shifted.seq):
            if orig == NO_VALUE:
                assert moved == NO_VALUE
            else:
                assert moved == orig + seq_delta
        for orig, moved in zip(block.issue, shifted.issue):
            if orig == NO_VALUE:
                assert moved == NO_VALUE
            else:
                assert moved == orig + cycle_delta
        back = shifted.shifted(-cycle_delta, -seq_delta)
        assert list(back.seq) == list(block.seq)
        assert list(back.alloc) == list(block.alloc)
        assert list(back.issue) == list(block.issue)
        assert list(back.dealloc) == list(block.dealloc)

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_cuts(), st.integers(0, 5_000))
    def test_relocated_residency_sums(self, case, cycle_delta):
        """Relocating every block by the same delta shifts alloc but
        leaves resident/cumulative residency columns identical — the
        coordinate system the strike batcher samples in."""
        timeline, cuts = case
        blocks = [timeline.block(a, b).shifted(cycle_delta)
                  for a, b in zip(cuts, cuts[1:])]
        rebuilt = IntervalTimeline.from_blocks(blocks)
        alloc0, resident0, cumulative0 = timeline.residency_prefix_sums()
        alloc1, resident1, cumulative1 = rebuilt.residency_prefix_sums()
        assert list(resident0) == list(resident1)
        assert list(cumulative0) == list(cumulative1)
        assert [a + cycle_delta for a in alloc0] == list(alloc1)


# ---------------------------------------------------------------------------
# Hypothesis: end-to-end signature soundness over random workloads.
# ---------------------------------------------------------------------------

@st.composite
def _profiles(draw):
    return BenchmarkProfile(
        name="hypo-compose",
        suite=draw(st.sampled_from(["int", "fp"])),
        body_items=draw(st.integers(40, 120)),
        w_noop=draw(st.floats(0.0, 60.0)),
        w_branch_rand=draw(st.floats(0.0, 4.0)),
        w_cold_load=draw(st.floats(0.0, 2.0)),
        w_call=draw(st.floats(0.0, 3.0)),
        pred_block_len=draw(st.integers(1, 5)),
        miss_burst=draw(st.integers(1, 4)),
        fetch_bubble_prob=draw(st.sampled_from([0.0, 0.0, 0.2, 0.4])),
        seed_salt=draw(st.integers(0, 1000)),
    )


class TestSignatureSoundness:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_profiles(), st.integers(0, 10_000),
           st.sampled_from(TRIGGERS))
    def test_random_workload_differential(self, profile, seed, trigger):
        """For any synthesizable workload and trigger, replayed chunks
        must be indistinguishable from executed ones."""
        clear_chunk_memos()
        program_ = synthesize(profile, target_instructions=2000, seed=seed)
        execution = FunctionalSimulator(program_).run()
        assert execution.clean
        machine = MachineConfig(
            fetch_bubble_prob=profile.fetch_bubble_prob,
            squash=SquashConfig(trigger=trigger))
        ref, fast = _run_both(program_, execution.trace, machine)
        _assert_identical(ref, fast)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(_profiles(), st.integers(0, 10_000), st.integers(2, 6))
    def test_tiled_random_workload_differential(self, profile, seed,
                                                factor):
        """Tiling multiplies chunk revisits; splice exactness must hold
        at every repetition count."""
        clear_chunk_memos()
        program_ = synthesize(profile, target_instructions=1500, seed=seed)
        execution = FunctionalSimulator(program_).run()
        tiled = scale_trace(execution.trace, factor)
        machine = MachineConfig(
            fetch_bubble_prob=profile.fetch_bubble_prob,
            squash=SquashConfig(trigger=Trigger.L1_MISS))
        ref, fast = _run_both(program_, tiled, machine)
        _assert_identical(ref, fast)
