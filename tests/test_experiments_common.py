"""Tests for the shared experiment plumbing."""

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    clear_caches,
    functional_parts,
    run_benchmark,
)
from repro.pipeline.config import Trigger
from repro.workloads.spec2000 import get_profile

SETTINGS = ExperimentSettings(target_instructions=5000, seed=31)


class TestFunctionalParts:
    def test_cached_by_identity(self):
        profile = get_profile("gap")
        first = functional_parts(profile, SETTINGS)
        second = functional_parts(profile, SETTINGS)
        assert first[0] is second[0]

    def test_different_seed_not_shared(self):
        profile = get_profile("gap")
        a = functional_parts(profile, SETTINGS)
        b = functional_parts(profile,
                             ExperimentSettings(target_instructions=5000,
                                                seed=32))
        assert a[0] is not b[0]

    def test_clear_caches(self):
        profile = get_profile("gap")
        first = functional_parts(profile, SETTINGS)
        clear_caches()
        second = functional_parts(profile, SETTINGS)
        assert first[0] is not second[0]


class TestMachineFor:
    def test_profile_bubble_applied(self):
        profile = get_profile("vortex-lendian3")
        machine = SETTINGS.machine_for(profile, Trigger.NONE)
        assert machine.fetch_bubble_prob == profile.fetch_bubble_prob

    def test_trigger_applied(self):
        profile = get_profile("gap")
        machine = SETTINGS.machine_for(profile, Trigger.L0_MISS)
        assert machine.squash.trigger is Trigger.L0_MISS


class TestRunBenchmark:
    def test_distinct_triggers_distinct_runs(self):
        profile = get_profile("gap")
        base = run_benchmark(profile, SETTINGS, Trigger.NONE)
        squashed = run_benchmark(profile, SETTINGS, Trigger.L1_MISS)
        assert base is not squashed
        # The functional half is shared between triggers.
        assert base.program is squashed.program
        assert base.execution is squashed.execution

    def test_default_settings_work(self):
        # Exercise the ExperimentSettings() default path cheaply by
        # ensuring the settings object itself is valid.
        settings = ExperimentSettings()
        assert settings.target_instructions >= 10_000
