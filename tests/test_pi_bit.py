"""π-bit propagation engine tests, cross-validated against the taxonomy."""

import pytest

from repro.analysis.deadcode import DynClass, analyze_deadness
from repro.due.pi_bit import PiBitTracker
from repro.due.tracking import TrackingLevel
from repro.isa.encoding import Field, field_bits
from repro.isa.opcodes import Opcode
from tests.helpers import I, run

OPCODE_BIT = next(iter(field_bits(Field.OPCODE)))
DATA_BIT = next(iter(field_bits(Field.R3)))


def decide(instructions, seq, level, bit=None, pet=512):
    result = run(list(instructions))
    tracker = PiBitTracker(result.trace, level, pet_entries=pet)
    return tracker.process_fault(seq, struck_bit=bit)


LIVE_CHAIN = [
    I(Opcode.MOVI, r1=1, imm=5),
    I(Opcode.ADD, r1=2, r2=1, r3=1),
    I(Opcode.OUT, r2=2),
]


class TestParityOnly:
    def test_always_signals(self):
        for seq in range(3):
            decision = decide(LIVE_CHAIN, seq, TrackingLevel.PARITY_ONLY)
            assert decision.signaled and decision.at_seq == seq

    def test_even_neutral_signals(self):
        decision = decide([I(Opcode.NOP)], 0, TrackingLevel.PARITY_ONLY)
        assert decision.signaled


class TestPiCommit:
    def test_pred_false_suppressed(self):
        decision = decide([I(Opcode.ADD, qp=9, r1=2, r2=1, r3=1)], 0,
                          TrackingLevel.PI_COMMIT)
        assert not decision.signaled
        assert "predicated false" in decision.reason

    def test_live_signals_at_commit(self):
        decision = decide(LIVE_CHAIN, 0, TrackingLevel.PI_COMMIT)
        assert decision.signaled

    def test_neutral_still_signals_without_anti_pi(self):
        decision = decide([I(Opcode.NOP)], 0, TrackingLevel.PI_COMMIT,
                          bit=DATA_BIT)
        assert decision.signaled


class TestAntiPi:
    def test_neutral_non_opcode_suppressed(self):
        decision = decide([I(Opcode.NOP)], 0, TrackingLevel.ANTI_PI,
                          bit=DATA_BIT)
        assert not decision.signaled
        assert "anti" in decision.reason

    def test_neutral_opcode_bit_signals(self):
        decision = decide([I(Opcode.NOP)], 0, TrackingLevel.ANTI_PI,
                          bit=OPCODE_BIT)
        assert decision.signaled

    def test_non_neutral_unaffected(self):
        decision = decide(LIVE_CHAIN, 0, TrackingLevel.ANTI_PI, bit=DATA_BIT)
        assert decision.signaled


class TestPet:
    def test_fdd_within_window_suppressed(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        ]
        decision = decide(code, 0, TrackingLevel.PET, pet=16)
        assert not decision.signaled

    def test_fdd_outside_window_signals(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            *[I(Opcode.NOP)] * 30,
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        ]
        decision = decide(code, 0, TrackingLevel.PET, pet=8)
        assert decision.signaled

    def test_live_signals(self):
        decision = decide(LIVE_CHAIN, 0, TrackingLevel.PET, pet=16)
        assert decision.signaled


class TestRegPi:
    def test_fdd_suppressed_regardless_of_distance(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            *[I(Opcode.NOP)] * 40,
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        ]
        decision = decide(code, 0, TrackingLevel.REG_PI)
        assert not decision.signaled

    def test_never_read_never_overwritten_suppressed(self):
        decision = decide([I(Opcode.MOVI, r1=9, imm=5)], 0,
                          TrackingLevel.REG_PI)
        assert not decision.signaled

    def test_tdd_still_signals(self):
        # The dead reader consumes the poisoned register: REG_PI cannot
        # tell it is transitively dead, so it must signal.
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.ADD, r1=2, r2=1, r3=1),  # dead reader
        ]
        decision = decide(code, 0, TrackingLevel.REG_PI)
        assert decision.signaled
        assert "read" in decision.reason

    def test_store_pi_out_of_scope_signals(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=0x40),
            I(Opcode.ST, r1=1, r2=1, imm=0),  # faulted store: no dest reg
        ]
        decision = decide(code, 1, TrackingLevel.REG_PI)
        assert decision.signaled

    def test_poisoned_predicate_read_signals(self):
        code = [
            I(Opcode.CMP_EQ, r1=5, r2=0, r3=0),
            I(Opcode.MOVI, qp=5, r1=1, imm=3),
            I(Opcode.OUT, r2=1),
        ]
        decision = decide(code, 0, TrackingLevel.REG_PI)
        assert decision.signaled


class TestStorePi:
    def test_tdd_reg_suppressed(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),  # TDD via r1 -> r2 (dead)
            I(Opcode.ADD, r1=2, r2=1, r3=1),
            I(Opcode.MOVI, r1=1, imm=0),
            I(Opcode.MOVI, r1=2, imm=0),
        ]
        decision = decide(code, 0, TrackingLevel.STORE_PI)
        assert not decision.signaled

    def test_poison_reaching_store_signals(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.ADD, r1=2, r2=1, r3=1),
            I(Opcode.MOVI, r1=3, imm=0x40),
            I(Opcode.ST, r1=2, r2=3, imm=0),  # poisoned data stored
        ]
        decision = decide(code, 0, TrackingLevel.STORE_PI)
        assert decision.signaled
        assert "store" in decision.reason

    def test_poison_reaching_out_signals(self):
        decision = decide(LIVE_CHAIN, 0, TrackingLevel.STORE_PI)
        assert decision.signaled

    def test_poisoned_control_signals(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=1),
            I(Opcode.CMP_NE, r1=5, r2=1, r3=0),
            I(Opcode.BR, qp=5, imm=2),
            I(Opcode.NOP),
        ]
        decision = decide(code, 0, TrackingLevel.STORE_PI)
        assert decision.signaled
        assert "predication" in decision.reason or "control" in decision.reason

    def test_clean_overwrite_scrubs(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.ADD, r1=2, r2=1, r3=1),
            I(Opcode.MOVI, r1=2, imm=7),  # clean overwrite of r2
            I(Opcode.MOVI, r1=1, imm=8),  # clean overwrite of r1
            I(Opcode.OUT, r2=2),
        ]
        decision = decide(code, 0, TrackingLevel.STORE_PI)
        assert not decision.signaled


class TestMemPi:
    def test_dead_store_suppressed(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=0x40),
            I(Opcode.MOVI, r1=2, imm=9),
            I(Opcode.ST, r1=2, r2=1, imm=0),  # faulted, never loaded
        ]
        decision = decide(code, 2, TrackingLevel.MEM_PI)
        assert not decision.signaled

    def test_poison_through_memory_to_out_signals(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=0x40),
            I(Opcode.MOVI, r1=2, imm=9),  # faulted
            I(Opcode.ST, r1=2, r2=1, imm=0),
            I(Opcode.LD, r1=3, r2=1, imm=0),
            I(Opcode.OUT, r2=3),
        ]
        decision = decide(code, 1, TrackingLevel.MEM_PI)
        assert decision.signaled
        assert "I/O" in decision.reason

    def test_poisoned_word_scrubbed_by_clean_store(self):
        code = [
            I(Opcode.MOVI, r1=1, imm=0x40),
            I(Opcode.MOVI, r1=2, imm=9),  # faulted
            I(Opcode.ST, r1=2, r2=1, imm=0),
            I(Opcode.ST, r1=0, r2=1, imm=0),  # clean overwrite
            I(Opcode.LD, r1=3, r2=1, imm=0),
            I(Opcode.OUT, r2=3),
        ]
        decision = decide(code, 1, TrackingLevel.MEM_PI)
        assert not decision.signaled


class TestCrossValidation:
    """Every dead-class fault must be silent at the level that claims to
    cover it, and every live fault must signal at every level."""

    LEVEL_COVERING = {
        DynClass.PRED_FALSE: TrackingLevel.PI_COMMIT,
        DynClass.NEUTRAL: TrackingLevel.ANTI_PI,
        DynClass.FDD_REG: TrackingLevel.REG_PI,
        DynClass.FDD_REG_RETURN: TrackingLevel.REG_PI,
        DynClass.TDD_REG: TrackingLevel.STORE_PI,
        DynClass.FDD_MEM: TrackingLevel.MEM_PI,
        DynClass.TDD_MEM: TrackingLevel.MEM_PI,
    }

    def test_on_generated_workload(self, small_execution, small_deadness):
        trace = small_execution.trace
        checked = {cls: 0 for cls in self.LEVEL_COVERING}
        for seq, cls in enumerate(small_deadness.classes):
            if cls not in self.LEVEL_COVERING or checked[cls] >= 10:
                continue
            checked[cls] += 1
            level = self.LEVEL_COVERING[cls]
            tracker = PiBitTracker(trace, level)
            decision = tracker.process_fault(seq)
            assert not decision.signaled, (
                f"{cls} fault at seq {seq} signalled at {level}: "
                f"{decision.reason}")
        assert all(count > 0 for cls, count in checked.items()
                   if small_deadness.count(cls) > 0)

    def test_live_always_signals(self, small_execution, small_deadness):
        trace = small_execution.trace
        checked = 0
        for seq, cls in enumerate(small_deadness.classes):
            if cls is not DynClass.LIVE or checked >= 10:
                continue
            op = trace[seq]
            if op.instruction.is_control or not op.executed:
                continue  # control ops are conservative roots
            checked += 1
            for level in (TrackingLevel.PARITY_ONLY, TrackingLevel.REG_PI,
                          TrackingLevel.STORE_PI, TrackingLevel.MEM_PI):
                decision = PiBitTracker(trace, level).process_fault(seq)
                assert decision.signaled, (
                    f"live fault at seq {seq} silent at {level}")
        assert checked > 0

    def test_seq_validation(self, small_execution):
        tracker = PiBitTracker(small_execution.trace,
                               TrackingLevel.PARITY_ONLY)
        with pytest.raises(ValueError):
            tracker.process_fault(-1)
        with pytest.raises(ValueError):
            tracker.process_fault(len(small_execution.trace))
