"""Failure semantics of the serve path: clients, breaker, server.

Three layers under test:

* the resilience primitives (:class:`CircuitBreaker` state machine under
  a fake clock, deadline budgets, deterministic backoff, env parsing);
* :class:`ServeClient` against a scripted TCP stub — server restart
  between requests, disconnect mid-request, stale-id skipping, wire
  desync, retryable structured errors with retry-after, breaker
  short-circuiting;
* :class:`AvfServer` overload/shutdown behaviour — load shedding,
  per-request deadlines, the ``health`` op, graceful drain — plus the
  end-to-end degrade-to-local guarantee: with the service dead, a
  50-key experiment completes bit-identically to a no-service run while
  paying at most ``breaker.threshold`` connection attempts in total.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.common import (
    ExperimentSettings,
    clear_caches,
    close_remote_stores,
    run_benchmark,
)
from repro.runtime.context import use_runtime
from repro.serve.client import (
    RemoteStore,
    ServeClient,
    ServeError,
    WireDesync,
)
from repro.serve.protocol import ProtocolError, canonical_dumps, \
    encode_benchmark
from repro.serve.resilience import (
    DEFAULT_BREAKER_THRESHOLD,
    BreakerOpen,
    CircuitBreaker,
    ClientPolicy,
    DeadlineBudget,
    service_retries,
    service_timeout,
)
from repro.serve.server import AvfServer, ServeConfig
from repro.workloads.spec2000 import get_profile

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _fresh_memos():
    clear_caches()
    close_remote_stores()
    yield
    clear_caches()
    close_remote_stores()


#: A policy that fails fast and sleeps for microseconds in tests.
FAST = ClientPolicy(retries=2, backoff_base=0.001, backoff_cap=0.002,
                    jitter=0.0)


def quiet_breaker() -> CircuitBreaker:
    """A breaker that effectively never opens (isolates retry tests)."""
    return CircuitBreaker(threshold=1000)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- resilience primitives ----------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_timeout=30.0,
                                 clock=clock)
        assert breaker.state == "closed"
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.counters["breaker_short_circuits"] == 1
        assert breaker.retry_in() == pytest.approx(30.0)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the single probe
        assert breaker.state == "half-open"
        assert not breaker.allow()  # probe already in flight
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=10.0,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        # The reset window restarts from the failed probe.
        assert breaker.retry_in() == pytest.approx(10.0)
        assert breaker.counters["breaker_open"] == 2

    def test_transitions_are_reported(self):
        clock = FakeClock()
        seen = []
        breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock,
                                 on_transition=lambda a, b: seen.append((a,
                                                                         b)))
        breaker.record_failure()
        clock.advance(6.0)
        breaker.allow()
        breaker.record_success()
        assert seen == [("closed", "open"), ("open", "half-open"),
                        ("half-open", "closed")]

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=0.0)

    def test_snapshot_shape(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        assert snap["consecutive_failures"] == 1
        assert snap["threshold"] == 2
        assert snap["breaker_failures"] == 1


class TestPolicyAndBudget:
    def test_backoff_matches_runtime_retry_policy(self):
        from repro.runtime.resilience import RetryPolicy

        policy = ClientPolicy(retries=3, backoff_base=0.1, backoff_cap=1.0,
                              jitter=0.5)
        twin = RetryPolicy(retries=3, backoff_base=0.1, backoff_cap=1.0,
                           jitter=0.5)
        for attempt in (1, 2, 3):
            assert policy.backoff_delay("svc", 7, attempt) \
                == twin.backoff_delay("svc", 7, attempt)

    def test_backoff_is_deterministic_and_decorrelated(self):
        policy = ClientPolicy(jitter=0.5)
        a = policy.backoff_delay("host:1", 1, 1)
        assert a == policy.backoff_delay("host:1", 1, 1)
        assert a != policy.backoff_delay("host:1", 2, 1)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            ClientPolicy(retries=-1)
        with pytest.raises(ValueError):
            ClientPolicy(deadline=0.0)

    def test_deadline_budget_counts_down_and_clips(self):
        clock = FakeClock()
        budget = DeadlineBudget(10.0, clock=clock)
        assert budget.remaining() == pytest.approx(10.0)
        assert budget.clip(60.0) == pytest.approx(10.0)
        assert budget.clip(2.0) == pytest.approx(2.0)
        clock.advance(9.0)
        assert budget.clip(60.0) == pytest.approx(1.0)
        assert not budget.expired()
        clock.advance(2.0)
        assert budget.expired()
        assert budget.remaining() == 0.0

    def test_unbounded_budget(self):
        budget = DeadlineBudget(None)
        assert budget.remaining() is None
        assert not budget.expired()
        assert budget.clip(5.0) == 5.0
        assert budget.clip(None) is None


class TestEnvKnobs:
    def test_service_timeout_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "12.5")
        assert service_timeout(300.0) == 12.5

    def test_service_timeout_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_SERVICE_TIMEOUT"):
            service_timeout(300.0)
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "-3")
        with pytest.raises(ValueError, match="positive"):
            service_timeout(300.0)

    def test_service_retries_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_RETRIES", "5")
        assert service_retries() == 5
        assert ClientPolicy.from_env().retries == 5
        monkeypatch.setenv("REPRO_SERVICE_RETRIES", "-1")
        with pytest.raises(ValueError, match="non-negative"):
            service_retries()

    def test_breaker_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_BREAKER_THRESHOLD", "7")
        monkeypatch.setenv("REPRO_SERVICE_BREAKER_RESET", "2.5")
        breaker = CircuitBreaker.from_env()
        assert breaker.threshold == 7
        assert breaker.reset_timeout == 2.5
        monkeypatch.setenv("REPRO_SERVICE_BREAKER_THRESHOLD", "many")
        with pytest.raises(ValueError, match="BREAKER_THRESHOLD"):
            CircuitBreaker.from_env()

    def test_client_timeout_configurable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TIMEOUT", "42")
        assert ServeClient("h:1").timeout == 42.0
        assert ServeClient("h:1", timeout=7.0).timeout == 7.0  # explicit wins

    def test_serve_config_overload_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "3")
        monkeypatch.setenv("REPRO_SERVE_DEADLINE", "1.5")
        config = ServeConfig.from_env()
        assert config.max_inflight == 3
        assert config.compute_deadline == 1.5
        monkeypatch.setenv("REPRO_SERVE_DEADLINE", "whenever")
        with pytest.raises(ValueError, match="REPRO_SERVE_DEADLINE"):
            ServeConfig.from_env()
        with pytest.raises(ValueError):
            ServeConfig(max_inflight=-1)
        with pytest.raises(ValueError):
            ServeConfig(compute_deadline=-0.5)

    def test_protocol_error_carries_retry_after(self):
        plain = ProtocolError("bad-request", "nope")
        assert "retry_after" not in plain.payload()
        hinted = ProtocolError("overloaded", "busy", retry_after=0.5)
        assert hinted.payload()["retry_after"] == 0.5


# -- ServeClient against a scripted TCP stub ---------------------------------


class ScriptedServer:
    """A TCP stub: each accepted connection runs the next script, then
    closes (which doubles as a server restart between connections)."""

    def __init__(self, *scripts) -> None:
        self.scripts = list(scripts)
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self.address = f"127.0.0.1:{self.port}"
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while self.scripts:
            script = self.scripts.pop(0)
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                stream = conn.makefile("rwb")
                try:
                    script(stream)
                    stream.flush()
                except (OSError, ValueError):
                    pass

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5)


def _reply(stream, request, **fields) -> None:
    payload = {"id": request.get("id"), "event": "result", "ok": True,
               "status": "warm", **fields}
    stream.write((json.dumps(payload) + "\n").encode())
    stream.flush()


def answer_pong(stream) -> None:
    request = json.loads(stream.readline())
    _reply(stream, request, value="pong")


class TestServeClientReconnect:
    def test_server_restart_between_requests(self):
        """Connection 1 dies after request 1; request 2 transparently
        reconnects and succeeds."""
        stub = ScriptedServer(answer_pong, answer_pong)
        try:
            client = ServeClient(stub.address, timeout=5.0, policy=FAST,
                                 breaker=quiet_breaker())
            with client:
                assert client.request({"op": "ping"})["value"] == "pong"
                assert client.request({"op": "ping"})["value"] == "pong"
        finally:
            stub.close()
        assert stub.connections == 2
        assert client.counters["client_transport_errors"] == 1
        assert client.counters["client_retries"] == 1

    def test_disconnect_mid_request_retries(self):
        """The server reads the request and hangs up without answering;
        the retry lands on a fresh connection."""

        def hang_up(stream):
            stream.readline()  # consume the request, answer nothing

        stub = ScriptedServer(hang_up, answer_pong)
        try:
            with ServeClient(stub.address, timeout=5.0, policy=FAST,
                             breaker=quiet_breaker()) as client:
                assert client.request({"op": "ping"})["value"] == "pong"
        finally:
            stub.close()
        assert stub.connections == 2

    def test_stale_id_lines_are_skipped(self):
        """Leftover lines from an abandoned request must not be taken as
        the answer to the current one."""

        def stale_then_real(stream):
            request = json.loads(stream.readline())
            stream.write((json.dumps(
                {"id": 999, "event": "result", "ok": True,
                 "status": "warm", "value": "stale"}) + "\n").encode())
            _reply(stream, request, value="fresh")

        stub = ScriptedServer(stale_then_real)
        try:
            with ServeClient(stub.address, timeout=5.0, policy=FAST,
                             breaker=quiet_breaker()) as client:
                assert client.request({"op": "ping"})["value"] == "fresh"
        finally:
            stub.close()

    def test_undecodable_response_is_desync_not_answer(self):
        def garbage(stream):
            stream.readline()
            stream.write(b"\xff\xff{definitely-not-json\n")
            stream.flush()

        stub = ScriptedServer(garbage, answer_pong)
        try:
            with ServeClient(stub.address, timeout=5.0, policy=FAST,
                             breaker=quiet_breaker()) as client:
                assert client.request({"op": "ping"})["value"] == "pong"
                assert client.counters["client_desyncs"] == 1
        finally:
            stub.close()

    def test_unattributable_error_is_desync(self):
        """An ``id: null`` error means our request line was damaged in
        flight — re-issue it, do not wait forever."""

        def null_error(stream):
            stream.readline()
            stream.write((json.dumps(
                {"id": None, "event": "error", "ok": False,
                 "error": {"code": "bad-json", "message": "?"}})
                + "\n").encode())
            stream.flush()

        stub = ScriptedServer(null_error, answer_pong)
        try:
            with ServeClient(stub.address, timeout=5.0, policy=FAST,
                             breaker=quiet_breaker()) as client:
                assert client.request({"op": "ping"})["value"] == "pong"
        finally:
            stub.close()

    def test_retryable_error_retries_on_same_connection(self):
        def shed_then_answer(stream):
            request = json.loads(stream.readline())
            stream.write((json.dumps(
                {"id": request["id"], "event": "error", "ok": False,
                 "error": {"code": "overloaded", "message": "busy",
                           "retry_after": 0.001}}) + "\n").encode())
            stream.flush()
            request = json.loads(stream.readline())  # the retry
            _reply(stream, request, value="pong")

        stub = ScriptedServer(shed_then_answer)
        try:
            with ServeClient(stub.address, timeout=5.0, policy=FAST,
                             breaker=quiet_breaker()) as client:
                assert client.request({"op": "ping"})["value"] == "pong"
                assert client.counters["client_retryable_errors"] == 1
        finally:
            stub.close()
        assert stub.connections == 1

    def test_non_retryable_error_raises_immediately(self):
        def reject(stream):
            request = json.loads(stream.readline())
            stream.write((json.dumps(
                {"id": request["id"], "event": "error", "ok": False,
                 "error": {"code": "bad-request", "message": "no"}})
                + "\n").encode())
            stream.flush()

        stub = ScriptedServer(reject)
        try:
            with ServeClient(stub.address, timeout=5.0, policy=FAST,
                             breaker=quiet_breaker()) as client:
                with pytest.raises(ServeError) as exc_info:
                    client.request({"op": "ping"})
        finally:
            stub.close()
        assert exc_info.value.code == "bad-request"
        assert client.counters["client_retries"] == 0

    def test_retries_exhausted_raises_last_transport_error(self):
        def hang_up(stream):
            stream.readline()

        stub = ScriptedServer(hang_up, hang_up, hang_up)
        try:
            with ServeClient(stub.address, timeout=5.0, policy=FAST,
                             breaker=quiet_breaker()) as client:
                with pytest.raises((ConnectionError, EOFError)):
                    client.request({"op": "ping"})
        finally:
            stub.close()
        assert client.counters["client_giveups"] == 1

    def test_deadline_budget_caps_total_retry_time(self):
        """Against a dead port, a 150 ms deadline gives up long before
        the retry budget would."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        policy = ClientPolicy(retries=50, backoff_base=0.05,
                              backoff_cap=0.1, jitter=0.0, deadline=0.15)
        client = ServeClient(f"127.0.0.1:{dead_port}", timeout=0.2,
                             policy=policy, breaker=quiet_breaker())
        started = time.monotonic()
        with pytest.raises(ConnectionError):
            client.request({"op": "ping"})
        elapsed = time.monotonic() - started
        assert elapsed < 2.0
        assert client.counters["client_retries"] < 50

    def test_breaker_short_circuits_dead_service(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, reset_timeout=30.0,
                                 clock=clock)
        client = ServeClient(f"127.0.0.1:{dead_port}", timeout=0.2,
                             policy=ClientPolicy(retries=0),
                             breaker=breaker)
        for _ in range(2):
            with pytest.raises(ConnectionError):
                client.request({"op": "ping"})
        assert breaker.state == "open"
        with pytest.raises(BreakerOpen) as exc_info:
            client.request({"op": "ping"})
        assert exc_info.value.retry_in == pytest.approx(30.0)
        assert breaker.counters["breaker_failures"] == 2  # no new connects
        clock.advance(31.0)
        with pytest.raises(ConnectionError):  # the half-open probe
            client.request({"op": "ping"})
        assert breaker.state == "open"
        assert breaker.counters["breaker_probes"] == 1


# -- server overload & shutdown ----------------------------------------------


def serve_scenario(scenario, resolver=None, config=None):
    async def main():
        server = AvfServer(
            config or ServeConfig(host="127.0.0.1", port=0),
            resolver=resolver)
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.stop()

    return asyncio.run(main())


async def ask(server, request, collect_events=None):
    from repro.serve.client import AsyncServeClient

    client = await AsyncServeClient().connect("127.0.0.1", server.port)
    try:
        return await client.request(dict(request), collect_events)
    finally:
        await client.close()


def request_for(seed: int) -> dict:
    return {"op": "avf", "profile": "crafty",
            "target_instructions": 700, "seed": seed}


class GatedResolver:
    """Blocks inside the compute thread until released; counts calls."""

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self.calls = []

    def __call__(self, query):
        self.calls.append(query.key)
        self.started.set()
        assert self.release.wait(10), "test deadlock: never released"
        return {"echo": query.seed}


class TestLoadShedding:
    def test_new_cold_keys_are_shed_past_the_bound(self):
        resolver = GatedResolver()
        config = ServeConfig(host="127.0.0.1", port=0, max_inflight=1,
                             retry_after=0.125)

        async def scenario(server):
            loop = asyncio.get_running_loop()
            first = asyncio.ensure_future(ask(server, request_for(1)))
            await loop.run_in_executor(None, resolver.started.wait, 10)
            # Bound hit: a *different* cold key is refused...
            with pytest.raises(ServeError) as shed:
                await ask(server, request_for(2))
            # ...but a coalesced join of the in-flight key is admitted,
            # and so is a health check.
            join = asyncio.ensure_future(ask(server, request_for(1)))
            await asyncio.sleep(0.05)
            health = await ask(server, {"op": "health"})
            resolver.release.set()
            results = await asyncio.gather(first, join)
            warm = await ask(server, request_for(1))  # warm during/after
            return shed.value, health, results, warm, dict(server.stats)

        shed, health, results, warm, stats = serve_scenario(
            scenario, resolver=resolver, config=config)
        assert shed.code == "overloaded"
        assert shed.retryable
        assert shed.retry_after == 0.125
        assert health["value"]["ready"] is False
        assert health["value"]["inflight"] == 1
        assert [r["value"] for r in results] == [{"echo": 1}, {"echo": 1}]
        assert warm["value"] == {"echo": 1}
        assert stats["serve_shed_requests"] == 1
        assert stats["serve_cold_computes"] == 1
        assert len(resolver.calls) == 1

    def test_shed_key_succeeds_once_load_clears(self):
        resolver = GatedResolver()
        config = ServeConfig(host="127.0.0.1", port=0, max_inflight=1)

        async def scenario(server):
            loop = asyncio.get_running_loop()
            first = asyncio.ensure_future(ask(server, request_for(1)))
            await loop.run_in_executor(None, resolver.started.wait, 10)
            with pytest.raises(ServeError):
                await ask(server, request_for(2))
            resolver.release.set()
            await first
            retried = await ask(server, request_for(2))
            return retried

        retried = serve_scenario(scenario, resolver=resolver, config=config)
        assert retried["value"] == {"echo": 2}


class TestComputeDeadline:
    def test_deadline_fails_request_but_not_computation(self):
        resolver = GatedResolver()

        async def scenario(server):
            loop = asyncio.get_running_loop()
            request = {**request_for(5), "deadline": 0.05}
            task = asyncio.ensure_future(ask(server, request))
            await loop.run_in_executor(None, resolver.started.wait, 10)
            with pytest.raises(ServeError) as exc_info:
                await task
            resolver.release.set()
            # The computation was never cancelled: it lands in the LRU
            # and the retry is warm, with no second resolver call.
            while True:
                final = await ask(server, request_for(5))
                if final["status"] == "warm":
                    break
                await asyncio.sleep(0.01)
            return exc_info.value, final, dict(server.stats)

        error, final, stats = serve_scenario(scenario, resolver=resolver)
        assert error.code == "deadline-exceeded"
        assert error.retryable
        assert final["value"] == {"echo": 5}
        assert stats["serve_deadline_expirations"] == 1
        assert stats["serve_cold_computes"] == 1
        assert len(resolver.calls) == 1

    def test_server_wide_deadline_from_config(self):
        resolver = GatedResolver()
        config = ServeConfig(host="127.0.0.1", port=0,
                             compute_deadline=0.05)

        async def scenario(server):
            with pytest.raises(ServeError) as exc_info:
                await ask(server, request_for(6))
            resolver.release.set()
            return exc_info.value

        error = serve_scenario(scenario, resolver=resolver, config=config)
        assert error.code == "deadline-exceeded"


class TestHealthAndDrain:
    def test_health_reports_ready(self):
        async def scenario(server):
            return await ask(server, {"op": "health"})

        health = serve_scenario(scenario, resolver=lambda q: {})
        value = health["value"]
        assert value["live"] is True
        assert value["ready"] is True
        assert value["draining"] is False
        assert value["max_inflight"] == ServeConfig().max_inflight

    def test_drain_answers_inflight_then_stops(self):
        resolver = GatedResolver()

        async def scenario(server):
            loop = asyncio.get_running_loop()
            pending = asyncio.ensure_future(ask(server, request_for(9)))
            await loop.run_in_executor(None, resolver.started.wait, 10)
            drain = asyncio.ensure_future(server.drain())
            await asyncio.sleep(0.05)
            assert server.draining
            # New queries are refused with a retryable error while the
            # in-flight one is still being answered.
            with pytest.raises((ServeError, ConnectionError)) as refusal:
                await ask(server, request_for(10))
            resolver.release.set()
            answered = await pending
            await drain
            await server.wait_stopped()
            return answered, refusal.value, dict(server.stats)

        answered, refusal, stats = serve_scenario(
            scenario, resolver=resolver)
        assert answered["value"] == {"echo": 9}
        if isinstance(refusal, ServeError):
            assert refusal.code == "draining"
            assert refusal.retryable
            assert stats["serve_drain_refusals"] == 1
        assert stats["serve_drains"] == 1
        assert stats["serve_drained_answers"] >= 1
        assert len(resolver.calls) == 1

    def test_drain_with_nothing_inflight_stops_immediately(self):
        async def scenario(server):
            await server.drain()
            await server.wait_stopped()
            return dict(server.stats)

        stats = serve_scenario(scenario, resolver=lambda q: {})
        assert stats["serve_drains"] == 1


class TestSigtermDrain:
    def test_repro_serve_drains_on_sigterm_with_exit_143(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env.pop("REPRO_SERVE_PORT", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            cwd=REPO_ROOT, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            line = proc.stdout.readline()
            assert "listening on" in line, line
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 143, out
        assert "draining" in out
        assert "[runtime:" in out  # the telemetry footer still prints


# -- degrade-to-local under a dead service ------------------------------------


class TestDegradeToLocal:
    def test_fifty_keys_pay_at_most_threshold_connects_bit_identically(
            self, monkeypatch):
        """Acceptance: service down, 50 distinct keys, the whole run pays
        ``breaker.threshold`` connection attempts (not 50, and not 100
        for get+put), and every report is byte-identical to a run with
        no service configured at all."""
        attempts = []
        real_connect = socket.create_connection

        def refused(address, *args, **kwargs):
            attempts.append(address)
            raise ConnectionRefusedError("service is down")

        monkeypatch.setattr(socket, "create_connection", refused)
        profile = get_profile("crafty")
        settings = [ExperimentSettings(target_instructions=1000, seed=s)
                    for s in range(50)]
        with use_runtime(service="127.0.0.1:1") as runtime:
            degraded = [canonical_dumps(encode_benchmark(
                run_benchmark(profile, s))) for s in settings]
            telemetry = dict(runtime.telemetry.counters)
        close_remote_stores()
        clear_caches()
        monkeypatch.setattr(socket, "create_connection", real_connect)
        with use_runtime():
            baseline = [canonical_dumps(encode_benchmark(
                run_benchmark(profile, s))) for s in settings]
        assert degraded == baseline
        assert len(attempts) == DEFAULT_BREAKER_THRESHOLD
        assert telemetry["remote_store_breaker_open"] == 1
        # 50 gets + 50 puts, minus the attempts that really dialled.
        assert telemetry["remote_store_short_circuits"] == \
            100 - DEFAULT_BREAKER_THRESHOLD
        assert telemetry["remote_store_errors"] == DEFAULT_BREAKER_THRESHOLD
        assert telemetry.get("remote_store_hits", 0) == 0

    def test_remote_store_breaker_recovers_when_service_returns(self):
        """Half-open probe against a *live* server closes the breaker and
        the store serves hits again."""

        async def main():
            server = AvfServer(ServeConfig(host="127.0.0.1", port=0),
                               resolver=lambda q: {})
            await server.start()
            return server

        # A real server, but the store first points at a dead port.
        clock = FakeClock()
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()

        with use_runtime():
            breaker = CircuitBreaker(threshold=1, reset_timeout=5.0,
                                     clock=clock)
            store = RemoteStore(f"127.0.0.1:{dead_port}", timeout=0.2,
                                breaker=breaker)
            from repro.runtime.cache import MISS

            key = "0" * 64
            assert store.get(key) is MISS
            assert breaker.state == "open"
            assert store.get(key) is MISS  # short-circuited, no dial
            assert breaker.counters["breaker_short_circuits"] == 1
            store.close()
