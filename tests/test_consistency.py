"""Cross-implementation consistency checks on generated workloads.

These tests pin down agreements between independent implementations of the
same semantics: the analytic PET coverage rule vs the PET mechanism inside
the π-bit tracker, predicated control in the executor vs the generator's
expectations, and trigger timing in the pipeline.
"""

import pytest

from repro.analysis.deadcode import DynClass
from repro.arch.executor import FunctionalSimulator
from repro.due.pi_bit import PiBitTracker
from repro.due.tracking import TrackingLevel
from repro.isa.opcodes import Opcode
from repro.isa.program import FunctionInfo, Program
from tests.helpers import I, program


class TestPetTrackerAgreesWithDistances:
    """PiBitTracker at PET level must suppress exactly the FDD faults whose
    overwrite distance fits the buffer (the analytic Figure 3 rule)."""

    @pytest.mark.parametrize("pet_entries", [32, 128, 512])
    def test_agreement_on_workload(self, small_execution, small_deadness,
                                   pet_entries):
        tracker = PiBitTracker(small_execution.trace, TrackingLevel.PET,
                               pet_entries=pet_entries)
        checked = 0
        for seq, cls in enumerate(small_deadness.classes):
            if cls is not DynClass.FDD_REG:
                continue
            distance = small_deadness.overwrite_distance.get(seq)
            decision = tracker.process_fault(seq)
            expected_suppressed = (distance is not None
                                   and distance <= pet_entries)
            assert (not decision.signaled) == expected_suppressed, (
                f"seq {seq}: distance {distance}, entries {pet_entries}, "
                f"tracker said {decision.reason}")
            checked += 1
            if checked >= 25:
                break
        assert checked > 5


class TestPredicatedControl:
    def test_predicated_false_call_does_not_enter(self):
        code = [
            I(Opcode.CALL, qp=9, imm=3),  # p9 false: no call
            I(Opcode.OUT, r2=0),
            I(Opcode.HALT),
            I(Opcode.MOVI, r1=8, imm=1),  # leaf (never entered)
            I(Opcode.RET),
        ]
        result = FunctionalSimulator(
            Program(code, [FunctionInfo("leaf", 3, 5)], entry=0)).run()
        assert result.clean
        assert len(result.invocations) == 1  # only main

    def test_predicated_true_call_enters(self):
        code = [
            I(Opcode.CMP_EQ, r1=9, r2=0, r3=0),  # p9 <- true
            I(Opcode.CALL, qp=9, imm=3),
            I(Opcode.OUT, r2=8),
            I(Opcode.HALT),
            I(Opcode.MOVI, r1=8, imm=7),  # leaf
            I(Opcode.RET),
        ]
        result = FunctionalSimulator(
            Program(code, [FunctionInfo("leaf", 4, 6)], entry=0)).run()
        assert result.outputs == (7,)
        assert len(result.invocations) == 2


class TestTriggerTiming:
    def test_l0_trigger_detects_at_l0_latency(self, small_profile):
        """The squash must fire ``l0_latency`` cycles after the missing
        load issues — verified via the interval record of the victims."""
        from repro.pipeline.config import MachineConfig, SquashConfig, Trigger
        from repro.pipeline.core import PipelineSimulator
        from repro.pipeline.iq import OccupantKind
        from repro.workloads.codegen import synthesize

        prog = synthesize(small_profile, 6000, seed=77)
        execution = FunctionalSimulator(prog).run()
        machine = MachineConfig(
            fetch_bubble_prob=0.0,
            squash=SquashConfig(trigger=Trigger.L0_MISS))
        result = PipelineSimulator(prog, execution.trace, machine,
                                   seed=77).run()
        assert result.stats["squash_events"] > 0
        # Victims deallocate at the squash cycle; the same seq commits
        # later via its refetched instance.
        squashed = [i for i in result.intervals
                    if i.kind is OccupantKind.SQUASHED]
        committed = {i.seq: i for i in result.intervals
                     if i.kind is OccupantKind.COMMITTED}
        for interval in squashed[:20]:
            again = committed[interval.seq]
            assert again.alloc_cycle >= interval.dealloc_cycle


class TestWrongPathContent:
    def test_wrong_path_instructions_come_from_static_code(
            self, small_program, small_pipeline):
        """Wrong-path occupants must be real decoded instructions from the
        program image (or boundary NOPs), not placeholders."""
        from repro.pipeline.iq import OccupantKind

        encodings = {i.encode() for i in small_program.instructions}
        nop_encoding = I(Opcode.NOP).encode()
        checked = 0
        for interval in small_pipeline.intervals:
            if interval.kind is not OccupantKind.WRONG_PATH:
                continue
            assert interval.instruction.encode() in encodings \
                or interval.instruction.encode() == nop_encoding
            checked += 1
            if checked >= 50:
                break
        assert checked > 10
