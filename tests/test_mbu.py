"""Multi-bit upset tier: golden differentials, stream replay, ECC soundness.

The MBU tier extends three contracts at once, and each gets its own
proof here:

* golden — for every ``TrackingLevel`` x ``EccScheme`` combination
  (plus the unprotected multi-bit queue), a pinned-seed campaign
  classified through the batched path must produce the same tallies,
  tracker misses, burst counters, confidence intervals, and oracle
  accounting as the scalar per-trial loop, on both the plain and the
  squash-heavy pipeline — mirroring ``test_strike_batching.py``;
* stream equivalence — hypothesis properties that the batched drawer
  replays the scalar ``sample`` + ``extend_strike`` draw sequence
  bit-for-bit for any seed, preset, and ``--jobs N`` sharding, and that
  single-bit campaigns draw zero extra randomness;
* ECC soundness — the ``classify_burst`` action table checked against
  an independent brute-force bit-enumeration reference for *every*
  mask of weight <= 3, plus the pattern-code/canonical-mask bijection
  the vectorised classifier relies on;
* lattice endpoints — ``scheme=PARITY`` / ``scheme=SEC`` reproduce the
  legacy ``parity`` / ``ecc`` booleans verdict-for-verdict on identical
  strikes;
* fallback parity — the pure-Python path (NumPy absent) reproduces the
  NumPy batches and tallies column-for-column, mask columns included.

Plus the FIT projection algebra, the design-space sweep exhibit's
byte-stability across worker counts, telemetry/CLI wiring, and the
attributable empty-entry-space diagnostic.
"""

import itertools
from collections import Counter
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.faults.batch as batch_mod
from repro.avf.fit import (
    DEFAULT_STRUCTURE_BITS,
    ENV_MULTIPLIER,
    ENVIRONMENTS,
    FIT_PER_MEGABIT,
    NODES,
    action_fractions,
    fit_matrix,
    rank_schemes,
    raw_structure_fit,
    scheme_fit_cells,
)
from repro.cli import build_parser, main
from repro.due.outcomes import FaultOutcome
from repro.due.tracking import (
    CHECK_BITS,
    SCHEME_LADDER,
    BurstAction,
    EccScheme,
    TrackingLevel,
    classify_burst,
)
from repro.experiments import fitsweep
from repro.experiments.common import ExperimentSettings, clear_caches
from repro.faults.batch import BatchClassifier, StrikeBatch, draw_strike_batch
from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    run_campaign,
    run_trial_block,
    trial_seed,
)
from repro.faults.injector import StrikeEvaluator
from repro.faults.mbu import (
    CANONICAL_MASKS,
    PMF_RESOLUTION,
    PRESETS,
    BurstPattern,
    MbuPreset,
    draw_second_bit,
    extend_strike,
    get_preset,
    mask_for,
    representative_bit,
)
from repro.faults.model import Strike, StrikeModel, empty_space_message
from repro.faults.oracle import EffectOracle
from repro.isa.encoding import ENCODING_BITS, Field, field_bits
from repro.runtime.context import get_runtime, reset_runtime, use_runtime
from repro.runtime.engine import shard_trials
from repro.runtime.telemetry import Telemetry
from repro.util.rng import DeterministicRng

PRESET_NAMES = tuple(sorted(PRESETS))


def _mbu_configs():
    """Every TrackingLevel x EccScheme, plus the unprotected MBU queue."""
    configs = [CampaignConfig(trials=40, seed=77, scheme=scheme,
                              tracking=level, mbu_preset="terrestrial")
               for scheme in SCHEME_LADDER for level in TrackingLevel]
    configs.append(CampaignConfig(trials=40, seed=77,
                                  mbu_preset="terrestrial"))
    return configs


def _config_id(config):
    scheme = "none" if config.scheme is None else config.scheme.value
    return f"{scheme}-{config.tracking.name.lower()}"


def _evaluator(prog, baseline, config, **kwargs):
    return StrikeEvaluator(
        prog, baseline, parity=config.parity, tracking=config.tracking,
        pet_entries=config.pet_entries, ecc=config.ecc,
        scheme=config.scheme, **kwargs)


def _scalar_block(prog, baseline, pipeline, config):
    evaluator = _evaluator(prog, baseline, config)
    counts, misses = run_trial_block(prog, baseline, pipeline, config,
                                     0, config.trials, evaluator=evaluator)
    return counts, misses, evaluator


def _batched_block(prog, baseline, pipeline, config, **eval_kwargs):
    evaluator = _evaluator(prog, baseline, config, **eval_kwargs)
    batch = draw_strike_batch(pipeline, config, prog.name, 0, config.trials)
    classifier = BatchClassifier(evaluator, pipeline)
    counts, misses = run_trial_block(prog, baseline, pipeline, config,
                                     0, config.trials, evaluator=evaluator,
                                     strikes=batch, classifier=classifier)
    return counts, misses, evaluator, classifier


class TestGoldenDifferential:
    """Batched MBU campaigns are bit-identical to the scalar loop for
    every protection point of the lattice."""

    @pytest.mark.parametrize("config", _mbu_configs(), ids=_config_id)
    def test_batched_matches_scalar(self, config, small_program,
                                    small_execution, small_pipeline):
        sc, sm, s_eval = _scalar_block(small_program, small_execution,
                                       small_pipeline, config)
        bc, bm, b_eval, classifier = _batched_block(
            small_program, small_execution, small_pipeline, config)
        assert bc == sc
        assert bm == sm
        # Burst accounting (multi-bit draws + decoder actions) and
        # oracle accounting must be indistinguishable.
        assert b_eval.burst_counters() == s_eval.burst_counters()
        assert b_eval.oracle.counters() == s_eval.oracle.counters()
        assert b_eval.oracle.new_entries() == s_eval.oracle.new_entries()
        scalar_result = CampaignResult(config=config, counts=Counter(sc),
                                       tracker_misses=sm)
        batched_result = CampaignResult(config=config, counts=Counter(bc),
                                        tracker_misses=bm)
        for name in ("sdc_avf_estimate", "due_avf_estimate",
                     "corrected_estimate", "residual_uncorrectable_estimate"):
            assert (getattr(batched_result, name)
                    == getattr(scalar_result, name))
        for outcome in FaultOutcome:
            assert (batched_result.rate_confidence(outcome)
                    == scalar_result.rate_confidence(outcome))
        stats = classifier.counters()
        assert stats["batch_trials"] == config.trials
        assert (stats["batch_vector_kills"] + stats["batch_scalar_kills"]
                + stats["batch_reexecutions"]) == config.trials

    @pytest.mark.parametrize("config", [
        CampaignConfig(trials=40, seed=77, scheme=scheme,
                       tracking=TrackingLevel.MEM_PI,
                       mbu_preset="space")
        for scheme in SCHEME_LADDER
    ] + [CampaignConfig(trials=40, seed=77, mbu_preset="space")],
        ids=[s.value for s in SCHEME_LADDER] + ["none"])
    def test_batched_matches_scalar_on_squash_pipeline(
            self, config, small_program, small_execution, squash_pipeline):
        """Squash-heavy pipelines exercise the wrong-path DETECT/ESCAPE
        branches the vector pass classifies without the oracle."""
        sc, sm, s_eval = _scalar_block(small_program, small_execution,
                                       squash_pipeline, config)
        bc, bm, b_eval, _ = _batched_block(
            small_program, small_execution, squash_pipeline, config)
        assert (bc, bm) == (sc, sm)
        assert b_eval.burst_counters() == s_eval.burst_counters()
        assert b_eval.oracle.counters() == s_eval.oracle.counters()

    def test_campaign_actually_draws_bursts(self, small_program,
                                            small_execution, small_pipeline):
        """The differential proves nothing if no multi-bit burst was
        drawn; under the space preset (45% bursts) 40 trials without one
        would be a broken sampler, not luck."""
        config = CampaignConfig(trials=40, seed=77, scheme=EccScheme.TAEC,
                                mbu_preset="space")
        _, _, evaluator = _scalar_block(small_program, small_execution,
                                        small_pipeline, config)
        counters = evaluator.burst_counters()
        assert counters["mbu_multi_bit"] > 0
        assert (counters["ecc_corrected"] + counters["ecc_detected"]
                + counters["ecc_escaped"]) > 0

    def test_unprotected_mbu_keeps_decoder_counters_silent(
            self, small_program, small_execution, small_pipeline):
        """No scheme, only bursts: the multi-bit draw counter ticks but
        no decoder action can be claimed."""
        config = CampaignConfig(trials=40, seed=77, mbu_preset="space")
        _, _, evaluator = _scalar_block(small_program, small_execution,
                                        small_pipeline, config)
        counters = evaluator.burst_counters()
        assert counters["mbu_multi_bit"] > 0
        assert counters["ecc_corrected"] == 0
        assert counters["ecc_detected"] == 0
        assert counters["ecc_escaped"] == 0

    def test_run_campaign_sharded_matches_serial_scalar(
            self, small_program, small_execution, small_pipeline):
        config = CampaignConfig(trials=48, seed=21, scheme=EccScheme.SEC_DED,
                                tracking=TrackingLevel.REG_PI,
                                mbu_preset="terrestrial")
        with use_runtime(jobs=3):
            sharded = run_campaign(small_program, small_execution,
                                   small_pipeline, config)
        with use_runtime(batch_strikes=False):
            scalar = run_campaign(small_program, small_execution,
                                  small_pipeline, config)
        assert sharded.counts == scalar.counts
        assert sharded.tracker_misses == scalar.tracker_misses


class TestBurstStreamEquivalence:
    """The batched drawer replays the scalar sample+extend draw stream."""

    @given(seed=st.integers(min_value=0, max_value=2 ** 16),
           jobs=st.integers(min_value=1, max_value=8),
           preset_name=st.sampled_from(PRESET_NAMES))
    @settings(max_examples=8, deadline=None)
    def test_burst_stream_equivalence(self, seed, jobs, preset_name,
                                      small_program, small_pipeline):
        config = CampaignConfig(trials=36, seed=seed, mbu_preset=preset_name)
        full = draw_strike_batch(small_pipeline, config,
                                 small_program.name, 0, config.trials)
        assert full.mask is not None and full.pattern is not None
        sampler = StrikeModel(small_pipeline)
        preset = get_preset(preset_name)
        for index, (row, cycle, bit) in enumerate(full.triples()):
            rng = DeterministicRng(
                trial_seed(config, small_program.name, index))
            strike = extend_strike(sampler.sample(rng), rng, preset)
            assert bit == strike.bit
            assert full.mask[index] == strike.mask
            pattern = BurstPattern(full.pattern[index])
            if pattern is BurstPattern.SINGLE:
                assert full.mask[index] == 0
            else:
                assert full.mask[index] != 0
        # Any --jobs N sharding: a shard's independent draw equals the
        # corresponding slice of the whole-campaign batch, mask and
        # pattern columns included.
        for block in shard_trials(config.trials, jobs):
            shard = draw_strike_batch(small_pipeline, config,
                                      small_program.name,
                                      block.start, block.stop)
            assert shard == full.slice(block.start, block.stop)

    @given(seed=st.integers(min_value=0, max_value=2 ** 16))
    @settings(max_examples=8, deadline=None)
    def test_single_bit_stream_untouched_by_mbu_tier(self, seed,
                                                     small_program,
                                                     small_pipeline):
        """MBU-off batches carry no extra columns and draw the identical
        (interval, cycle, bit) stream as an MBU campaign — the pattern
        draw rides strictly *after* the sampler's draws."""
        plain = CampaignConfig(trials=24, seed=seed)
        mbu = CampaignConfig(trials=24, seed=seed, mbu_preset="space")
        plain_batch = draw_strike_batch(small_pipeline, plain,
                                        small_program.name, 0, 24)
        mbu_batch = draw_strike_batch(small_pipeline, mbu,
                                      small_program.name, 0, 24)
        assert plain_batch.mask is None and plain_batch.pattern is None
        assert plain_batch.triples() == mbu_batch.triples()

    def test_scheme_sees_the_same_strike_stream(self, small_program,
                                                small_pipeline):
        """``trial_seed`` excludes the scheme, so every lattice point of
        a design-space sweep compares the identical bursts."""
        batches = [
            draw_strike_batch(
                small_pipeline,
                CampaignConfig(trials=30, seed=4, scheme=scheme,
                               mbu_preset="terrestrial"),
                small_program.name, 0, 30)
            for scheme in list(SCHEME_LADDER) + [None]
        ]
        assert all(batch == batches[0] for batch in batches[1:])

    def test_drawn_masks_have_the_pattern_shape(self, small_program,
                                                small_pipeline):
        """Pattern codes and mask geometry stay in bijection: adjacent
        runs clamped in-word, random doubles at least two apart."""
        config = CampaignConfig(trials=400, seed=9, mbu_preset="space")
        batch = draw_strike_batch(small_pipeline, config,
                                  small_program.name, 0, 400)
        seen = Counter()
        for index, (_, _, bit) in enumerate(batch.triples()):
            pattern = BurstPattern(batch.pattern[index])
            mask = batch.mask[index]
            seen[pattern] += 1
            if pattern is BurstPattern.SINGLE:
                assert mask == 0
                continue
            assert mask >> ENCODING_BITS == 0
            assert mask >> bit & 1, "the struck bit is part of its burst"
            if pattern is BurstPattern.RANDOM_DOUBLE:
                others = [b for b in range(ENCODING_BITS)
                          if mask >> b & 1 and b != bit]
                assert len(others) == 1 and abs(others[0] - bit) >= 2
            else:
                width = (2 if pattern is BurstPattern.DOUBLE_ADJACENT
                         else 3)
                start = min(bit, ENCODING_BITS - width)
                assert mask == ((1 << width) - 1) << start
        # 400 space-preset trials must exercise every pattern shape.
        assert set(seen) == set(BurstPattern)


def _reference_action(scheme, bits):
    """Independent brute-force reference for the decoder action table.

    ``bits`` is the enumerated bit-position list of the error mask;
    weight and adjacency are recomputed from scratch here (not via
    ``_burst_shape``) so the production table is checked against a
    second, independently written encoding of each code's distance.
    """
    weight = len(bits)
    adjacent = sorted(bits) == list(range(min(bits), min(bits) + weight))
    if scheme is EccScheme.PARITY:
        return (BurstAction.DETECT if weight % 2 == 1
                else BurstAction.ESCAPE)
    if scheme is EccScheme.SEC:
        return (BurstAction.CORRECT if weight == 1
                else BurstAction.ESCAPE)
    if scheme is EccScheme.SEC_DED:
        if weight == 1:
            return BurstAction.CORRECT
        if weight == 2:
            return BurstAction.DETECT
        return BurstAction.ESCAPE
    if scheme is EccScheme.TAEC:
        if weight == 1 or (adjacent and weight in (2, 3)):
            return BurstAction.CORRECT
        if weight == 2:
            return BurstAction.DETECT
        return BurstAction.ESCAPE
    assert scheme is EccScheme.DEC
    if weight in (1, 2):
        return BurstAction.CORRECT
    if weight == 3:
        return BurstAction.DETECT
    return BurstAction.ESCAPE


class TestEccSoundness:
    """The classify_burst table against brute-force bit enumeration."""

    @pytest.mark.parametrize("scheme", SCHEME_LADDER,
                             ids=[s.value for s in SCHEME_LADDER])
    def test_exhaustive_weight_le3_sweep(self, scheme):
        """Every mask of weight 1..3 over the 41-bit word (11,521 masks
        per scheme) classifies exactly as the independent reference."""
        checked = 0
        for weight in (1, 2, 3):
            for bits in itertools.combinations(range(ENCODING_BITS), weight):
                mask = 0
                for bit in bits:
                    mask |= 1 << bit
                assert (classify_burst(scheme, mask)
                        == _reference_action(scheme, list(bits))), \
                    (scheme, bits)
                checked += 1
        assert checked == 41 + 820 + 10660

    @given(mask=st.integers(min_value=1, max_value=(1 << ENCODING_BITS) - 1),
           scheme=st.sampled_from(SCHEME_LADDER))
    @settings(max_examples=400, deadline=None)
    def test_classification_is_total(self, mask, scheme):
        """Beyond anything the samplers draw (weights 4..41), the table
        still matches the reference — the decoder never crashes on a
        pathological burst."""
        bits = [b for b in range(ENCODING_BITS) if mask >> b & 1]
        assert classify_burst(scheme, mask) == _reference_action(scheme, bits)

    @pytest.mark.parametrize("scheme", SCHEME_LADDER,
                             ids=[s.value for s in SCHEME_LADDER])
    def test_canonical_mask_stands_for_every_drawable_mask(self, scheme):
        """The vectorised classifier acts on pattern codes via the
        canonical masks; this is sound iff every mask ``mask_for`` can
        produce classifies identically to its pattern's canonical form."""
        for bit in range(ENCODING_BITS):
            for pattern in (BurstPattern.DOUBLE_ADJACENT,
                            BurstPattern.TRIPLE_ADJACENT):
                drawn = mask_for(pattern, bit)
                assert (classify_burst(scheme, drawn)
                        == classify_burst(scheme, CANONICAL_MASKS[pattern]))
            for second in range(ENCODING_BITS):
                if abs(second - bit) < 2:
                    continue
                drawn = mask_for(BurstPattern.RANDOM_DOUBLE, bit, second)
                canonical = CANONICAL_MASKS[BurstPattern.RANDOM_DOUBLE]
                assert (classify_burst(scheme, drawn)
                        == classify_burst(scheme, canonical))
        # SINGLE draws no mask; the single-bit flip is its own canonical.
        assert (classify_burst(scheme, 1)
                == classify_burst(scheme,
                                  CANONICAL_MASKS[BurstPattern.SINGLE]))

    def test_empty_mask_rejected(self):
        for bad in (0, -1):
            with pytest.raises(ValueError):
                classify_burst(EccScheme.SEC, bad)
            with pytest.raises(ValueError):
                representative_bit(bad)

    def test_check_bit_overhead_is_monotone_in_strength(self):
        """The lattice order is a real cost order: each stronger scheme
        spends at least as many check bits."""
        costs = [CHECK_BITS[scheme] for scheme in SCHEME_LADDER]
        assert costs == sorted(costs)


class TestLatticeEndpoints:
    """scheme=PARITY / scheme=SEC reproduce the legacy booleans."""

    @pytest.mark.parametrize("tracking", list(TrackingLevel),
                             ids=[t.name.lower() for t in TrackingLevel])
    def test_scheme_parity_matches_legacy_parity(self, tracking,
                                                 small_program,
                                                 small_execution,
                                                 small_pipeline):
        """On identical single-bit strikes (campaign seeds fork on the
        ``parity`` flag, so the comparison must be evaluator-level), the
        PARITY lattice point is verdict-for-verdict the legacy path."""
        legacy = StrikeEvaluator(small_program, small_execution,
                                 parity=True, tracking=tracking)
        lattice = StrikeEvaluator(small_program, small_execution,
                                  scheme=EccScheme.PARITY, tracking=tracking)
        sampler = StrikeModel(small_pipeline)
        rng = DeterministicRng(1234)
        for _ in range(120):
            strike = sampler.sample(rng)
            assert lattice.evaluate(strike) == legacy.evaluate(strike)

    def test_scheme_sec_matches_legacy_ecc(self, small_program,
                                           small_execution, small_pipeline):
        legacy = StrikeEvaluator(small_program, small_execution, ecc=True)
        lattice = StrikeEvaluator(small_program, small_execution,
                                  scheme=EccScheme.SEC)
        sampler = StrikeModel(small_pipeline)
        rng = DeterministicRng(99)
        for _ in range(120):
            strike = sampler.sample(rng)
            assert lattice.evaluate(strike) == legacy.evaluate(strike)

    def test_scheme_excludes_legacy_flags(self, small_program,
                                          small_execution):
        with pytest.raises(ValueError, match="lattice"):
            StrikeEvaluator(small_program, small_execution,
                            parity=True, scheme=EccScheme.PARITY)
        with pytest.raises(ValueError, match="lattice"):
            StrikeEvaluator(small_program, small_execution,
                            ecc=True, scheme=EccScheme.SEC)


class TestRepresentativeBit:
    def test_single_bit_mask_is_its_own_representative(self):
        for bit in range(ENCODING_BITS):
            assert representative_bit(1 << bit) == bit

    def test_opcode_intersection_wins(self):
        opcode_bits = sorted(field_bits(Field.OPCODE))
        non_opcode = [bit for bit in range(ENCODING_BITS)
                      if bit not in opcode_bits]
        mask = (1 << opcode_bits[1]) | (1 << non_opcode[0])
        assert representative_bit(mask) == opcode_bits[1]
        # Without an opcode bit, the lowest set bit stands in.
        mask = (1 << non_opcode[0]) | (1 << non_opcode[3])
        assert representative_bit(mask) == min(non_opcode[0], non_opcode[3])


class TestMaskOracleSoundness:
    """Static burst classification is a sound filter for re-execution."""

    def test_kill_mask_subset_iff_static_burst_kill(self, small_program,
                                                    small_execution):
        """The batch path's subset test against the per-bit kill masks
        decides exactly like ``classify_static_mask`` for every burst
        shape at a stride of committed instructions."""
        from repro.faults.batch import build_kill_masks

        oracle = EffectOracle(small_program, small_execution)
        masks = build_kill_masks(small_execution, oracle.deadness)
        bursts = [mask_for(BurstPattern.DOUBLE_ADJACENT, bit)
                  for bit in range(ENCODING_BITS)]
        bursts += [mask_for(BurstPattern.TRIPLE_ADJACENT, bit)
                   for bit in range(ENCODING_BITS)]
        bursts += [mask_for(BurstPattern.RANDOM_DOUBLE, bit, second)
                   for bit in range(0, ENCODING_BITS, 5)
                   for second in range(0, ENCODING_BITS, 7)
                   if abs(second - bit) >= 2]
        checked = killed = 0
        for seq in range(0, len(small_execution.trace), 97):
            for burst in bursts:
                subset = (masks[seq] & burst) == burst
                static = oracle.classify_static_mask(seq, burst)
                assert subset == (static is not None), (seq, bin(burst))
                checked += 1
                killed += static is not None
        assert checked > 0 and killed > 0

    def test_static_mask_filter_is_sound(self, small_program,
                                         small_execution, small_pipeline):
        """Filtered and unfiltered evaluators agree on every burst
        outcome: whatever the conjunction filters would also have been
        benign under re-execution."""
        config = CampaignConfig(trials=150, seed=5, mbu_preset="space")
        filtered = StrikeEvaluator(small_program, small_execution)
        unfiltered = StrikeEvaluator(small_program, small_execution,
                                     static_filter=False)
        sampler = StrikeModel(small_pipeline)
        preset = get_preset("space")
        for index in range(config.trials):
            rng = DeterministicRng(
                trial_seed(config, small_program.name, index))
            strike = extend_strike(sampler.sample(rng), rng, preset)
            assert (filtered.evaluate(strike).outcome
                    == unfiltered.evaluate(strike).outcome)
        assert filtered.oracle.static_kills > 0
        assert unfiltered.oracle.static_kills == 0


class TestFallbackParity:
    """The pure-Python drawer/classifier path is exercised and identical."""

    @pytest.mark.parametrize("config", [
        CampaignConfig(trials=40, seed=13, scheme=EccScheme.TAEC,
                       tracking=TrackingLevel.PI_COMMIT,
                       mbu_preset="space"),
        CampaignConfig(trials=40, seed=13, scheme=EccScheme.SEC_DED,
                       mbu_preset="terrestrial"),
        CampaignConfig(trials=40, seed=13, mbu_preset="avionics"),
    ], ids=["taec-pi-commit", "sec-ded", "unprotected"])
    def test_python_fallback_matches_numpy(self, monkeypatch, config,
                                           small_program, small_execution,
                                           small_pipeline):
        with_np = _batched_block(small_program, small_execution,
                                 small_pipeline, config)
        numpy_batch = draw_strike_batch(small_pipeline, config,
                                        small_program.name, 0,
                                        config.trials)
        monkeypatch.setattr(batch_mod, "_np", None)
        fallback_batch = draw_strike_batch(small_pipeline, config,
                                           small_program.name, 0,
                                           config.trials)
        assert fallback_batch == numpy_batch
        without_np = _batched_block(small_program, small_execution,
                                    small_pipeline, config)
        assert without_np[0] == with_np[0]
        assert without_np[1] == with_np[1]
        assert (without_np[2].burst_counters()
                == with_np[2].burst_counters())
        assert (without_np[2].oracle.counters()
                == with_np[2].oracle.counters())
        assert without_np[3].counters() == with_np[3].counters()


class TestStrikeBatchMbuColumns:
    def test_mask_and_pattern_come_as_a_pair(self):
        with pytest.raises(ValueError):
            StrikeBatch(0, 2, [1, 1], [0, 0], [3, 4], mask=[0, 3])
        with pytest.raises(ValueError):
            StrikeBatch(0, 2, [1, 1], [0, 0], [3, 4], pattern=[0, 1])

    def test_slice_carries_the_burst_columns(self, small_program,
                                             small_pipeline):
        config = CampaignConfig(trials=20, seed=1, mbu_preset="space")
        batch = draw_strike_batch(small_pipeline, config,
                                  small_program.name, 0, 20)
        part = batch.slice(5, 12)
        assert list(part.mask) == list(batch.mask[5:12])
        assert list(part.pattern) == list(batch.pattern[5:12])
        assert part == batch.slice(5, 12)
        assert part != batch

    def test_mbu_batch_differs_from_plain_batch(self, small_program,
                                                small_pipeline):
        plain = draw_strike_batch(
            small_pipeline, CampaignConfig(trials=10, seed=1),
            small_program.name, 0, 10)
        mbu = draw_strike_batch(
            small_pipeline,
            CampaignConfig(trials=10, seed=1, mbu_preset="space"),
            small_program.name, 0, 10)
        assert plain != mbu


class TestEmptySpaceDiagnostic:
    """The degenerate-geometry error is attributable to its workload."""

    def test_message_carries_the_label(self, small_pipeline):
        empty = replace(small_pipeline, cycles=0, intervals=[])
        message = empty_space_message(empty, "crafty/ooo-l0")
        assert "empty entry-cycle space" in message
        assert "[crafty/ooo-l0]" in message
        assert f"{empty.iq_entries} entries x 0 cycles" in message
        # Label-less call sites (direct StrikeModel construction) keep
        # the legacy unlabelled message.
        assert "[" not in empty_space_message(empty)

    def test_strike_model_raises_with_label(self, small_pipeline):
        empty = replace(small_pipeline, cycles=0, intervals=[])
        with pytest.raises(ValueError, match=r"\[mcf-quarantine\]"):
            StrikeModel(empty, label="mcf-quarantine")

    def test_batched_drawer_names_the_program(self, small_pipeline):
        empty = replace(small_pipeline, cycles=0, intervals=[])
        config = CampaignConfig(trials=5, seed=1)
        with pytest.raises(ValueError, match=r"\[progname\]"):
            draw_strike_batch(empty, config, "progname", 0, 5)


class TestPresetAndConfigValidation:
    def test_preset_weights_must_sum_to_resolution(self):
        with pytest.raises(ValueError, match="sum"):
            MbuPreset("broken", (1, 2, 3, 4))
        with pytest.raises(ValueError, match="non-negative"):
            MbuPreset("broken", (-1, 1, PMF_RESOLUTION, 0))
        with pytest.raises(ValueError, match="one weight per"):
            MbuPreset("broken", (PMF_RESOLUTION, 0, 0))

    def test_builtin_presets_are_valid_pmfs(self):
        for name, preset in PRESETS.items():
            assert preset.name == name
            assert sum(preset.weights) == PMF_RESOLUTION
            assert sum(preset.probability(p)
                       for p in BurstPattern) == pytest.approx(1.0)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown MBU preset"):
            get_preset("lunar")
        with pytest.raises(ValueError, match="unknown MBU preset"):
            CampaignConfig(trials=5, seed=1, mbu_preset="lunar")

    def test_scheme_excludes_legacy_booleans(self):
        with pytest.raises(ValueError, match="lattice"):
            CampaignConfig(trials=5, seed=1, parity=True,
                           scheme=EccScheme.PARITY)
        with pytest.raises(ValueError, match="lattice"):
            CampaignConfig(trials=5, seed=1, ecc=True,
                           scheme=EccScheme.SEC)

    def test_mbu_preset_excludes_single_bit_booleans(self):
        with pytest.raises(ValueError, match="single-bit"):
            CampaignConfig(trials=5, seed=1, parity=True,
                           mbu_preset="terrestrial")
        with pytest.raises(ValueError, match="single-bit"):
            CampaignConfig(trials=5, seed=1, ecc=True,
                           mbu_preset="terrestrial")
        # Unprotected MBU and scheme-protected MBU are both legal.
        CampaignConfig(trials=5, seed=1, mbu_preset="terrestrial")
        CampaignConfig(trials=5, seed=1, mbu_preset="terrestrial",
                       scheme=EccScheme.DEC)

    def test_random_double_requires_second_bit(self):
        with pytest.raises(ValueError, match="second bit"):
            mask_for(BurstPattern.RANDOM_DOUBLE, 3)

    def test_second_bit_never_adjacent(self):
        rng = DeterministicRng(7)
        for bit in (0, 20, 40):
            for _ in range(50):
                assert abs(draw_second_bit(rng, bit) - bit) >= 2

    def test_extend_strike_single_keeps_the_strike(self):
        single = MbuPreset("single-only",
                           (PMF_RESOLUTION, 0, 0, 0))
        strike = Strike(interval=None, cycle=0, bit=7)
        extended = extend_strike(strike, DeterministicRng(1), single)
        assert extended is strike
        assert extended.mask == 0
        assert extended.burst_mask == 1 << 7


class TestFitProjection:
    def test_raw_structure_fit_composes_node_size_environment(self):
        assert raw_structure_fit("28nm", bits=1_000_000) == 74.0
        assert raw_structure_fit("16nm", bits=2_000_000,
                                 environment="avionics") \
            == pytest.approx(5.0 * 2.0 * 300.0)
        assert raw_structure_fit("7nm", bits=DEFAULT_STRUCTURE_BITS,
                                 environment="space") \
            == pytest.approx(0.4 * (64 * 41 / 1e6) * 50_000.0)

    def test_raw_structure_fit_validates_inputs(self):
        with pytest.raises(ValueError, match="unknown technology node"):
            raw_structure_fit("3nm")
        with pytest.raises(ValueError, match="unknown environment"):
            raw_structure_fit("28nm", environment="submarine")
        with pytest.raises(ValueError, match="positive"):
            raw_structure_fit("28nm", bits=0)

    def test_fit_matrix_order_and_values(self):
        cells = fit_matrix(0.25, 0.5, bits=1_000_000)
        assert [(c.node, c.environment) for c in cells] \
            == [(n, e) for n in NODES for e in ENVIRONMENTS]
        for cell in cells:
            raw = (FIT_PER_MEGABIT[cell.node]
                   * ENV_MULTIPLIER[cell.environment])
            assert cell.sdc_fit == pytest.approx(raw * 0.25)
            assert cell.due_fit == pytest.approx(raw * 0.5)
            assert cell.total_fit == pytest.approx(raw * 0.75)
            assert cell.mttf_years > 0

    def test_fit_matrix_validates_avfs(self):
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError, match="AVF"):
                fit_matrix(bad, 0.0)
            with pytest.raises(ValueError, match="AVF"):
                fit_matrix(0.0, bad)

    def test_zero_fit_means_infinite_mttf(self):
        cells = fit_matrix(0.0, 0.0)
        assert all(cell.total_fit == 0.0 for cell in cells)
        assert all(cell.mttf_years == float("inf") for cell in cells)

    def test_mttf_consistent_with_mitf_module(self):
        from repro.avf.mitf import mttf_years_from_fit

        cell = fit_matrix(0.1, 0.2, bits=1_000_000)[0]
        assert cell.mttf_years == pytest.approx(
            mttf_years_from_fit(cell.total_fit))

    def test_action_fractions_match_hand_computation(self):
        terrestrial = get_preset("terrestrial")
        unprotected = action_fractions(None, terrestrial)
        assert unprotected[BurstAction.ESCAPE] == pytest.approx(1.0)
        assert unprotected[BurstAction.CORRECT] == 0.0
        sec = action_fractions(EccScheme.SEC, terrestrial)
        assert sec[BurstAction.CORRECT] == pytest.approx(0.85)
        assert sec[BurstAction.ESCAPE] == pytest.approx(0.15)
        assert sec[BurstAction.DETECT] == 0.0
        taec = action_fractions(EccScheme.TAEC, terrestrial)
        assert taec[BurstAction.CORRECT] == pytest.approx(0.99)
        assert taec[BurstAction.DETECT] == pytest.approx(0.01)
        assert taec[BurstAction.ESCAPE] == pytest.approx(0.0)

    @pytest.mark.parametrize("preset_name", PRESET_NAMES)
    def test_action_fractions_are_a_distribution(self, preset_name):
        preset = get_preset(preset_name)
        for scheme in list(SCHEME_LADDER) + [None]:
            fractions = action_fractions(scheme, preset)
            assert sum(fractions.values()) == pytest.approx(1.0)
            assert all(f >= 0.0 for f in fractions.values())

    def test_rank_schemes_orders_by_sdc_due_then_cost(self):
        residuals = {
            EccScheme.SEC: (0.10, 0.00),
            EccScheme.PARITY: (0.00, 0.20),
            EccScheme.TAEC: (0.00, 0.20),   # ties parity on AVFs...
            EccScheme.DEC: (0.00, 0.05),
        }
        ranking = rank_schemes(residuals)
        # ...so check bits break the tie: parity (1) before taec (8).
        assert ranking == (EccScheme.DEC, EccScheme.PARITY,
                           EccScheme.TAEC, EccScheme.SEC)

    def test_scheme_fit_cells_covers_every_scheme(self):
        residuals = {scheme: (0.01, 0.02) for scheme in SCHEME_LADDER}
        matrix = scheme_fit_cells(residuals, bits=1_000_000)
        assert set(matrix) == set(SCHEME_LADDER)
        for cells in matrix.values():
            assert len(cells) == len(NODES) * len(ENVIRONMENTS)


class TestFitSweepExhibit:
    @pytest.fixture(scope="class")
    def sweep_pair(self, small_profile):
        """One tiny sweep serial and one sharded, same settings."""
        settings = ExperimentSettings(target_instructions=2500, seed=7)
        texts = []
        results = []
        for jobs in (1, 3):
            clear_caches()
            with use_runtime(jobs=jobs):
                result = fitsweep.run(settings, profiles=[small_profile],
                                      trials=24)
                texts.append(fitsweep.format_result(result))
                results.append(result)
        clear_caches()
        return results, texts

    def test_byte_stable_across_jobs(self, sweep_pair):
        results, texts = sweep_pair
        assert texts[0] == texts[1]
        assert results[0].ranking == results[1].ranking

    def test_sweep_covers_the_whole_lattice(self, sweep_pair):
        (result, _), _ = sweep_pair
        assert set(result.rows) == set(SCHEME_LADDER) | {None}
        assert set(result.ranking) == set(SCHEME_LADDER)
        assert result.winner == result.ranking[0]
        for row in result.rows.values():
            assert row.residual == pytest.approx(row.sdc + row.due)
        cells = result.cells(result.winner)
        assert len(cells) == len(NODES) * len(ENVIRONMENTS)

    def test_format_mentions_every_scheme_and_node(self, sweep_pair):
        _, (text, _) = sweep_pair
        for scheme in SCHEME_LADDER:
            assert scheme.value in text
        assert "none" in text
        for node in NODES:
            assert node in text
        assert "Ranking (SDC first, DUE second, check bits last)" in text

    def test_scheme_name_restricts_the_sweep(self, small_profile):
        settings = ExperimentSettings(target_instructions=2500, seed=7)
        clear_caches()
        with use_runtime():
            result = fitsweep.run(settings, profiles=[small_profile],
                                  trials=12, scheme_name="taec")
        clear_caches()
        assert set(result.rows) == {None, EccScheme.TAEC}
        assert result.ranking == (EccScheme.TAEC,)

    def test_unknown_preset_fails_fast(self):
        with pytest.raises(ValueError, match="unknown MBU preset"):
            fitsweep.run(ExperimentSettings(target_instructions=2500),
                         preset_name="lunar")

    def test_runtime_knobs_feed_the_sweep(self):
        with use_runtime(mbu_preset="space", ecc_scheme="dec"):
            assert get_runtime().mbu_preset == "space"
            assert get_runtime().ecc_scheme == "dec"
            assert fitsweep._resolve_schemes(None) == [EccScheme.DEC]
        with use_runtime():
            assert fitsweep._resolve_schemes(None) == list(SCHEME_LADDER)


class TestTelemetryAndFlags:
    def test_scheme_campaign_ticks_burst_counters(self, small_program,
                                                  small_execution,
                                                  small_pipeline):
        config = CampaignConfig(trials=60, seed=3, scheme=EccScheme.TAEC,
                                mbu_preset="space")
        with use_runtime() as context:
            run_campaign(small_program, small_execution, small_pipeline,
                         config)
            counters = context.telemetry.counters
            summary = context.telemetry.format_summary()
        assert counters["mbu_multi_bit"] > 0
        assert (counters["ecc_corrected"] + counters["ecc_detected"]
                + counters["ecc_escaped"]) > 0
        assert "ecc:" in summary

    def test_single_bit_campaign_leaves_mbu_counters_silent(
            self, small_program, small_execution, small_pipeline):
        """Legacy campaigns must not grow new telemetry keys — their
        dumped summaries stay byte-identical to the pre-MBU format."""
        with use_runtime() as context:
            run_campaign(small_program, small_execution, small_pipeline,
                         CampaignConfig(trials=30, seed=3, parity=True))
            assert context.telemetry.counters["mbu_multi_bit"] == 0
            assert "ecc:" not in context.telemetry.format_summary()

    def test_mbu_line_format(self):
        telemetry = Telemetry()
        telemetry.merge_counters({"mbu_multi_bit": 9, "ecc_corrected": 5,
                                  "ecc_detected": 3, "ecc_escaped": 1})
        assert ("ecc: 5 corrected, 3 detected, 1 escaped "
                "(9 multi-bit bursts)") in telemetry.format_summary()

    def test_parser_mbu_flags(self):
        args = build_parser().parse_args(
            ["fitsweep", "--mbu-preset", "space", "--ecc-scheme", "taec"])
        assert args.mbu_preset == "space"
        assert args.ecc_scheme == "taec"
        defaults = build_parser().parse_args(["fitsweep"])
        assert defaults.mbu_preset is None
        assert defaults.ecc_scheme is None

    def test_parser_rejects_unknown_preset_and_scheme(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fitsweep", "--mbu-preset", "lunar"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fitsweep", "--ecc-scheme", "crc"])
        capsys.readouterr()

    def test_main_fitsweep_smoke(self, capsys):
        try:
            assert main(["fitsweep", "--instructions", "2500",
                         "--trials", "12", "--ecc-scheme", "taec"]) == 0
            out = capsys.readouterr().out
            assert "taec" in out
            assert "Ranking" in out
        finally:
            reset_runtime()
