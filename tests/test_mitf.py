"""MITF / MTTF / FIT algebra tests (paper Section 3.2)."""

import math

import pytest

from repro.avf.mitf import (
    FIT_PER_MTBF_YEAR,
    SoftErrorRateModel,
    fit_from_mttf_years,
    mitf,
    mitf_ratio,
    mttf_years_from_fit,
)


class TestConversions:
    def test_paper_fit_constant(self):
        # "An MTBF of one year equals 114,155 FIT".
        assert FIT_PER_MTBF_YEAR == pytest.approx(114_155, rel=1e-3)

    def test_roundtrip(self):
        assert mttf_years_from_fit(fit_from_mttf_years(7.5)) == \
            pytest.approx(7.5)

    def test_one_year(self):
        assert mttf_years_from_fit(FIT_PER_MTBF_YEAR) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            mttf_years_from_fit(0.0)
        with pytest.raises(ValueError):
            fit_from_mttf_years(-1.0)


class TestMitf:
    def test_paper_example(self):
        # "a processor running at 2 GHz with an average IPC of 2 and DUE
        # MTTF of 10 years would have a DUE MITF of 1.3e18 instructions".
        value = mitf(ipc=2.0, frequency_hz=2e9, mttf_years=10.0)
        assert value == pytest.approx(1.26e18, rel=0.05)

    def test_linear_in_ipc(self):
        assert mitf(2.0, 1e9, 1.0) == pytest.approx(2 * mitf(1.0, 1e9, 1.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            mitf(-1.0, 1e9, 1.0)
        with pytest.raises(ValueError):
            mitf(1.0, 0.0, 1.0)

    def test_ratio(self):
        assert mitf_ratio(1.21, 0.29) == pytest.approx(4.17, rel=0.01)

    def test_ratio_zero_avf(self):
        with pytest.raises(ValueError):
            mitf_ratio(1.0, 0.0)

    def test_tradeoff_rule(self):
        # The paper's criterion: a mechanism that cuts AVF by more than it
        # cuts IPC raises MITF.
        base = mitf_ratio(1.21, 0.29)
        good = mitf_ratio(1.19, 0.22)  # Table 1's L1 squash
        assert good > base


class TestSoftErrorRateModel:
    def test_structure_fit_scales_with_avf(self):
        model = SoftErrorRateModel(raw_fit_per_bit=1e-3, bits=1000)
        assert model.fit(0.5) == pytest.approx(0.5)
        assert model.raw_fit == pytest.approx(1.0)

    def test_mttf_matches_conversion(self):
        model = SoftErrorRateModel(raw_fit_per_bit=1e-3, bits=1000)
        assert model.mttf_years(1.0) == pytest.approx(
            mttf_years_from_fit(1.0))

    def test_mitf_consistent(self):
        model = SoftErrorRateModel(frequency_hz=2.5e9)
        direct = mitf(1.2, 2.5e9, model.mttf_years(0.3))
        assert model.mitf(1.2, 0.3) == pytest.approx(direct)

    def test_avf_bounds(self):
        model = SoftErrorRateModel()
        with pytest.raises(ValueError):
            model.fit(1.5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SoftErrorRateModel(raw_fit_per_bit=0.0)

    def test_lower_avf_more_instructions(self):
        model = SoftErrorRateModel()
        assert model.mitf(1.19, 0.22) > model.mitf(1.21, 0.29)
