"""Cross-cutting property-based tests over randomly generated workloads."""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.deadcode import DEAD_CLASSES, DynClass, analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.avf.occupancy import compute_breakdown
from repro.pipeline.config import MachineConfig
from repro.pipeline.core import PipelineSimulator
from repro.workloads.codegen import synthesize
from repro.workloads.profile import BenchmarkProfile


@st.composite
def profiles(draw):
    return BenchmarkProfile(
        name="hypo",
        suite=draw(st.sampled_from(["int", "fp"])),
        body_items=draw(st.integers(40, 120)),
        w_noop=draw(st.floats(0.0, 60.0)),
        w_branch_rand=draw(st.floats(0.0, 4.0)),
        w_cold_load=draw(st.floats(0.0, 2.0)),
        w_call=draw(st.floats(0.0, 3.0)),
        w_dead_single=draw(st.floats(0.0, 6.0)),
        w_dead_store=draw(st.floats(0.0, 6.0)),
        pred_block_len=draw(st.integers(1, 5)),
        miss_burst=draw(st.integers(1, 4)),
        fetch_bubble_prob=draw(st.floats(0.0, 0.5)),
        seed_salt=draw(st.integers(0, 1000)),
    )


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(profiles(), st.integers(0, 10_000))
def test_any_profile_synthesizes_and_halts(profile, seed):
    """Every profile in the knob space produces a clean-running program
    whose analysis results satisfy the global invariants."""
    program = synthesize(profile, target_instructions=3000, seed=seed)
    result = FunctionalSimulator(program).run()
    assert result.clean
    assert result.outputs

    analysis = analyze_deadness(result)
    assert len(analysis.classes) == len(result.trace)
    # Every dead instruction with an overwrite has a positive distance.
    for seq, distance in analysis.overwrite_distance.items():
        assert analysis.class_of(seq) in DEAD_CLASSES
        if distance is not None:
            assert distance > 0


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(profiles(), st.integers(0, 10_000))
def test_timing_and_avf_invariants(profile, seed):
    program = synthesize(profile, target_instructions=3000, seed=seed)
    execution = FunctionalSimulator(program).run()
    machine = MachineConfig(fetch_bubble_prob=profile.fetch_bubble_prob)
    pipeline = PipelineSimulator(program, execution.trace, machine,
                                 seed=seed).run()
    deadness = analyze_deadness(execution)
    breakdown = compute_breakdown(pipeline, deadness)

    assert pipeline.committed == len(execution.trace)
    assert 0.0 <= breakdown.sdc_avf <= 1.0
    assert 0.0 <= breakdown.due_avf <= 1.0
    assert breakdown.due_avf >= breakdown.sdc_avf
    assert 0.0 <= breakdown.idle_fraction <= 1.0
    total_state = (breakdown.sdc_avf + breakdown.false_due_avf
                   + breakdown.ex_ace_fraction + breakdown.idle_fraction
                   + breakdown.unread_fraction)
    assert total_state == pytest.approx(1.0, abs=0.02)
