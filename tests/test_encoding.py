"""Encode/decode tests, including totality under corruption."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import encoding
from repro.isa.encoding import (
    ENCODING_BITS,
    Field,
    decode,
    encode,
    field_at_bit,
    field_bits,
    live_fields,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.util.bitops import flip_bit

_ARCHITECTED = [op for op in Opcode if op is not Opcode.ILLEGAL]

regs = st.integers(0, 127)
preds = st.integers(0, 63)


def build(opcode, qp=0, r1=0, r2=0, r3=0, imm=0):
    return Instruction(opcode, qp=qp, r1=r1, r2=r2, r3=r3, imm=imm)


@st.composite
def instructions(draw):
    opcode = draw(st.sampled_from(_ARCHITECTED))
    qp = draw(preds)
    r1 = draw(regs)
    if opcode in (Opcode.MOVI, Opcode.BR, Opcode.CALL):
        return build(opcode, qp=qp, r1=r1,
                     imm=draw(st.integers(-(1 << 20), (1 << 20) - 1)))
    if opcode in (Opcode.ADDI, Opcode.ANDI):
        return build(opcode, qp=qp, r1=r1, r2=draw(regs),
                     imm=draw(st.integers(-(1 << 13), (1 << 13) - 1)))
    return build(opcode, qp=qp, r1=r1, r2=draw(regs), r3=draw(regs),
                 imm=draw(st.integers(-64, 63)))


class TestLayout:
    def test_field_at_every_bit(self):
        fields = [field_at_bit(b) for b in range(ENCODING_BITS)]
        assert fields.count(Field.QP) == 6
        assert fields.count(Field.R1) == 7
        assert fields.count(Field.R2) == 7
        assert fields.count(Field.R3) == 7
        assert fields.count(Field.IMM7) == 7
        assert fields.count(Field.OPCODE) == 7

    def test_field_at_bit_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            field_at_bit(41)
        with pytest.raises(ValueError):
            field_at_bit(-1)

    def test_field_bits_consistent(self):
        for field in Field:
            for bit in field_bits(field):
                assert field_at_bit(bit) is field

    def test_live_fields_always_include_opcode(self):
        for op in Opcode:
            assert Field.OPCODE in live_fields(op)

    def test_neutral_live_fields_are_opcode_only(self):
        for op in (Opcode.NOP, Opcode.HINT, Opcode.PREFETCH):
            assert live_fields(op) == frozenset({Field.OPCODE})


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_identity(self, instruction):
        assert decode(encode(instruction)) == instruction

    @given(instructions())
    def test_encoding_fits_41_bits(self, instruction):
        assert 0 <= encode(instruction) < (1 << ENCODING_BITS)

    def test_signed_imm7(self):
        inst = build(Opcode.LD, r1=5, r2=6, imm=-64)
        assert decode(encode(inst)).imm == -64

    def test_signed_imm14(self):
        inst = build(Opcode.ADDI, r1=5, r2=6, imm=-8192)
        assert decode(encode(inst)).imm == -8192

    def test_signed_imm21(self):
        inst = build(Opcode.BR, imm=-(1 << 20))
        assert decode(encode(inst)).imm == -(1 << 20)

    def test_oversized_immediate_rejected(self):
        with pytest.raises(ValueError):
            encode(build(Opcode.LD, imm=64))
        with pytest.raises(ValueError):
            encode(build(Opcode.MOVI, imm=1 << 20))

    def test_decode_rejects_out_of_range_word(self):
        with pytest.raises(ValueError):
            decode(1 << ENCODING_BITS)
        with pytest.raises(ValueError):
            decode(-1)


class TestTotalityUnderCorruption:
    @given(instructions(), st.integers(0, ENCODING_BITS - 1))
    def test_any_single_bit_flip_decodes(self, instruction, bit):
        corrupted = decode(flip_bit(encode(instruction), bit))
        assert isinstance(corrupted, Instruction)

    @given(instructions(), st.integers(0, ENCODING_BITS - 1))
    def test_non_opcode_flip_preserves_opcode(self, instruction, bit):
        if field_at_bit(bit) is Field.OPCODE:
            return
        corrupted = decode(flip_bit(encode(instruction), bit))
        assert corrupted.opcode is instruction.opcode

    def test_opcode_flip_can_become_illegal(self):
        word = encode(build(Opcode.HALT))  # 23; flipping bit 40 -> 87
        corrupted = decode(flip_bit(word, 40))
        assert corrupted.opcode is Opcode.ILLEGAL

    @given(instructions(), st.integers(0, ENCODING_BITS - 1))
    def test_reencoding_architected_corruption_is_stable(self, instr, bit):
        word = flip_bit(encode(instr), bit)
        corrupted = decode(word)
        if corrupted.opcode is Opcode.ILLEGAL:
            return
        assert decode(encode(corrupted)) == corrupted
