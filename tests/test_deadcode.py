"""Dead-code analysis tests on hand-crafted dataflow."""

import pytest

from repro.analysis.deadcode import DEAD_CLASSES, DynClass, analyze_deadness
from repro.isa.opcodes import Opcode
from tests.helpers import I, program, run


def classes_of(*instructions):
    result = run(list(instructions))
    assert result.clean
    return analyze_deadness(result), result


class TestLiveness:
    def test_output_chain_is_live(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.ADD, r1=2, r2=1, r3=1),
            I(Opcode.OUT, r2=2),
        )
        assert analysis.class_of(0) is DynClass.LIVE
        assert analysis.class_of(1) is DynClass.LIVE
        assert analysis.class_of(2) is DynClass.LIVE

    def test_control_is_live(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.CMP_NE, r1=5, r2=1, r3=0),
            I(Opcode.BR, qp=5, imm=2),
            I(Opcode.NOP),
        )
        # MOVI feeds the compare that steers a branch: conservative LIVE.
        assert analysis.class_of(0) is DynClass.LIVE
        assert analysis.class_of(1) is DynClass.LIVE
        assert analysis.class_of(2) is DynClass.LIVE

    def test_halt_is_live(self):
        analysis, _ = classes_of(I(Opcode.NOP))
        assert analysis.class_of(1) is DynClass.LIVE  # the implicit HALT


class TestNeutralAndPredFalse:
    def test_neutral_types(self):
        analysis, _ = classes_of(
            I(Opcode.NOP),
            I(Opcode.HINT),
            I(Opcode.PREFETCH, r2=1),
        )
        for seq in range(3):
            assert analysis.class_of(seq) is DynClass.NEUTRAL

    def test_prefetch_reads_do_not_keep_producers_alive(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=0x99),  # only read by the prefetch
            I(Opcode.PREFETCH, r2=1),
        )
        assert analysis.class_of(0) in DEAD_CLASSES

    def test_predicated_false(self):
        analysis, _ = classes_of(
            I(Opcode.ADD, qp=9, r1=2, r2=1, r3=1),  # p9 false
        )
        assert analysis.class_of(0) is DynClass.PRED_FALSE

    def test_predicated_false_out_is_pred_false(self):
        analysis, _ = classes_of(I(Opcode.OUT, qp=9, r2=1))
        assert analysis.class_of(0) is DynClass.PRED_FALSE


class TestFirstLevelDead:
    def test_unread_overwritten_register(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),  # dead: overwritten, never read
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        )
        assert analysis.class_of(0) is DynClass.FDD_REG
        assert analysis.class_of(1) is DynClass.LIVE
        assert analysis.overwrite_distance[0] == 1

    def test_unread_until_program_end(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=9, imm=5),
        )
        assert analysis.class_of(0) is DynClass.FDD_REG
        assert analysis.overwrite_distance[0] is None

    def test_dead_predicate_write(self):
        analysis, _ = classes_of(
            I(Opcode.CMP_EQ, r1=5, r2=0, r3=0),  # p5 written, never read
        )
        assert analysis.class_of(0) is DynClass.FDD_REG

    def test_read_predicate_write_is_live(self):
        analysis, _ = classes_of(
            I(Opcode.CMP_EQ, r1=5, r2=0, r3=0),
            I(Opcode.MOVI, qp=5, r1=1, imm=3),
            I(Opcode.OUT, r2=1),
        )
        assert analysis.class_of(0) is DynClass.LIVE


class TestTransitivelyDead:
    def test_tdd_chain(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),  # read only by a dead consumer
            I(Opcode.ADD, r1=2, r2=1, r3=1),  # never read at all
        )
        assert analysis.class_of(0) is DynClass.TDD_REG
        assert analysis.class_of(1) is DynClass.FDD_REG

    def test_three_level_chain(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.ADD, r1=2, r2=1, r3=1),
            I(Opcode.ADD, r1=3, r2=2, r3=2),
        )
        assert analysis.class_of(0) is DynClass.TDD_REG
        assert analysis.class_of(1) is DynClass.TDD_REG
        assert analysis.class_of(2) is DynClass.FDD_REG

    def test_one_live_reader_makes_live(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.ADD, r1=2, r2=1, r3=1),  # dead consumer
            I(Opcode.OUT, r2=1),  # live consumer
        )
        assert analysis.class_of(0) is DynClass.LIVE


class TestMemoryDeadness:
    def _with_base(self, *instructions):
        return classes_of(I(Opcode.MOVI, r1=10, imm=0x100), *instructions)

    def test_dead_store_never_loaded(self):
        analysis, _ = self._with_base(
            I(Opcode.ST, r1=10, r2=10, imm=0),
        )
        assert analysis.class_of(1) is DynClass.FDD_MEM

    def test_store_overwritten_before_load(self):
        analysis, _ = self._with_base(
            I(Opcode.ST, r1=10, r2=10, imm=0),
            I(Opcode.MOVI, r1=2, imm=7),
            I(Opcode.ST, r1=2, r2=10, imm=0),
            I(Opcode.LD, r1=3, r2=10, imm=0),
            I(Opcode.OUT, r2=3),
        )
        assert analysis.class_of(1) is DynClass.FDD_MEM
        assert analysis.overwrite_distance[1] == 2
        assert analysis.class_of(3) is DynClass.LIVE

    def test_tdd_via_memory(self):
        analysis, _ = self._with_base(
            I(Opcode.ST, r1=10, r2=10, imm=0),  # read only by a dead load
            I(Opcode.LD, r1=3, r2=10, imm=0),  # r3 never read
        )
        assert analysis.class_of(1) is DynClass.TDD_MEM
        assert analysis.class_of(2) is DynClass.FDD_REG

    def test_live_store_chain(self):
        analysis, _ = self._with_base(
            I(Opcode.ST, r1=10, r2=10, imm=0),
            I(Opcode.LD, r1=3, r2=10, imm=0),
            I(Opcode.OUT, r2=3),
        )
        assert analysis.class_of(1) is DynClass.LIVE
        assert analysis.class_of(2) is DynClass.LIVE


class TestReturnDeadness:
    def test_fdd_via_return(self):
        # main calls leaf twice; leaf writes r20 which nobody reads.
        from repro.isa.program import FunctionInfo, Program
        from repro.arch.executor import FunctionalSimulator

        code = [
            I(Opcode.CALL, imm=4),  # seq 0 -> leaf
            I(Opcode.CALL, imm=3),  # seq ~3 -> leaf again
            I(Opcode.OUT, r2=0),
            I(Opcode.HALT),
            I(Opcode.MOVI, r1=20, imm=9),  # leaf: return-dead write
            I(Opcode.RET),
        ]
        result = FunctionalSimulator(
            Program(code, [FunctionInfo("leaf", 4, 6)], entry=0)).run()
        analysis = analyze_deadness(result)
        # First leaf invocation's write: overwritten by the second call,
        # after its invocation returned.
        first_write = next(op.seq for op in result.trace
                           if op.dest_gpr == 20)
        assert analysis.class_of(first_write) is DynClass.FDD_REG_RETURN

    def test_main_writes_are_plain_fdd(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.MOVI, r1=1, imm=6),
            I(Opcode.OUT, r2=1),
        )
        assert analysis.class_of(0) is DynClass.FDD_REG  # not _RETURN


class TestSummaries:
    def test_dead_fraction(self):
        analysis, _ = classes_of(
            I(Opcode.MOVI, r1=1, imm=5),  # dead
            I(Opcode.MOVI, r1=2, imm=6),
            I(Opcode.OUT, r2=2),
        )
        assert analysis.dead_fraction() == pytest.approx(1 / 4)  # incl. HALT

    def test_summary_sums_to_one(self):
        analysis, _ = classes_of(
            I(Opcode.NOP),
            I(Opcode.MOVI, r1=1, imm=5),
            I(Opcode.OUT, r2=1),
        )
        assert sum(analysis.summary().values()) == pytest.approx(1.0)

    def test_count(self):
        analysis, _ = classes_of(I(Opcode.NOP), I(Opcode.NOP))
        assert analysis.count(DynClass.NEUTRAL) == 2


class TestGeneratedWorkload:
    def test_discovered_dead_fraction_in_band(self, small_deadness):
        # The generator *aims* for ~20 % dynamically dead instructions; the
        # independent analysis should land in a loose band around that.
        assert 0.08 < small_deadness.dead_fraction() < 0.40

    def test_all_classes_present(self, small_deadness):
        present = {cls for cls in DynClass
                   if small_deadness.count(cls) > 0}
        assert DynClass.LIVE in present
        assert DynClass.NEUTRAL in present
        assert DynClass.PRED_FALSE in present
        assert DynClass.FDD_REG in present
        assert DynClass.TDD_REG in present
        assert DynClass.FDD_MEM in present

    def test_live_majority(self, small_deadness):
        assert small_deadness.count(DynClass.LIVE) > \
            len(small_deadness.classes) * 0.3
