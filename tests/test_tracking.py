"""Tracking-ladder tests (repro.due.tracking)."""

import pytest

from repro.analysis.deadcode import DeadnessAnalysis, DynClass
from repro.avf.occupancy import compute_breakdown
from repro.due.tracking import (
    TRACKING_LADDER,
    TrackingLevel,
    covered_categories,
    due_avf_with_tracking,
    false_due_coverage,
    residual_false_due,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.pipeline.iq import OccupancyInterval, OccupantKind
from repro.pipeline.result import PipelineResult


def breakdown_with_all_categories():
    classes = [DynClass.LIVE, DynClass.PRED_FALSE, DynClass.NEUTRAL,
               DynClass.FDD_REG, DynClass.FDD_REG_RETURN, DynClass.TDD_REG,
               DynClass.FDD_MEM, DynClass.TDD_MEM]
    intervals = [
        OccupancyInterval(seq, Instruction(Opcode.ADD, r1=1),
                          OccupantKind.COMMITTED, 0, 10, 10)
        for seq in range(len(classes))
    ]
    intervals.append(OccupancyInterval(
        None, Instruction(Opcode.ADD, r1=1), OccupantKind.WRONG_PATH,
        0, 10, 10))
    result = PipelineResult(cycles=100, committed=8, intervals=intervals,
                            iq_entries=16)
    deadness = DeadnessAnalysis(
        classes=classes,
        overwrite_distance={3: 100, 4: 5000, 6: 100})
    return compute_breakdown(result, deadness)


class TestCoveredCategories:
    def test_parity_only_covers_nothing(self):
        assert covered_categories(TrackingLevel.PARITY_ONLY) == frozenset()

    def test_cumulative(self):
        previous = frozenset()
        for level in TRACKING_LADDER:
            current = covered_categories(level)
            assert previous <= current
            previous = current

    def test_mem_pi_covers_everything_named(self):
        covered = covered_categories(TrackingLevel.MEM_PI)
        assert "wrong_path" in covered
        assert DynClass.TDD_MEM.value in covered
        assert DynClass.NEUTRAL.value in covered


class TestResidual:
    def test_monotone_in_level(self):
        breakdown = breakdown_with_all_categories()
        residuals = [residual_false_due(breakdown, level)
                     for level in TRACKING_LADDER]
        assert residuals == sorted(residuals, reverse=True)

    def test_parity_only_residual_is_everything(self):
        breakdown = breakdown_with_all_categories()
        assert residual_false_due(breakdown, TrackingLevel.PARITY_ONLY) == \
            pytest.approx(breakdown.false_due_avf)

    def test_mem_pi_residual_zero(self):
        breakdown = breakdown_with_all_categories()
        assert residual_false_due(breakdown, TrackingLevel.MEM_PI) == \
            pytest.approx(0.0)

    def test_pet_is_partial(self):
        breakdown = breakdown_with_all_categories()
        anti = residual_false_due(breakdown, TrackingLevel.ANTI_PI)
        pet = residual_false_due(breakdown, TrackingLevel.PET,
                                 pet_entries=512)
        reg = residual_false_due(breakdown, TrackingLevel.REG_PI)
        assert reg < pet < anti  # PET removes some but not all FDD_REG

    def test_pet_size_matters(self):
        breakdown = breakdown_with_all_categories()
        small = residual_false_due(breakdown, TrackingLevel.PET,
                                   pet_entries=16)
        large = residual_false_due(breakdown, TrackingLevel.PET,
                                   pet_entries=512)
        assert large <= small


class TestDerived:
    def test_due_avf_is_true_plus_residual(self):
        breakdown = breakdown_with_all_categories()
        for level in TRACKING_LADDER:
            assert due_avf_with_tracking(breakdown, level) == pytest.approx(
                breakdown.true_due_avf
                + residual_false_due(breakdown, level))

    def test_coverage_bounds(self):
        breakdown = breakdown_with_all_categories()
        assert false_due_coverage(
            breakdown, TrackingLevel.PARITY_ONLY) == pytest.approx(0.0)
        assert false_due_coverage(
            breakdown, TrackingLevel.MEM_PI) == pytest.approx(1.0)

    def test_coverage_on_real_run(self, small_pipeline, small_deadness):
        breakdown = compute_breakdown(small_pipeline, small_deadness)
        coverages = [false_due_coverage(breakdown, level)
                     for level in TRACKING_LADDER]
        assert coverages == sorted(coverages)
        assert coverages[-1] == pytest.approx(1.0)
