"""IqAvfReport assembly tests."""

import pytest

from repro.avf.avf_calc import compute_iq_avf
from repro.avf.occupancy import AccountingPolicy


class TestReport:
    def test_fields_match_breakdown(self, small_pipeline, small_deadness):
        report = compute_iq_avf("x", small_pipeline, small_deadness)
        assert report.sdc_avf == report.breakdown.sdc_avf
        assert report.due_avf == report.breakdown.due_avf
        assert report.false_due_avf == report.breakdown.false_due_avf
        assert report.cycles == small_pipeline.cycles
        assert report.committed == small_pipeline.committed

    def test_mitf_ratios(self, small_pipeline, small_deadness):
        report = compute_iq_avf("x", small_pipeline, small_deadness)
        assert report.ipc_over_sdc_avf == pytest.approx(
            report.ipc / report.sdc_avf)
        assert report.ipc_over_due_avf == pytest.approx(
            report.ipc / report.due_avf)

    def test_components_sum(self, small_pipeline, small_deadness):
        report = compute_iq_avf("x", small_pipeline, small_deadness)
        assert sum(report.false_due_components().values()) == pytest.approx(
            report.false_due_avf)

    def test_policy_threaded(self, small_pipeline, small_deadness):
        conservative = compute_iq_avf("x", small_pipeline, small_deadness,
                                      AccountingPolicy.CONSERVATIVE)
        read_gated = compute_iq_avf("x", small_pipeline, small_deadness,
                                    AccountingPolicy.READ_GATED)
        assert read_gated.sdc_avf <= conservative.sdc_avf

    def test_residency_sums_to_one(self, small_pipeline, small_deadness):
        report = compute_iq_avf("x", small_pipeline, small_deadness)
        assert sum(report.residency_summary().values()) == pytest.approx(
            1.0, abs=0.02)
