"""Checkpoint journal tests: atomic writes, validation, resume math."""

import json
from collections import Counter

import pytest

from repro.due.outcomes import FaultOutcome
from repro.runtime.checkpoint import (
    JOURNAL_VERSION,
    CheckpointJournal,
    atomic_write,
)
from repro.runtime.resilience import CacheCorrupt, remaining_ranges

KEY = "a" * 64  # stand-in campaign content hash


def _block(n, *, masked=0):
    """Outcome tallies for a block of ``n`` trials."""
    return {FaultOutcome.BENIGN_UNREAD: masked,
            FaultOutcome.SDC: n - masked}


class TestAtomicWrite:
    def test_writes_payload(self, tmp_path):
        path = tmp_path / "sub" / "x.json"
        atomic_write(path, b"hello")
        assert path.read_bytes() == b"hello"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write(path, b"one")
        atomic_write(path, b"two")
        assert path.read_bytes() == b"two"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write(tmp_path / "x.json", b"data")
        assert [p.name for p in tmp_path.iterdir()] == ["x.json"]


class TestRemainingRanges:
    def test_empty_coverage_is_full_span(self):
        assert remaining_ranges(10, []) == [(0, 10)]

    def test_full_coverage_is_empty(self):
        assert remaining_ranges(10, [(0, 10)]) == []

    def test_middle_gap(self):
        assert remaining_ranges(10, [(0, 3), (7, 10)]) == [(3, 7)]

    def test_unsorted_input(self):
        assert remaining_ranges(12, [(8, 12), (0, 4)]) == [(4, 8)]

    def test_overlap_is_corrupt(self):
        with pytest.raises(CacheCorrupt):
            remaining_ranges(10, [(0, 5), (4, 8)])

    def test_out_of_bounds_is_corrupt(self):
        with pytest.raises(CacheCorrupt):
            remaining_ranges(10, [(5, 12)])
        with pytest.raises(CacheCorrupt):
            remaining_ranges(10, [(-1, 3)])


class TestJournalRoundTrip:
    def test_load_missing_returns_none(self, tmp_path):
        journal = CheckpointJournal(tmp_path, KEY, trials=20)
        assert journal.load() is None

    def test_record_then_load(self, tmp_path):
        journal = CheckpointJournal(tmp_path, KEY, trials=20)
        journal.record(0, 10, _block(10, masked=4), tracker_misses=2)
        journal.record(15, 20, _block(5, masked=1), tracker_misses=1)

        fresh = CheckpointJournal(tmp_path, KEY, trials=20)
        state = fresh.load()
        assert state.ranges == ((0, 10), (15, 20))
        assert state.trials_covered == 15
        assert state.counts == Counter({FaultOutcome.BENIGN_UNREAD: 5,
                                        FaultOutcome.SDC: 10})
        assert state.tracker_misses == 3

    def test_resumed_journal_keeps_appending(self, tmp_path):
        journal = CheckpointJournal(tmp_path, KEY, trials=20)
        journal.record(0, 10, _block(10), tracker_misses=0)

        resumed = CheckpointJournal(tmp_path, KEY, trials=20)
        resumed.load()
        resumed.record(10, 20, _block(10), tracker_misses=0)
        state = CheckpointJournal(tmp_path, KEY, trials=20).load()
        assert state.ranges == ((0, 10), (10, 20))
        assert remaining_ranges(20, state.ranges) == []

    def test_discard_removes_file(self, tmp_path):
        journal = CheckpointJournal(tmp_path, KEY, trials=20)
        journal.record(0, 10, _block(10), tracker_misses=0)
        assert journal.path.exists()
        journal.discard()
        assert not journal.path.exists()
        assert CheckpointJournal(tmp_path, KEY, trials=20).load() is None
        journal.discard()  # idempotent


class TestJournalValidation:
    def _journal_with_block(self, tmp_path):
        journal = CheckpointJournal(tmp_path, KEY, trials=20)
        journal.record(0, 10, _block(10, masked=3), tracker_misses=1)
        return journal

    def _tamper(self, journal, mutate):
        doc = json.loads(journal.path.read_text())
        mutate(doc)
        journal.path.write_text(json.dumps(doc))

    def test_garbled_bytes_are_corrupt(self, tmp_path):
        journal = self._journal_with_block(tmp_path)
        data = journal.path.read_bytes()
        journal.path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CacheCorrupt, match="undecodable|checksum"):
            CheckpointJournal(tmp_path, KEY, trials=20).load()

    def test_tampered_tally_fails_checksum(self, tmp_path):
        journal = self._journal_with_block(tmp_path)
        self._tamper(journal, lambda doc: doc["entries"][0]["counts"]
                     .__setitem__("sdc", 9000))
        with pytest.raises(CacheCorrupt, match="checksum"):
            CheckpointJournal(tmp_path, KEY, trials=20).load()

    def test_version_mismatch(self, tmp_path):
        journal = self._journal_with_block(tmp_path)
        self._tamper(journal, lambda doc: doc.update(
            version=JOURNAL_VERSION + 1))
        with pytest.raises(CacheCorrupt, match="version"):
            CheckpointJournal(tmp_path, KEY, trials=20).load()

    def test_wrong_campaign_key(self, tmp_path):
        journal = self._journal_with_block(tmp_path)
        other = CheckpointJournal(tmp_path, "b" * 64, trials=20)
        other.path = journal.path
        with pytest.raises(CacheCorrupt, match="different campaign"):
            other.load()

    def test_wrong_trial_count(self, tmp_path):
        self._journal_with_block(tmp_path)
        with pytest.raises(CacheCorrupt, match="trials"):
            CheckpointJournal(tmp_path, KEY, trials=30).load()

    def test_overlapping_entries(self, tmp_path):
        journal = self._journal_with_block(tmp_path)
        journal.record(5, 15, _block(10), tracker_misses=0)
        with pytest.raises(CacheCorrupt):
            CheckpointJournal(tmp_path, KEY, trials=20).load()

    def test_tally_sum_must_match_range(self, tmp_path):
        journal = CheckpointJournal(tmp_path, KEY, trials=20)
        journal.record(0, 10, _block(7), tracker_misses=0)  # 7 != 10
        with pytest.raises(CacheCorrupt, match="tallies"):
            CheckpointJournal(tmp_path, KEY, trials=20).load()

    def test_unknown_outcome_name(self, tmp_path):
        journal = self._journal_with_block(tmp_path)

        def swap_outcome(doc):
            entry = doc["entries"][0]
            entry["counts"] = {"warp-core-breach": 10}
            from repro.runtime.checkpoint import _checksum
            doc["checksum"] = _checksum(doc)

        self._tamper(journal, swap_outcome)
        with pytest.raises(CacheCorrupt, match="unknown outcome"):
            CheckpointJournal(tmp_path, KEY, trials=20).load()

    def test_distinct_campaigns_use_distinct_files(self, tmp_path):
        a = CheckpointJournal(tmp_path, "a" * 64, trials=20)
        b = CheckpointJournal(tmp_path, "c" * 64, trials=20)
        assert a.path != b.path
