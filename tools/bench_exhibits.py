"""Before/after benchmark of the interval timing kernel + timeline store.

Times the timing-bound exhibit suite (Table 1, the occupancy decomposition,
Figures 2-4, and all five ablations) three ways:

* ``seed`` — the seed-era configuration: the legacy per-cycle timing loop,
  no persistent store, and per-exhibit memo isolation (at the seed, the
  ablations bypassed the in-process timing memo entirely, so every exhibit
  unit paid for its own simulations);
* ``cold`` — the interval-compressed kernel writing through an empty
  persistent timeline store, with the cross-exhibit memo shared: exhibits
  that evaluate the same (program, machine) point reuse one simulation;
* ``warm`` — the same suite against the populated store. Every pipeline
  result is deserialized from the store; the run fails if a single
  pipeline (or functional) simulation happens.

Every exhibit's *formatted output* must be byte-identical across the three
passes — the run aborts if not. Results land in ``BENCH_exhibits.json``
and the process exits non-zero when the cold speedup drops below
``--min-cold-speedup`` or the warm speedup below ``--min-warm-speedup``.

A second head-to-head times the chunk-compositional memo on a
SimPoint-scale catalogue workload (``--chunk-workload``, low-bubble
machine): plain interval kernel vs ``run_composed`` with a cold memo vs
a warm memo. All three results must be byte-identical (stats, interval
columns, timeline-store cache key); the cold-memo speedup is gated by
``--min-chunk-speedup``.

    PYTHONPATH=src python tools/bench_exhibits.py
    PYTHONPATH=src python tools/bench_exhibits.py --small   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.avf.occupancy import AccountingPolicy
from repro.experiments import (
    ablations,
    figure2,
    figure3,
    figure4,
    occupancy,
    table1,
)
from repro.experiments.common import ExperimentSettings, clear_caches
from repro.pipeline import compose
from repro.pipeline.compose import clear_chunk_memos, run_composed
from repro.pipeline.config import MachineConfig, SquashConfig, Trigger
from repro.pipeline.core import PipelineSimulator, clear_warm_snapshots
from repro.pipeline.kernel import run_interval
from repro.runtime.cache import cache_key
from repro.runtime.context import use_runtime
from repro.workloads.scaled import build_scaled
from repro.workloads.spec2000 import ALL_PROFILES


def exhibit_units(settings, profiles):
    """(name, callable) pairs; each unit returns its formatted exhibit.

    The five ablations count as separate units: at the seed each built its
    own timing runs from scratch, so the seed pass isolates them from each
    other (and from the main exhibits) to reproduce that cost honestly.
    """
    return [
        ("table1", lambda: table1.format_result(
            table1.run(settings, profiles))),
        ("occupancy", lambda: occupancy.format_result(
            occupancy.run(settings, profiles))),
        ("figure2", lambda: figure2.format_result(
            figure2.run(settings, profiles))),
        ("figure3", lambda: figure3.format_result(
            figure3.run(settings, profiles))),
        ("figure4", lambda: figure4.format_result(
            figure4.run(settings, profiles))),
        ("ablation:accounting", lambda: ablations.format_result(
            ablations.accounting_policy(settings, profiles))),
        ("ablation:refetch", lambda: ablations.format_result(
            ablations.refetch_policy(settings, profiles))),
        ("ablation:squash-vs-throttle", lambda: ablations.format_result(
            ablations.squash_vs_throttle(settings, profiles))),
        ("ablation:issue-policy", lambda: ablations.format_result(
            ablations.issue_policy_contrast(settings, profiles))),
        ("ablation:queue-size", lambda: ablations.format_result(
            ablations.queue_size_sweep(settings, profiles))),
    ]


def run_suite(settings, profiles, isolate_units: bool):
    """Run every unit; returns ({name: output}, per-unit seconds)."""
    outputs = {}
    seconds = {}
    for name, unit in exhibit_units(settings, profiles):
        if isolate_units:
            clear_caches()
        started = time.perf_counter()
        outputs[name] = unit()
        seconds[name] = time.perf_counter() - started
    return outputs, seconds


def sim_counters(telemetry):
    return {name: telemetry.counters[name]
            for name in ("pipeline_sims", "functional_sims",
                         "timeline_store_hits")}


def _chunk_identical(a, b):
    """True when two timing results are indistinguishable downstream."""
    ta, tb = a.intervals, b.intervals
    return (a.cycles == b.cycles and a.stats == b.stats
            and list(ta.seq) == list(tb.seq)
            and list(ta.alloc) == list(tb.alloc)
            and list(ta.issue) == list(tb.issue)
            and list(ta.dealloc) == list(tb.dealloc)
            and cache_key(a) == cache_key(b))


def bench_chunk_memo(workload: str, seed: int):
    """Interval kernel vs composed (cold memo) vs composed (warm memo).

    The gate workload is low-bubble by construction: the memo's payoff
    case is draw-free chunk repetition (bubbled machines are covered by
    the exact differential suite, not this wall-clock gate).
    """
    program, trace = build_scaled(workload)
    machine = MachineConfig(fetch_bubble_prob=0.0,
                            squash=SquashConfig(trigger=Trigger.L1_MISS))

    def sim():
        return PipelineSimulator(program, trace, machine, seed=seed)

    clear_chunk_memos()
    started = time.perf_counter()
    plain = run_interval(sim())
    interval_s = time.perf_counter() - started

    before = (compose.chunk_memo_hits, compose.chunk_memo_misses,
              compose.chunk_memo_fallbacks, compose.chunk_memo_splices)
    started = time.perf_counter()
    cold = run_composed(sim())
    cold_s = time.perf_counter() - started
    started = time.perf_counter()
    warm = run_composed(sim())
    warm_s = time.perf_counter() - started
    after = (compose.chunk_memo_hits, compose.chunk_memo_misses,
             compose.chunk_memo_fallbacks, compose.chunk_memo_splices)
    counters = dict(zip(("hits", "misses", "fallbacks", "splices"),
                        (b - a for a, b in zip(before, after))))
    clear_chunk_memos()
    return {
        "workload": workload,
        "rows": len(trace),
        "seconds": {"interval": round(interval_s, 3),
                    "cold": round(cold_s, 3),
                    "warm": round(warm_s, 3)},
        "speedup": {
            "cold_vs_interval": round(interval_s / cold_s, 2)
            if cold_s > 0 else float("inf"),
            "warm_vs_interval": round(interval_s / warm_s, 2)
            if warm_s > 0 else float("inf"),
        },
        "memo": counters,
        "outputs_identical": (_chunk_identical(plain, cold)
                              and _chunk_identical(plain, warm)),
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Time the exhibit suite under the interval kernel and "
                    "timeline store; record BENCH_exhibits.json.")
    parser.add_argument("--instructions", type=int, default=20_000)
    parser.add_argument("--profiles", type=int, default=None,
                        help="benchmark profile count (default: all 26)")
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--small", action="store_true",
                        help="CI preset: 6 profiles x 6000 instructions")
    parser.add_argument("--min-cold-speedup", type=float, default=3.0)
    parser.add_argument("--min-warm-speedup", type=float, default=10.0)
    parser.add_argument("--chunk-workload", default=None,
                        help="scaled workload for the chunk-memo "
                             "head-to-head (default: mcf-2m, or "
                             "mcf-200k under --small)")
    parser.add_argument("--min-chunk-speedup", type=float, default=3.0,
                        help="required cold-memo speedup over the plain "
                             "interval kernel on --chunk-workload")
    parser.add_argument("--output", default="BENCH_exhibits.json")
    args = parser.parse_args()
    if args.small:
        args.instructions = min(args.instructions, 6000)
        args.profiles = min(args.profiles or 6, 6)
    if args.chunk_workload is None:
        args.chunk_workload = "mcf-200k" if args.small else "mcf-2m"

    settings = ExperimentSettings(target_instructions=args.instructions,
                                  seed=args.seed)
    profiles = list(ALL_PROFILES)
    if args.profiles is not None:
        step = max(1, len(profiles) // args.profiles)
        profiles = profiles[::step][:args.profiles]
    print(f"suite: {len(profiles)} profiles x {args.instructions} "
          f"instructions, {len(exhibit_units(settings, profiles))} "
          f"exhibit units")

    def fresh():
        clear_caches()
        clear_warm_snapshots()

    # ---- seed pass: legacy loop, no store, isolated units ---------------
    fresh()
    with use_runtime(interval_kernel=False) as context:
        started = time.perf_counter()
        seed_out, seed_units = run_suite(settings, profiles,
                                         isolate_units=True)
        seed_s = time.perf_counter() - started
        seed_sims = sim_counters(context.telemetry)
    print(f"seed (per-cycle loop, no store): {seed_s:.2f}s  {seed_sims}")

    with TemporaryDirectory(prefix="bench-timeline-") as store_dir:
        # ---- cold pass: interval kernel, empty store --------------------
        fresh()
        with use_runtime(cache_dir=store_dir) as context:
            started = time.perf_counter()
            cold_out, cold_units = run_suite(settings, profiles,
                                             isolate_units=False)
            cold_s = time.perf_counter() - started
            cold_sims = sim_counters(context.telemetry)
        print(f"cold (interval kernel, empty store): {cold_s:.2f}s  "
              f"{cold_sims}")

        # ---- warm pass: populated store ---------------------------------
        fresh()
        with use_runtime(cache_dir=store_dir) as context:
            started = time.perf_counter()
            warm_out, warm_units = run_suite(settings, profiles,
                                             isolate_units=False)
            warm_s = time.perf_counter() - started
            warm_sims = sim_counters(context.telemetry)
        print(f"warm (populated store): {warm_s:.2f}s  {warm_sims}")
    fresh()

    # ---- chunk-memo head-to-head on a SimPoint-scale workload -----------
    chunk = bench_chunk_memo(args.chunk_workload, args.seed)
    print(f"chunk memo ({chunk['workload']}, {chunk['rows']} rows): "
          f"interval {chunk['seconds']['interval']:.2f}s, "
          f"cold {chunk['seconds']['cold']:.2f}s "
          f"({chunk['speedup']['cold_vs_interval']:.2f}x), "
          f"warm {chunk['seconds']['warm']:.2f}s "
          f"({chunk['speedup']['warm_vs_interval']:.2f}x)  "
          f"{chunk['memo']}")

    failures = []
    for name in seed_out:
        if cold_out[name] != seed_out[name]:
            failures.append(f"cold output differs from seed for {name}")
        if warm_out[name] != seed_out[name]:
            failures.append(f"warm output differs from seed for {name}")
    if warm_sims["pipeline_sims"]:
        failures.append(
            f"warm pass ran {warm_sims['pipeline_sims']} pipeline "
            f"simulations; the store must serve all of them")
    if warm_sims["timeline_store_hits"] <= 0:
        failures.append("warm pass never hit the timeline store")
    speedup_cold = seed_s / cold_s if cold_s > 0 else float("inf")
    speedup_warm = seed_s / warm_s if warm_s > 0 else float("inf")
    if speedup_cold < args.min_cold_speedup:
        failures.append(f"cold speedup {speedup_cold:.2f}x below the "
                        f"required {args.min_cold_speedup:.2f}x")
    if speedup_warm < args.min_warm_speedup:
        failures.append(f"warm speedup {speedup_warm:.2f}x below the "
                        f"required {args.min_warm_speedup:.2f}x")
    if not chunk["outputs_identical"]:
        failures.append("chunk-memo composed run is not byte-identical "
                        "to the plain interval kernel")
    if chunk["speedup"]["cold_vs_interval"] < args.min_chunk_speedup:
        failures.append(
            f"chunk-memo cold speedup "
            f"{chunk['speedup']['cold_vs_interval']:.2f}x below the "
            f"required {args.min_chunk_speedup:.2f}x")

    record = {
        "suite": {
            "profiles": len(profiles),
            "instructions": args.instructions,
            "seed": args.seed,
            "units": [name for name, _ in exhibit_units(settings, profiles)],
            "accounting_policies": [p.value for p in AccountingPolicy],
        },
        "seconds": {"seed_suite": round(seed_s, 3),
                    "cold_suite": round(cold_s, 3),
                    "warm_suite": round(warm_s, 3)},
        "per_unit_seconds": {
            "seed": {k: round(v, 3) for k, v in seed_units.items()},
            "cold": {k: round(v, 3) for k, v in cold_units.items()},
            "warm": {k: round(v, 3) for k, v in warm_units.items()},
        },
        "simulations": {"seed": seed_sims, "cold": cold_sims,
                        "warm": warm_sims},
        "speedup": {"cold_vs_seed": round(speedup_cold, 2),
                    "warm_vs_seed": round(speedup_warm, 2)},
        "outputs_identical": not any("differs" in f for f in failures),
        "chunk_memo": chunk,
        "requirements": {"min_cold_speedup": args.min_cold_speedup,
                         "min_warm_speedup": args.min_warm_speedup,
                         "min_chunk_speedup": args.min_chunk_speedup},
        "passed": not failures,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"cold {speedup_cold:.2f}x, warm {speedup_warm:.2f}x vs seed "
          f"-> {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
