"""Load harness for the AVF query service.

Drives thousands of concurrent mixed warm/cold queries at an
:class:`AvfServer` — in-process by default, or a live ``repro serve``
process via ``--external HOST:PORT`` — and asserts the service's
contracts on the way through:

* **byte identity**: every served answer (warm, cold, or coalesced)
  is byte-identical to encoding a direct ``run_benchmark`` /
  ``run_campaign`` call for the same tuple;
* **exact dedup**: across the whole run the server performs exactly one
  cold computation per distinct key — proven by the server's own
  ``stats`` counters, not inferred from timing;
* **warm latency**: warm-key answers come back with a p50 under
  ``--max-warm-p50-ms`` (default 1 ms on localhost);
* **resilience overhead**: routing the same warm queries through the
  retrying/circuit-breaking :class:`ResilientAsyncClient` costs at most
  ``--max-resilience-overhead-pct`` (default 5%) extra warm p50 over
  the raw client.

``--chaos-seed N`` interposes the deterministic wire-level
:class:`ChaosProxy` between the load clients and the server: lines are
dropped, delayed, reset, truncated, and garbled on a seeded schedule
while the checks above tighten into the hard failure-semantics
contract — zero silently-wrong answers and still exactly one compute
per distinct key. Degraded-mode (storm-under-chaos) latency, wire fault
counts, and client retry/breaker counters all land in the record.

Results land in ``BENCH_serve.json``; the exit status is non-zero if
any check fails.

    PYTHONPATH=src python tools/bench_serve.py
    PYTHONPATH=src python tools/bench_serve.py --small              # CI smoke
    PYTHONPATH=src python tools/bench_serve.py --small --external 127.0.0.1:8787
    PYTHONPATH=src python tools/bench_serve.py --small --external 127.0.0.1:8787 --chaos-seed 7
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import statistics
import sys
import time
from collections import Counter
from pathlib import Path

from repro.experiments.common import (
    ExperimentSettings,
    clear_caches,
    run_benchmark,
)
from repro.faults.campaign import run_campaign
from repro.runtime.context import use_runtime
from repro.serve.chaos import ChaosProxy, WireChaosConfig
from repro.serve.client import (
    AsyncServeClient,
    ResilientAsyncClient,
    ServeError,
    parse_address,
)
from repro.serve.protocol import (
    canonical_dumps,
    encode_benchmark,
    encode_campaign,
    parse_query,
)
from repro.serve.resilience import CircuitBreaker, ClientPolicy
from repro.serve.server import AvfServer, ServeConfig
from repro.workloads.spec2000 import ALL_PROFILES, get_profile

#: Acceptable request outcomes under chaos besides the golden bytes.
STRUCTURED_FAILURES = (ServeError, ConnectionError, OSError, EOFError,
                       asyncio.TimeoutError, TimeoutError)


def build_requests(args):
    """The distinct-key query mix: AVF points plus a few campaigns."""
    names = [profile.name for profile in ALL_PROFILES][:args.profiles]
    requests = []
    for seed_offset in range(args.seeds_per_profile):
        for name in names:
            requests.append({
                "op": "avf", "profile": name,
                "target_instructions": args.instructions,
                "seed": args.seed + seed_offset,
            })
    for name in names[:args.campaigns]:
        requests.append({
            "op": "campaign", "profile": name,
            "target_instructions": args.instructions,
            "seed": args.seed, "trials": args.trials,
            "campaign_seed": args.seed + 1, "parity": True,
        })
    return requests


def golden_answers(requests):
    """Direct engine answers through the service encoders — the oracle."""
    goldens = []
    for request in requests:
        query = parse_query(request)
        run = run_benchmark(
            get_profile(query.profile_name),
            ExperimentSettings(target_instructions=query.target_instructions,
                               seed=query.seed),
            machine=query.machine)
        if query.op == "avf":
            goldens.append(canonical_dumps(encode_benchmark(run)))
        else:
            goldens.append(canonical_dumps(encode_campaign(run_campaign(
                run.program, run.execution, run.pipeline, query.campaign))))
    return goldens


async def fetch_stats(client):
    return (await client.request({"op": "stats"}))["value"]


def _percentiles(latencies):
    ordered = sorted(latencies)
    return (statistics.median(ordered) * 1000,
            ordered[int(0.95 * len(ordered))] * 1000)


async def drive(args, requests, goldens, failures):
    """All serving phases under one event loop; returns the record body."""
    server = None
    proxy = None
    if args.external:
        upstream = parse_address(args.external)
    else:
        server = AvfServer(ServeConfig(host="127.0.0.1", port=0))
        await server.start()
        upstream = ("127.0.0.1", server.port)
    if args.chaos_seed is not None:
        # Aborted chaos connections make asyncio log a warning per
        # swallowed socket.send(); that is the proxy working as designed.
        logging.getLogger("asyncio").setLevel(logging.ERROR)
        proxy = ChaosProxy(upstream, WireChaosConfig(seed=args.chaos_seed))
        await proxy.start()
        target = ("127.0.0.1", proxy.port)
    else:
        target = upstream
    pool = []
    storm_pool = []
    resilient = None
    chaos_failed = 0
    try:
        # The control connection always dials the server directly: the
        # oracle checks and stats deltas must not themselves be damaged.
        control = await AsyncServeClient().connect(*upstream)
        pool.append(control)
        if args.chaos_seed is not None:
            # Under chaos the storm goes through retrying clients (the
            # raw client would just die at the first reset).
            storm_policy = ClientPolicy(retries=8, backoff_base=0.001,
                                        backoff_cap=0.01, jitter=0.0)
            storm_pool = [
                ResilientAsyncClient(
                    *target, timeout=args.chaos_timeout,
                    policy=storm_policy,
                    breaker=CircuitBreaker(threshold=1_000_000))
                for _ in range(args.connections)]
        else:
            for _ in range(args.connections - 1):
                pool.append(await AsyncServeClient().connect(*target))
            storm_pool = pool
        before = await fetch_stats(control)

        # ---- phase 1: warm half the keys (their storm repeats are warm,
        # the other half's first touch happens *inside* the storm) -------
        prewarmed = list(range(0, len(requests), 2))
        started = time.perf_counter()
        for index in prewarmed:
            final = await control.request(dict(requests[index]))
            if canonical_dumps(final["value"]) != goldens[index]:
                failures.append(f"prewarm answer {index} differs from the "
                                f"direct engine call")
        prewarm_s = time.perf_counter() - started

        # ---- phase 2: the storm — concurrent mixed warm/cold ------------
        async def one(task_index):
            index = (task_index * 7) % len(requests)
            client = storm_pool[task_index % len(storm_pool)]
            t0 = time.perf_counter()
            try:
                final = await client.request(dict(requests[index]))
            except STRUCTURED_FAILURES as exc:
                if args.chaos_seed is None:
                    raise
                return index, exc, time.perf_counter() - t0
            return index, final, time.perf_counter() - t0

        started = time.perf_counter()
        outcomes = await asyncio.gather(*(one(i) for i in range(args.storm)))
        storm_s = time.perf_counter() - started
        storm_latencies = []
        for index, final, elapsed in outcomes:
            storm_latencies.append(elapsed)
            if isinstance(final, Exception):
                chaos_failed += 1
                continue
            if canonical_dumps(final["value"]) != goldens[index]:
                failures.append(f"storm answer for key {index} differs "
                                f"from the direct engine call")

        # ---- phase 2b (chaos only): sweep every key over the clean
        # control connection so keys whose storm asks all failed still
        # get their one compute, then verify the full oracle ---------
        if args.chaos_seed is not None:
            for index, request in enumerate(requests):
                final = await control.request(dict(request))
                if canonical_dumps(final["value"]) != goldens[index]:
                    failures.append(f"post-storm answer {index} differs "
                                    f"from the direct engine call")

        # ---- phase 3: warm-key latency over the raw client (the warm
        # path itself is measured off-chaos: control dials direct) -------
        warm_latencies = []
        for i in range(args.warm_samples):
            request = dict(requests[i % len(requests)])
            t0 = time.perf_counter()
            final = await control.request(request)
            warm_latencies.append(time.perf_counter() - t0)
            if final["status"] != "warm":
                failures.append(f"latency-phase answer {i} was not warm "
                                f"(status {final['status']!r})")

        # ---- phase 4: the same warm round-trips through the resilient
        # client — its retry/breaker/deadline bookkeeping must cost
        # nearly nothing on the happy path ------------------------------
        resilient = ResilientAsyncClient(
            *upstream, timeout=30.0, policy=ClientPolicy(retries=2),
            breaker=CircuitBreaker())
        resilient_latencies = []
        for i in range(args.warm_samples):
            request = dict(requests[i % len(requests)])
            t0 = time.perf_counter()
            final = await resilient.request(request)
            resilient_latencies.append(time.perf_counter() - t0)
            if final["status"] != "warm":
                failures.append(f"resilient-phase answer {i} was not warm "
                                f"(status {final['status']!r})")
        after = await fetch_stats(control)
    finally:
        for client in pool:
            await client.close()
        if args.chaos_seed is not None:
            for client in storm_pool:
                await client.close()
        if resilient is not None:
            await resilient.close()
        if proxy is not None:
            await proxy.stop()
        if server is not None:
            await server.stop()

    delta = {key: after.get(key, 0) - before.get(key, 0)
             for key in ("serve_requests", "serve_cold_computes",
                         "serve_warm_hits", "serve_coalesced",
                         "serve_lru_evictions", "serve_errors",
                         "serve_shed_requests",
                         "serve_deadline_expirations")}
    warm_p50, warm_p95 = _percentiles(warm_latencies)
    resilient_p50, resilient_p95 = _percentiles(resilient_latencies)
    overhead_pct = ((resilient_p50 - warm_p50) / warm_p50 * 100
                    if warm_p50 else 0.0)

    if delta["serve_cold_computes"] != len(requests):
        failures.append(
            f"dedup violated: {delta['serve_cold_computes']} cold "
            f"computations for {len(requests)} distinct keys")
    if delta["serve_errors"] and args.chaos_seed is None:
        failures.append(f"{delta['serve_errors']} serve errors during "
                        f"the run")
    if warm_p50 >= args.max_warm_p50_ms:
        failures.append(f"warm p50 {warm_p50:.3f} ms is above the "
                        f"{args.max_warm_p50_ms} ms bound")
    if overhead_pct >= args.max_resilience_overhead_pct:
        failures.append(
            f"resilient-client warm p50 {resilient_p50:.3f} ms is "
            f"{overhead_pct:.1f}% over the raw client's {warm_p50:.3f} ms "
            f"(bound {args.max_resilience_overhead_pct}%)")

    body = {
        "counts": {
            "distinct_keys": len(requests),
            "prewarmed_keys": len(prewarmed),
            "storm_requests": args.storm,
            "warm_samples": args.warm_samples,
            "connections": args.connections,
            "total_requests": (len(prewarmed) + args.storm
                               + 2 * args.warm_samples),
        },
        "seconds": {"prewarm": round(prewarm_s, 3),
                    "storm": round(storm_s, 3)},
        "latency_ms": {
            "warm_p50": round(warm_p50, 4),
            "warm_p95": round(warm_p95, 4),
            "storm_p50": round(
                statistics.median(storm_latencies) * 1000, 3),
            "storm_p95": round(
                sorted(storm_latencies)[
                    int(0.95 * len(storm_latencies))] * 1000, 3),
        },
        "resilience": {
            "warm_p50_resilient_ms": round(resilient_p50, 4),
            "warm_p95_resilient_ms": round(resilient_p95, 4),
            "overhead_pct": round(overhead_pct, 2),
            "max_overhead_pct": args.max_resilience_overhead_pct,
        },
        "throughput_qps": round(args.storm / storm_s, 1) if storm_s else None,
        "stats_delta": delta,
    }
    if args.chaos_seed is not None:
        retries = Counter()
        breaker = Counter()
        for client in storm_pool:
            retries.update(client.counters)
            breaker.update(client.breaker.counters)
        body["chaos"] = {
            "seed": args.chaos_seed,
            "wire": dict(proxy.counters),
            "storm_failed_structured": chaos_failed,
            "storm_answered": args.storm - chaos_failed,
            "degraded_p50_ms": body["latency_ms"]["storm_p50"],
            "degraded_p95_ms": body["latency_ms"]["storm_p95"],
            "client": dict(retries),
            "breaker": dict(breaker),
        }
        faults = sum(proxy.counters.get(f"wire_{m}", 0)
                     for m in ("drop", "reset", "truncate", "garble",
                               "delay"))
        if not faults:
            failures.append("chaos proxy was configured but injected "
                            "zero faults")
    return body


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Concurrency/latency harness for the AVF query "
                    "service; records BENCH_serve.json.")
    parser.add_argument("--instructions", type=int, default=4000)
    parser.add_argument("--profiles", type=int, default=6,
                        help="distinct benchmark profiles in the mix")
    parser.add_argument("--seeds-per-profile", type=int, default=2)
    parser.add_argument("--campaigns", type=int, default=4,
                        help="campaign queries appended to the mix")
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--storm", type=int, default=2000,
                        help="concurrent mixed warm/cold requests")
    parser.add_argument("--warm-samples", type=int, default=2000,
                        help="sequential warm round-trips for the p50")
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--small", action="store_true",
                        help="CI preset: smaller tuples, 1200-query storm")
    parser.add_argument("--external", default=None, metavar="HOST:PORT",
                        help="target a running `repro serve` instead of "
                             "booting in-process")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="interpose the deterministic wire chaos proxy "
                             "with this seed; the storm then runs through "
                             "retrying clients and the zero-wrong-answers "
                             "+ exact-dedup contract is enforced")
    parser.add_argument("--chaos-timeout", type=float, default=1.0,
                        help="per-attempt client timeout under chaos "
                             "(dropped lines cost one of these)")
    parser.add_argument("--max-warm-p50-ms", type=float, default=1.0)
    parser.add_argument("--max-resilience-overhead-pct", type=float,
                        default=5.0,
                        help="bound on the resilient client's extra warm "
                             "p50 over the raw client, in percent")
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()
    if args.small:
        args.instructions = min(args.instructions, 1500)
        args.profiles = min(args.profiles, 4)
        args.seeds_per_profile = 1
        args.campaigns = min(args.campaigns, 2)
        args.trials = min(args.trials, 20)
        args.storm = min(args.storm, 1200)
        args.warm_samples = min(args.warm_samples, 500)
    if args.chaos_seed is not None and args.small:
        # Dropped lines stall a retrying client for a full timeout;
        # keep the smoke matrix quick.
        args.storm = min(args.storm, 400)

    failures = []
    with use_runtime():
        requests = build_requests(args)
        print(f"mix: {len(requests)} distinct keys "
              f"({args.profiles} profiles x {args.seeds_per_profile} seeds "
              f"+ {args.campaigns} campaigns) x {args.instructions} "
              f"instructions; storm {args.storm} over "
              f"{args.connections} connections"
              + (f"; wire chaos seed {args.chaos_seed}"
                 if args.chaos_seed is not None else ""))
        goldens = golden_answers(requests)
        # The server must recompute every cold key for real — don't let
        # the oracle pass leave warm memos behind for an in-process run.
        clear_caches()
        body = asyncio.run(drive(args, requests, goldens, failures))
    clear_caches()

    record = {
        "mode": "external" if args.external else "in-process",
        "config": {
            "instructions": args.instructions,
            "profiles": args.profiles,
            "seeds_per_profile": args.seeds_per_profile,
            "campaigns": args.campaigns,
            "trials": args.trials,
            "seed": args.seed,
            "chaos_seed": args.chaos_seed,
        },
        **body,
        "requirements": {"max_warm_p50_ms": args.max_warm_p50_ms,
                         "max_resilience_overhead_pct":
                             args.max_resilience_overhead_pct,
                         "one_compute_per_distinct_key": True,
                         "byte_identical_to_direct_calls": True,
                         "zero_wrong_answers_under_chaos": True},
        "checks": {
            "byte_identical": not any("differs" in f for f in failures),
            "dedup_exact": not any("dedup" in f for f in failures),
            "warm_p50_in_bound": not any(f.startswith("warm p50")
                                         for f in failures),
            "resilience_overhead_in_bound": not any(
                "resilient-client" in f for f in failures),
        },
        "passed": not failures,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"warm p50 {body['latency_ms']['warm_p50']:.3f} ms "
          f"(resilient {body['resilience']['warm_p50_resilient_ms']:.3f} ms, "
          f"+{body['resilience']['overhead_pct']:.1f}%), storm "
          f"{args.storm} requests in {body['seconds']['storm']}s "
          f"({body['throughput_qps']} qps), "
          f"{body['stats_delta']['serve_cold_computes']} cold computes for "
          f"{len(requests)} keys -> {args.output}")
    if args.chaos_seed is not None:
        chaos = body["chaos"]
        print(f"chaos: {chaos['storm_answered']}/{args.storm} answered "
              f"under fire ({chaos['storm_failed_structured']} structured "
              f"failures, 0 wrong answers required), wire faults: "
              + ", ".join(f"{k.replace('wire_', '')} {v}"
                          for k, v in sorted(chaos["wire"].items())
                          if k.startswith("wire_") and v))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
