"""Load harness for the AVF query service.

Drives thousands of concurrent mixed warm/cold queries at an
:class:`AvfServer` — in-process by default, or a live ``repro serve``
process via ``--external HOST:PORT`` — and asserts the service's three
contracts on the way through:

* **byte identity**: every served answer (warm, cold, or coalesced)
  is byte-identical to encoding a direct ``run_benchmark`` /
  ``run_campaign`` call for the same tuple;
* **exact dedup**: across the whole run the server performs exactly one
  cold computation per distinct key — proven by the server's own
  ``stats`` counters, not inferred from timing;
* **warm latency**: warm-key answers come back with a p50 under
  ``--max-warm-p50-ms`` (default 1 ms on localhost).

Results land in ``BENCH_serve.json``; the exit status is non-zero if any
check fails.

    PYTHONPATH=src python tools/bench_serve.py
    PYTHONPATH=src python tools/bench_serve.py --small              # CI smoke
    PYTHONPATH=src python tools/bench_serve.py --small --external 127.0.0.1:8787
"""

from __future__ import annotations

import argparse
import asyncio
import json
import statistics
import sys
import time
from pathlib import Path

from repro.experiments.common import (
    ExperimentSettings,
    clear_caches,
    run_benchmark,
)
from repro.faults.campaign import run_campaign
from repro.runtime.context import use_runtime
from repro.serve.client import AsyncServeClient, parse_address
from repro.serve.protocol import (
    canonical_dumps,
    encode_benchmark,
    encode_campaign,
    parse_query,
)
from repro.serve.server import AvfServer, ServeConfig
from repro.workloads.spec2000 import ALL_PROFILES, get_profile


def build_requests(args):
    """The distinct-key query mix: AVF points plus a few campaigns."""
    names = [profile.name for profile in ALL_PROFILES][:args.profiles]
    requests = []
    for seed_offset in range(args.seeds_per_profile):
        for name in names:
            requests.append({
                "op": "avf", "profile": name,
                "target_instructions": args.instructions,
                "seed": args.seed + seed_offset,
            })
    for name in names[:args.campaigns]:
        requests.append({
            "op": "campaign", "profile": name,
            "target_instructions": args.instructions,
            "seed": args.seed, "trials": args.trials,
            "campaign_seed": args.seed + 1, "parity": True,
        })
    return requests


def golden_answers(requests):
    """Direct engine answers through the service encoders — the oracle."""
    goldens = []
    for request in requests:
        query = parse_query(request)
        run = run_benchmark(
            get_profile(query.profile_name),
            ExperimentSettings(target_instructions=query.target_instructions,
                               seed=query.seed),
            machine=query.machine)
        if query.op == "avf":
            goldens.append(canonical_dumps(encode_benchmark(run)))
        else:
            goldens.append(canonical_dumps(encode_campaign(run_campaign(
                run.program, run.execution, run.pipeline, query.campaign))))
    return goldens


async def fetch_stats(client):
    return (await client.request({"op": "stats"}))["value"]


async def drive(args, requests, goldens, failures):
    """All serving phases under one event loop; returns the record body."""
    server = None
    if args.external:
        host, port = parse_address(args.external)
    else:
        server = AvfServer(ServeConfig(host="127.0.0.1", port=0))
        await server.start()
        host, port = "127.0.0.1", server.port
    pool = []
    try:
        for _ in range(args.connections):
            pool.append(await AsyncServeClient().connect(host, port))
        control = pool[0]
        before = await fetch_stats(control)

        # ---- phase 1: warm half the keys (their storm repeats are warm,
        # the other half's first touch happens *inside* the storm) -------
        prewarmed = list(range(0, len(requests), 2))
        started = time.perf_counter()
        for index in prewarmed:
            final = await control.request(dict(requests[index]))
            if canonical_dumps(final["value"]) != goldens[index]:
                failures.append(f"prewarm answer {index} differs from the "
                                f"direct engine call")
        prewarm_s = time.perf_counter() - started

        # ---- phase 2: the storm — concurrent mixed warm/cold ------------
        async def one(task_index):
            index = (task_index * 7) % len(requests)
            t0 = time.perf_counter()
            final = await pool[task_index % len(pool)].request(
                dict(requests[index]))
            elapsed = time.perf_counter() - t0
            return index, final, elapsed

        started = time.perf_counter()
        outcomes = await asyncio.gather(*(one(i) for i in range(args.storm)))
        storm_s = time.perf_counter() - started
        storm_latencies = []
        for index, final, elapsed in outcomes:
            storm_latencies.append(elapsed)
            if canonical_dumps(final["value"]) != goldens[index]:
                failures.append(f"storm answer for key {index} differs "
                                f"from the direct engine call")

        # ---- phase 3: warm-key latency, low-contention ------------------
        warm_latencies = []
        for i in range(args.warm_samples):
            request = dict(requests[i % len(requests)])
            t0 = time.perf_counter()
            final = await control.request(request)
            warm_latencies.append(time.perf_counter() - t0)
            if final["status"] != "warm":
                failures.append(f"latency-phase answer {i} was not warm "
                                f"(status {final['status']!r})")
        after = await fetch_stats(control)
    finally:
        for client in pool:
            await client.close()
        if server is not None:
            await server.stop()

    delta = {key: after.get(key, 0) - before.get(key, 0)
             for key in ("serve_requests", "serve_cold_computes",
                         "serve_warm_hits", "serve_coalesced",
                         "serve_lru_evictions", "serve_errors")}
    warm_p50 = statistics.median(warm_latencies) * 1000
    warm_p95 = sorted(warm_latencies)[int(0.95 * len(warm_latencies))] * 1000

    if delta["serve_cold_computes"] != len(requests):
        failures.append(
            f"dedup violated: {delta['serve_cold_computes']} cold "
            f"computations for {len(requests)} distinct keys")
    if delta["serve_errors"]:
        failures.append(f"{delta['serve_errors']} serve errors during "
                        f"the run")
    if warm_p50 >= args.max_warm_p50_ms:
        failures.append(f"warm p50 {warm_p50:.3f} ms is above the "
                        f"{args.max_warm_p50_ms} ms bound")

    return {
        "counts": {
            "distinct_keys": len(requests),
            "prewarmed_keys": len(prewarmed),
            "storm_requests": args.storm,
            "warm_samples": args.warm_samples,
            "connections": args.connections,
            "total_requests": (len(prewarmed) + args.storm
                               + args.warm_samples),
        },
        "seconds": {"prewarm": round(prewarm_s, 3),
                    "storm": round(storm_s, 3)},
        "latency_ms": {
            "warm_p50": round(warm_p50, 4),
            "warm_p95": round(warm_p95, 4),
            "storm_p50": round(
                statistics.median(storm_latencies) * 1000, 3),
            "storm_p95": round(
                sorted(storm_latencies)[
                    int(0.95 * len(storm_latencies))] * 1000, 3),
        },
        "throughput_qps": round(args.storm / storm_s, 1) if storm_s else None,
        "stats_delta": delta,
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Concurrency/latency harness for the AVF query "
                    "service; records BENCH_serve.json.")
    parser.add_argument("--instructions", type=int, default=4000)
    parser.add_argument("--profiles", type=int, default=6,
                        help="distinct benchmark profiles in the mix")
    parser.add_argument("--seeds-per-profile", type=int, default=2)
    parser.add_argument("--campaigns", type=int, default=4,
                        help="campaign queries appended to the mix")
    parser.add_argument("--trials", type=int, default=60)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--storm", type=int, default=2000,
                        help="concurrent mixed warm/cold requests")
    parser.add_argument("--warm-samples", type=int, default=2000,
                        help="sequential warm round-trips for the p50")
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--small", action="store_true",
                        help="CI preset: smaller tuples, 1200-query storm")
    parser.add_argument("--external", default=None, metavar="HOST:PORT",
                        help="target a running `repro serve` instead of "
                             "booting in-process")
    parser.add_argument("--max-warm-p50-ms", type=float, default=1.0)
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args()
    if args.small:
        args.instructions = min(args.instructions, 1500)
        args.profiles = min(args.profiles, 4)
        args.seeds_per_profile = 1
        args.campaigns = min(args.campaigns, 2)
        args.trials = min(args.trials, 20)
        args.storm = min(args.storm, 1200)
        args.warm_samples = min(args.warm_samples, 500)

    failures = []
    with use_runtime():
        requests = build_requests(args)
        print(f"mix: {len(requests)} distinct keys "
              f"({args.profiles} profiles x {args.seeds_per_profile} seeds "
              f"+ {args.campaigns} campaigns) x {args.instructions} "
              f"instructions; storm {args.storm} over "
              f"{args.connections} connections")
        goldens = golden_answers(requests)
        # The server must recompute every cold key for real — don't let
        # the oracle pass leave warm memos behind for an in-process run.
        clear_caches()
        body = asyncio.run(drive(args, requests, goldens, failures))
    clear_caches()

    record = {
        "mode": "external" if args.external else "in-process",
        "config": {
            "instructions": args.instructions,
            "profiles": args.profiles,
            "seeds_per_profile": args.seeds_per_profile,
            "campaigns": args.campaigns,
            "trials": args.trials,
            "seed": args.seed,
        },
        **body,
        "requirements": {"max_warm_p50_ms": args.max_warm_p50_ms,
                         "one_compute_per_distinct_key": True,
                         "byte_identical_to_direct_calls": True},
        "checks": {
            "byte_identical": not any("differs" in f for f in failures),
            "dedup_exact": not any("dedup" in f for f in failures),
            "warm_p50_in_bound": not any("p50" in f for f in failures),
        },
        "passed": not failures,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"warm p50 {body['latency_ms']['warm_p50']:.3f} ms, storm "
          f"{args.storm} requests in {body['seconds']['storm']}s "
          f"({body['throughput_qps']} qps), "
          f"{body['stats_delta']['serve_cold_computes']} cold computes for "
          f"{len(requests)} keys -> {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
