"""Determinism gate for the FIT design-space sweep exhibit.

Runs the ``fitsweep`` exhibit twice — serial and with a sharded worker
pool — and requires the *formatted text* to be byte-identical: the
multi-bit campaigns underneath ride per-trial seed streams, so any
``--jobs N`` must reproduce the serial tallies bit-for-bit, and the FIT
algebra on top is closed-form. A scalar-vs-batched pass re-runs the
serial sweep with ``--no-batch-strikes`` semantics and must also match
byte-for-byte.

Results (timings, per-pass campaign counters, the equality verdicts,
and the exhibit text itself) land in ``BENCH_fit.json``; the formatted
exhibit is written to ``benchmarks/results/fitsweep.txt`` so the
committed record tracks what the sweep actually reports.

    PYTHONPATH=src python tools/bench_fit.py
    PYTHONPATH=src python tools/bench_fit.py --small   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import fitsweep
from repro.experiments.common import ExperimentSettings, clear_caches
from repro.runtime.context import use_runtime


def run_pass(settings, trials, preset, jobs, batch_strikes=True):
    """One full sweep under its own runtime; returns (text, secs, sims)."""
    clear_caches()
    with use_runtime(jobs=jobs, batch_strikes=batch_strikes) as context:
        started = time.perf_counter()
        result = fitsweep.run(settings, trials=trials, preset_name=preset)
        text = fitsweep.format_result(result)
        seconds = time.perf_counter() - started
        counters = {name: context.telemetry.counters[name]
                    for name in ("campaign_trials", "mbu_multi_bit",
                                 "ecc_corrected", "ecc_detected",
                                 "ecc_escaped")}
    return text, seconds, counters


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Byte-stability gate for the fitsweep exhibit; "
                    "records BENCH_fit.json.")
    parser.add_argument("--instructions", type=int, default=20_000)
    parser.add_argument("--trials", type=int, default=400)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker count for the sharded pass (default 2)")
    parser.add_argument("--preset", default="terrestrial",
                        choices=("terrestrial", "avionics", "space"))
    parser.add_argument("--small", action="store_true",
                        help="CI preset: 6000 instructions x 120 trials")
    parser.add_argument("--output", default="BENCH_fit.json")
    parser.add_argument("--exhibit-output",
                        default="benchmarks/results/fitsweep.txt")
    args = parser.parse_args()
    if args.small:
        args.instructions = min(args.instructions, 6000)
        args.trials = min(args.trials, 120)

    settings = ExperimentSettings(target_instructions=args.instructions,
                                  seed=args.seed)
    print(f"fitsweep: {args.instructions} instructions, {args.trials} "
          f"trials per campaign, preset {args.preset!r}")

    serial_text, serial_s, serial_sims = run_pass(
        settings, args.trials, args.preset, jobs=1)
    print(f"serial: {serial_s:.2f}s  {serial_sims}")
    sharded_text, sharded_s, sharded_sims = run_pass(
        settings, args.trials, args.preset, jobs=args.jobs)
    print(f"jobs={args.jobs}: {sharded_s:.2f}s  {sharded_sims}")
    scalar_text, scalar_s, scalar_sims = run_pass(
        settings, args.trials, args.preset, jobs=1, batch_strikes=False)
    print(f"scalar (no batching): {scalar_s:.2f}s  {scalar_sims}")
    clear_caches()

    failures = []
    if sharded_text != serial_text:
        failures.append(
            f"jobs={args.jobs} exhibit text differs from serial")
    if scalar_text != serial_text:
        failures.append("scalar exhibit text differs from batched serial")
    if sharded_sims != serial_sims:
        failures.append(
            f"jobs={args.jobs} campaign counters differ from serial: "
            f"{sharded_sims} vs {serial_sims}")
    if scalar_sims != serial_sims:
        failures.append(
            f"scalar campaign counters differ from batched: "
            f"{scalar_sims} vs {serial_sims}")
    if not serial_sims["mbu_multi_bit"]:
        failures.append("sweep drew no multi-bit bursts; preset not wired")

    exhibit_path = Path(args.exhibit_output)
    exhibit_path.parent.mkdir(parents=True, exist_ok=True)
    exhibit_path.write_text(serial_text + "\n")

    record = {
        "settings": {"instructions": args.instructions,
                     "trials": args.trials, "seed": args.seed,
                     "preset": args.preset, "jobs": args.jobs},
        "seconds": {"serial": round(serial_s, 3),
                    "sharded": round(sharded_s, 3),
                    "scalar": round(scalar_s, 3)},
        "counters": serial_sims,
        "byte_identical": {
            "sharded_vs_serial": sharded_text == serial_text,
            "scalar_vs_batched": scalar_text == serial_text,
        },
        "exhibit": args.exhibit_output,
        "passed": not failures,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"byte-identical across jobs and batching -> {args.output}"
          if not failures else f"-> {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
