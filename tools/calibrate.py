"""Calibration harness: per-profile and aggregate stats vs paper targets.

Usage: python tools/calibrate.py [n_profiles] [target_instructions]

Paper targets (baseline, no squashing): IPC 1.21; residency 29 % ACE /
33 % un-ACE / 8 % Ex-ACE / 30 % idle; false-DUE composition ~18 %
wrong-path+pred-false, 49 % neutral, 14 % FDD-reg, 8 % TDD-reg, 12 % mem.
Squash-L1: IPC 1.19, SDC 22 %, DUE 51 %. Squash-L0: 1.09 / 19 % / 48 %.
"""

import sys

from repro.experiments.common import ExperimentSettings, run_benchmark
from repro.pipeline.config import Trigger
from repro.workloads.spec2000 import ALL_PROFILES


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    target = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    profiles = ALL_PROFILES[::max(1, len(ALL_PROFILES) // count)][:count]
    settings = ExperimentSettings(target_instructions=target)

    rows = []
    for profile in profiles:
        base = run_benchmark(profile, settings, Trigger.NONE)
        l1 = run_benchmark(profile, settings, Trigger.L1_MISS)
        l0 = run_benchmark(profile, settings, Trigger.L0_MISS)
        r = base.report
        res = r.residency_summary()
        comps = r.false_due_components()
        fdue = max(1e-9, r.false_due_avf)
        share = {k: v / fdue for k, v in comps.items()}
        rows.append((profile, base, l1, l0))
        print(
            f"{profile.name:18s} {profile.suite} ipc={r.ipc:5.2f} "
            f"sdc={r.sdc_avf:5.1%} due={r.due_avf:5.1%} "
            f"idle={res['idle']:5.1%} exA={res['ex_ace']:4.1%} "
            f"unrd={res['unread']:4.1%} | "
            f"wp+pf={share.get('wrong_path',0)+share.get('pred_false',0):4.1%} "
            f"neu={share.get('neutral',0):4.1%} "
            f"fddR={share.get('fdd_reg',0)+share.get('fdd_reg_return',0):4.1%} "
            f"tddR={share.get('tdd_reg',0):4.1%} "
            f"mem={share.get('fdd_mem',0)+share.get('tdd_mem',0):4.1%} | "
            f"L1: ipc={l1.report.ipc:5.2f} sdc={l1.report.sdc_avf:5.1%} "
            f"due={l1.report.due_avf:5.1%}  "
            f"L0: ipc={l0.report.ipc:5.2f} sdc={l0.report.sdc_avf:5.1%}"
        )

    def avg(get):
        return sum(get(row) for row in rows) / len(rows)

    print("-" * 100)
    print(f"AVG base : ipc={avg(lambda r: r[1].report.ipc):5.2f} "
          f"sdc={avg(lambda r: r[1].report.sdc_avf):5.1%} "
          f"due={avg(lambda r: r[1].report.due_avf):5.1%} "
          f"idle={avg(lambda r: r[1].report.residency_summary()['idle']):5.1%} "
          f"exA={avg(lambda r: r[1].report.residency_summary()['ex_ace']):5.1%} "
          f"falseDUE={avg(lambda r: r[1].report.false_due_avf):5.1%}")
    print(f"AVG L1sq : ipc={avg(lambda r: r[2].report.ipc):5.2f} "
          f"sdc={avg(lambda r: r[2].report.sdc_avf):5.1%} "
          f"due={avg(lambda r: r[2].report.due_avf):5.1%}")
    print(f"AVG L0sq : ipc={avg(lambda r: r[3].report.ipc):5.2f} "
          f"sdc={avg(lambda r: r[3].report.sdc_avf):5.1%} "
          f"due={avg(lambda r: r[3].report.due_avf):5.1%}")
    print("TARGET   : base ipc=1.21 sdc=29% due=62% idle=30% exA=8% "
          "falseDUE=33% | L1 ipc=1.19 sdc=22% due=51% | L0 ipc=1.09 sdc=19% due=48%")


if __name__ == "__main__":
    main()
