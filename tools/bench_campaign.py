"""Before/after benchmark of the strike-evaluation fast path.

Times one parity fault-injection campaign three ways on the same
workload and strike sequence:

* ``seed`` — the seed-era loop: one throwaway evaluator per trial, no
  memoization, no static filter (every committed read strike re-executes
  the whole program);
* ``cold`` — the campaign-scoped evaluator with an empty effect oracle
  (memo + static filter fill in as the campaign runs, and the table is
  persisted through the result cache);
* ``warm`` — the same campaign re-run against the persisted oracle
  table. The campaign *tally* cache entry is deleted first so all trials
  genuinely run; only per-strike re-execution is skipped.

The warm strike *engine* is then timed head-to-head — the same block of
trials classified once through the scalar per-trial loop
(``--no-batch-strikes``) and once through the vectorised strike batcher,
both against the persisted oracle table — to measure what array
sampling and classification buy per trial. Campaign-level plumbing
(cache-key hashing, result persistence) is identical in both modes and
excluded, since it would otherwise swamp the per-trial difference.

All paths must produce bit-identical outcome tallies — the run aborts
if they do not. Results land in ``BENCH_campaign.json`` and the process
exits non-zero when the warm speedup drops below ``--min-speedup`` or
the batched-vs-scalar speedup drops below ``--min-batch-speedup``.

    PYTHONPATH=src python tools/bench_campaign.py
    PYTHONPATH=src python tools/bench_campaign.py \
        --trials 200 --instructions 8000 --min-speedup 1.5
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.due.tracking import TrackingLevel
from repro.experiments.common import ExperimentSettings, run_benchmark
from repro.faults.batch import BatchClassifier, draw_strike_batch
from repro.faults.campaign import (
    CampaignConfig,
    run_campaign,
    run_trial_block,
    trial_seed,
)
from repro.faults.injector import StrikeEvaluator, evaluate_strike
from repro.faults.model import StrikeModel
from repro.faults.oracle import load_persisted, oracle_cache_key
from repro.pipeline.config import Trigger
from repro.runtime.cache import cache_key
from repro.runtime.context import use_runtime
from repro.util.rng import DeterministicRng
from repro.workloads.spec2000 import get_profile


def seed_slow_path(run, config):
    """The seed-era campaign loop: per-trial evaluator, no fast path."""
    sampler = StrikeModel(run.pipeline)
    counts: Counter = Counter()
    for index in range(config.trials):
        rng = DeterministicRng(trial_seed(config, run.program.name, index))
        verdict = evaluate_strike(
            sampler.sample(rng), run.program, run.execution,
            parity=config.parity, tracking=config.tracking,
            pet_entries=config.pet_entries, ecc=config.ecc)
        counts[verdict.outcome] += 1
    return counts


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def oracle_counters(telemetry):
    return {name: telemetry.counters[name]
            for name in ("oracle_memo_hits", "oracle_static_kills",
                         "oracle_executions")}


def batch_counters(telemetry):
    return {name: telemetry.counters[name]
            for name in ("batch_trials", "batch_vector_kills",
                         "batch_scalar_kills", "batch_reexecutions")}


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Time the strike-evaluation fast path against the "
                    "seed-era slow path and record BENCH_campaign.json.")
    parser.add_argument("--benchmark", default="crafty")
    parser.add_argument("--instructions", type=int, default=12_000)
    parser.add_argument("--trials", type=int, default=500)
    parser.add_argument("--seed", type=int, default=2004)
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required warm-vs-seed wall-clock ratio "
                             "(default 3.0)")
    parser.add_argument("--min-batch-speedup", type=float, default=2.0,
                        help="required warm batched-vs-scalar wall-clock "
                             "ratio (default 2.0)")
    parser.add_argument("--output", default="BENCH_campaign.json")
    args = parser.parse_args()

    settings = ExperimentSettings(target_instructions=args.instructions,
                                  seed=args.seed)
    config = CampaignConfig(trials=args.trials, seed=args.seed, parity=True,
                            tracking=TrackingLevel.PARITY_ONLY)
    run = run_benchmark(get_profile(args.benchmark), settings, Trigger.NONE)
    print(f"workload: {args.benchmark} x{args.instructions} "
          f"({len(run.execution.trace)} committed), "
          f"{args.trials}-trial parity campaign")

    golden, seed_s = timed(lambda: seed_slow_path(run, config))
    print(f"seed slow path: {seed_s:.2f}s")

    with TemporaryDirectory(prefix="bench-oracle-") as cache_dir:
        with use_runtime(cache_dir=cache_dir) as context:
            cold, cold_s = timed(lambda: run_campaign(
                run.program, run.execution, run.pipeline, config))
            cold_oracle = oracle_counters(context.telemetry)
        print(f"cold fast path: {cold_s:.2f}s  {cold_oracle}")

        with use_runtime(cache_dir=cache_dir) as context:
            # Drop the tally entry (keep the oracle table) so the warm
            # run re-evaluates every trial against the persisted memo.
            tally_key = cache_key("campaign", run.program, run.pipeline,
                                  config)
            context.cache.path_for(tally_key).unlink()
            warm, warm_s = timed(lambda: run_campaign(
                run.program, run.execution, run.pipeline, config))
            warm_oracle = oracle_counters(context.telemetry)
        print(f"warm fast path: {warm_s:.2f}s  {warm_oracle}")

        # Head-to-head strike engine against the persisted oracle: the
        # scalar per-trial loop vs the vectorised strike batcher. Same
        # memo table, same strike sequence — the difference is pure
        # sampling/classification machinery. Best-of-5, interleaved, to
        # shrug off scheduler noise.
        with use_runtime(cache_dir=cache_dir) as context:
            table = load_persisted(context.cache,
                                   oracle_cache_key(run.program))

    def preloaded_evaluator():
        evaluator = StrikeEvaluator(
            run.program, run.execution, parity=config.parity,
            tracking=config.tracking, pet_entries=config.pet_entries,
            ecc=config.ecc)
        evaluator.oracle.preload(table)
        return evaluator

    def scalar_engine():
        return run_trial_block(run.program, run.execution, run.pipeline,
                               config, 0, config.trials,
                               evaluator=preloaded_evaluator())[0]

    last_classifier = {}

    def batched_engine():
        evaluator = preloaded_evaluator()
        strikes = draw_strike_batch(run.pipeline, config, run.program.name,
                                    0, config.trials)
        classifier = BatchClassifier(evaluator, run.pipeline)
        last_classifier["value"] = classifier
        return run_trial_block(run.program, run.execution, run.pipeline,
                               config, 0, config.trials,
                               evaluator=evaluator, strikes=strikes,
                               classifier=classifier)[0]

    scalar = batched = None
    scalar_s = batched_s = float("inf")
    for _ in range(5):
        scalar, seconds = timed(scalar_engine)
        scalar_s = min(scalar_s, seconds)
        batched, seconds = timed(batched_engine)
        batched_s = min(batched_s, seconds)
    batch_stats = last_classifier["value"].counters()
    print(f"warm scalar engine: {scalar_s * 1000:.1f}ms "
          f"({config.trials / scalar_s:,.0f} trials/s)")
    print(f"warm batched engine: {batched_s * 1000:.1f}ms "
          f"({config.trials / batched_s:,.0f} trials/s)  {batch_stats}")

    failures = []
    if cold.counts != golden or warm.counts != golden:
        failures.append("fast-path tallies differ from the seed slow path")
    if scalar != golden or batched != golden:
        failures.append("batched/scalar tallies differ from the seed "
                        "slow path")
    if warm_oracle["oracle_memo_hits"] <= 0:
        failures.append("warm run never hit the persisted oracle")
    if batch_stats["batch_trials"] != args.trials:
        failures.append("batched run did not classify every trial through "
                        "the batcher")
    speedup_warm = seed_s / warm_s if warm_s > 0 else float("inf")
    speedup_cold = seed_s / cold_s if cold_s > 0 else float("inf")
    speedup_batch = (scalar_s / batched_s if batched_s > 0
                     else float("inf"))
    if speedup_warm < args.min_speedup:
        failures.append(f"warm speedup {speedup_warm:.2f}x below the "
                        f"required {args.min_speedup:.2f}x")
    if speedup_batch < args.min_batch_speedup:
        failures.append(f"batched speedup {speedup_batch:.2f}x below the "
                        f"required {args.min_batch_speedup:.2f}x")

    record = {
        "benchmark": args.benchmark,
        "instructions": args.instructions,
        "committed": len(run.execution.trace),
        "trials": args.trials,
        "campaign": {"parity": True, "tracking": "PARITY_ONLY",
                     "seed": args.seed},
        "seconds": {"seed_slow_path": round(seed_s, 3),
                    "cold_fast_path": round(cold_s, 3),
                    "warm_fast_path": round(warm_s, 3),
                    "warm_scalar_engine": round(scalar_s, 4),
                    "warm_batched_engine": round(batched_s, 4)},
        "trials_per_second": {
            "warm_scalar": round(config.trials / scalar_s, 1)
            if scalar_s > 0 else None,
            "warm_batched": round(config.trials / batched_s, 1)
            if batched_s > 0 else None},
        "speedup": {"cold_vs_seed": round(speedup_cold, 2),
                    "warm_vs_seed": round(speedup_warm, 2),
                    "batched_vs_scalar": round(speedup_batch, 2)},
        "oracle": {"cold": cold_oracle, "warm": warm_oracle},
        "batch": batch_stats,
        "tallies_identical": (cold.counts == golden
                              and warm.counts == golden
                              and scalar == golden
                              and batched == golden),
        "min_speedup_required": args.min_speedup,
        "min_batch_speedup_required": args.min_batch_speedup,
        "passed": not failures,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"cold {speedup_cold:.2f}x, warm {speedup_warm:.2f}x vs seed, "
          f"batched {speedup_batch:.2f}x vs scalar -> {args.output}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
