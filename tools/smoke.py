"""One-minute smoke check of every deliverable.

Runs a miniature version of each layer — synthesis, execution, analysis,
timing, tracking, injection, one exhibit — and prints PASS/FAIL lines.
Useful as a quick environment check before the full test/bench runs.

    python tools/smoke.py
"""

from __future__ import annotations

import sys
import time


def check(label, fn):
    started = time.time()
    try:
        fn()
    except Exception as error:  # noqa: BLE001 - smoke harness
        print(f"FAIL {label}: {error!r}")
        return False
    print(f"PASS {label} ({time.time() - started:.1f}s)")
    return True


def main() -> int:
    from repro import (
        CampaignConfig,
        ExperimentSettings,
        Trigger,
        TrackingLevel,
        analyze_deadness,
        due_avf_with_tracking,
        get_profile,
        run_benchmark,
        run_campaign,
    )
    from repro.experiments import table1

    settings = ExperimentSettings(target_instructions=6000, seed=1)
    state = {}

    def bench():
        state["run"] = run_benchmark(get_profile("crafty"), settings,
                                     Trigger.NONE)
        assert state["run"].report.sdc_avf > 0

    def squash():
        squashed = run_benchmark(get_profile("crafty"), settings,
                                 Trigger.L1_MISS)
        assert squashed.report.sdc_avf < state["run"].report.sdc_avf

    def tracking():
        due = due_avf_with_tracking(state["run"].report.breakdown,
                                    TrackingLevel.MEM_PI)
        assert abs(due - state["run"].report.breakdown.true_due_avf) < 1e-9

    def injection():
        run = state["run"]
        campaign = run_campaign(run.program, run.execution, run.pipeline,
                                CampaignConfig(trials=40, seed=1))
        assert campaign.trials == 40

    def exhibit():
        result = table1.run(settings, [get_profile("crafty")])
        assert len(result.rows) == 3

    ok = True
    ok &= check("benchmark pipeline", bench)
    ok &= check("exposure squash", squash)
    ok &= check("false-DUE tracking", tracking)
    ok &= check("fault injection", injection)
    ok &= check("exhibit harness", exhibit)
    print("SMOKE " + ("PASSED" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
