"""Legacy setup shim.

The canonical metadata lives in pyproject.toml. This file exists so the
package can still be installed in constrained offline environments where
the `wheel` package (needed for PEP-660 editable installs with older
setuptools) is unavailable:

    python setup.py develop    # or: pip install -e . --no-use-pep517
"""

from setuptools import setup

setup()
