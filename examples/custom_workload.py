"""Bring your own workload: profiles, raw programs, and custom machines.

Three escalating levels of control over the evaluation substrate:

1. derive a new :class:`BenchmarkProfile` (a hypothetical pointer-chasing
   workload) and run it through the standard flow;
2. hand-write a REPRO-64 program with the CodeBuilder and measure it;
3. change the machine (a half-size instruction queue with squashing).

    python examples/custom_workload.py
"""

from dataclasses import replace

from repro import (
    BenchmarkProfile,
    ExperimentSettings,
    FunctionalSimulator,
    MachineConfig,
    PipelineSimulator,
    SquashConfig,
    Trigger,
    analyze_deadness,
    compute_iq_avf,
    run_benchmark,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.workloads.builder import CodeBuilder


def custom_profile() -> None:
    print("=== 1. custom profile: 'chaser' (pathological pointer chasing)")
    chaser = BenchmarkProfile(
        name="chaser",
        suite="int",
        w_rand_load=4.0,  # random loads into the L2-resident region
        w_cold_load=1.0,
        w_noop=20.0,
        w_branch_rand=2.0,
        fetch_bubble_prob=0.2,
    )
    settings = ExperimentSettings(target_instructions=15_000)
    base = run_benchmark(chaser, settings, Trigger.NONE).report
    squashed = run_benchmark(chaser, settings, Trigger.L1_MISS).report
    print(f"  baseline : IPC {base.ipc:.2f}, SDC AVF {base.sdc_avf:.1%}")
    print(f"  squash-L1: IPC {squashed.ipc:.2f}, "
          f"SDC AVF {squashed.sdc_avf:.1%}")
    print(f"  -> memory-bound code gives squashing a lot to remove\n")


def hand_written_program() -> None:
    print("=== 2. hand-written program through the same pipeline")
    builder = CodeBuilder()
    builder.begin_function("main")
    builder.emit(Instruction(Opcode.MOVI, r1=1, imm=200))  # counter
    builder.emit(Instruction(Opcode.MOVI, r1=2, imm=0x1000))  # base
    head = builder.label("loop")
    builder.bind(head)
    builder.emit(Instruction(Opcode.LD, r1=3, r2=2, imm=0))
    builder.emit(Instruction(Opcode.ADD, r1=4, r2=4, r3=3))
    builder.emit(Instruction(Opcode.NOP))
    builder.emit(Instruction(Opcode.MOVI, r1=9, imm=7))  # dead every trip
    builder.emit(Instruction(Opcode.ST, r1=4, r2=2, imm=0))
    builder.emit(Instruction(Opcode.ADDI, r1=1, r2=1, imm=-1))
    builder.emit(Instruction(Opcode.CMP_NE, r1=5, r2=1, r3=0))
    builder.emit_control(Opcode.BR, head, qp=5)
    builder.emit(Instruction(Opcode.OUT, r2=4))
    builder.emit(Instruction(Opcode.HALT))
    builder.end_function()
    program = builder.build(name="handwritten")

    execution = FunctionalSimulator(program).run()
    deadness = analyze_deadness(execution)
    pipeline = PipelineSimulator(program, execution.trace,
                                 MachineConfig(fetch_bubble_prob=0.0)).run()
    report = compute_iq_avf("handwritten", pipeline, deadness)
    print(f"  {len(execution.trace)} instructions, IPC {report.ipc:.2f}")
    print(f"  dead fraction {deadness.dead_fraction():.1%} "
          f"(the MOVI r9 is rediscovered as dead every iteration)")
    print(f"  SDC AVF {report.sdc_avf:.1%}, DUE AVF {report.due_avf:.1%}\n")


def custom_machine() -> None:
    print("=== 3. custom machine: 32-entry IQ with L0-miss squashing")
    from repro.workloads.spec2000 import get_profile
    from repro.experiments.common import functional_parts
    from repro.avf.occupancy import compute_breakdown

    settings = ExperimentSettings(target_instructions=15_000)
    profile = get_profile("swim")
    program, execution, deadness = functional_parts(profile, settings)
    machine = MachineConfig(
        iq_entries=32,
        fetch_bubble_prob=profile.fetch_bubble_prob,
        squash=SquashConfig(trigger=Trigger.L0_MISS),
    )
    pipeline = PipelineSimulator(program, execution.trace, machine).run()
    breakdown = compute_breakdown(pipeline, deadness)
    print(f"  IPC {pipeline.ipc:.2f}, SDC AVF {breakdown.sdc_avf:.1%}, "
          f"squashes {pipeline.stats['squash_events']:.0f}")


if __name__ == "__main__":
    custom_profile()
    hand_written_program()
    custom_machine()
