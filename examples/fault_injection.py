"""Fault injection vs ACE analysis: validating the AVF methodology.

Injects single-bit strikes into the instruction queue of a running
benchmark, classifies every outcome per the paper's Figure 1, and compares
the statistical AVF estimates against the analytical (ACE-analysis) ones —
quantifying how conservative ACE analysis is, and confirming that the π-bit
tracking never suppresses a harmful error (up to the documented trace-replay
artifact).

    python examples/fault_injection.py [trials]
"""

import sys

from repro import (
    CampaignConfig,
    ExperimentSettings,
    Trigger,
    TrackingLevel,
    get_profile,
    run_benchmark,
    run_campaign,
)
from repro.due.outcomes import FaultOutcome


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    settings = ExperimentSettings(target_instructions=15_000)
    bench = run_benchmark(get_profile("mcf"), settings, Trigger.NONE)

    print(f"injecting {trials} strikes per configuration into "
          f"{bench.profile.name}'s instruction queue...\n")

    configs = [
        ("unprotected", CampaignConfig(trials=trials)),
        ("parity", CampaignConfig(trials=trials, parity=True)),
        ("parity + store-pi", CampaignConfig(
            trials=trials, parity=True, tracking=TrackingLevel.STORE_PI)),
        ("parity + memory-pi", CampaignConfig(
            trials=trials, parity=True, tracking=TrackingLevel.MEM_PI)),
    ]
    results = {}
    for label, config in configs:
        results[label] = run_campaign(bench.program, bench.execution,
                                      bench.pipeline, config)

    outcomes = [o for o in FaultOutcome
                if any(r.counts[o] for r in results.values())]
    print(f"{'outcome':16s}" + "".join(f"{label:>20s}"
                                       for label, _ in configs))
    for outcome in outcomes:
        row = f"{outcome.value:16s}"
        for label, _ in configs:
            row += f"{results[label].rate(outcome):>20.1%}"
        print(row)

    unprotected = results["unprotected"]
    parity = results["parity"]
    print(f"\ninjection SDC AVF estimate : "
          f"{unprotected.sdc_avf_estimate:.1%} "
          f"(+-{unprotected.rate_confidence(FaultOutcome.SDC, FaultOutcome.TRAP, FaultOutcome.HANG):.1%})")
    print(f"analytical SDC AVF (ACE)   : {bench.report.sdc_avf:.1%}  "
          f"<- conservative by construction")
    print(f"injection DUE AVF (parity) : {parity.due_avf_estimate:.1%}, "
          f"of which false: {parity.false_due_estimate:.1%}")
    print(f"analytical DUE AVF (parity): {bench.report.due_avf:.1%}")
    tracked = results["parity + memory-pi"]
    print(f"\nwith full memory-pi tracking, {tracked.false_due_estimate:.1%} "
          f"of strikes still signal despite being harmless.")
    print("  These are strikes on *live* instructions whose flipped bit "
          "happened not to matter (an unused immediate bit, a source that "
          "cancels out): pi tracking cannot see inside values, and the "
          "paper's category-based accounting counts them as TRUE DUE. "
          "Category-based false DUE coverage is 100% (see Figure 2).")
    print(f"tracker misses: {tracked.tracker_misses} of {trials} "
          f"(trace-replay artifact, see DESIGN.md)")


if __name__ == "__main__":
    main()
