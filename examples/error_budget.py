"""Chip-level soft-error budgeting with measured AVFs.

Places the instruction-queue AVF numbers this repository measures into the
whole-chip budget framing of the paper's Section 2: per-structure
raw-FIT x AVF contributions summed against vendor-style SDC/DUE MTTF
targets — and shows how the paper's two techniques move a failing design
into budget.

    python examples/error_budget.py
"""

from repro import ExperimentSettings, Trigger, get_profile, run_benchmark
from repro.avf.budget import ChipBudget, StructureContribution
from repro.due.tracking import TrackingLevel, due_avf_with_tracking

RAW_FIT_PER_BIT = 1e-3  # typical published SRAM figure
IQ_BITS = 64 * 41


def build_budget(iq_sdc_avf: float, iq_due_avf: float,
                 iq_detected: bool) -> ChipBudget:
    """A toy chip: the modeled IQ plus representative other structures."""
    budget = ChipBudget(sdc_mttf_target_years=1000.0,
                        due_mttf_target_years=25.0)
    budget.add(StructureContribution(
        "instruction queue", bits=IQ_BITS, raw_fit_per_bit=RAW_FIT_PER_BIT,
        sdc_avf=iq_sdc_avf, due_avf=iq_due_avf, detected=iq_detected))
    budget.add(StructureContribution(
        "register file (parity)", bits=128 * 64,
        raw_fit_per_bit=RAW_FIT_PER_BIT,
        sdc_avf=0.0, due_avf=0.20, detected=True))
    budget.add(StructureContribution(
        "branch predictor", bits=32 * 1024,
        raw_fit_per_bit=RAW_FIT_PER_BIT, sdc_avf=0.0))  # benign by nature
    budget.add(StructureContribution(
        "caches (ECC)", bits=512 * 1024 * 8,
        raw_fit_per_bit=RAW_FIT_PER_BIT, sdc_avf=0.0, due_avf=0.0))
    return budget


def describe(label: str, budget: ChipBudget) -> None:
    headroom = budget.headroom()
    print(f"{label}:")
    print(f"  SDC: {budget.sdc_fit:8.2f} FIT "
          f"(MTTF {budget.sdc_mttf_years():9.0f} yr, "
          f"target x{headroom['sdc']:.2f}) "
          f"{'OK' if budget.meets_sdc_target() else 'OVER BUDGET'}")
    print(f"  DUE: {budget.due_fit:8.2f} FIT "
          f"(MTTF {budget.due_mttf_years():9.0f} yr, "
          f"target x{headroom['due']:.2f}) "
          f"{'OK' if budget.meets_due_target() else 'OVER BUDGET'}")
    dominant = budget.dominant_contributor("due") or \
        budget.dominant_contributor("sdc")
    print(f"  dominant contributor: {dominant}\n")


def main() -> None:
    settings = ExperimentSettings(target_instructions=20_000)
    base = run_benchmark(get_profile("mcf"), settings, Trigger.NONE).report
    squashed = run_benchmark(get_profile("mcf"), settings,
                             Trigger.L1_MISS).report
    tracked_due = due_avf_with_tracking(squashed.breakdown,
                                        TrackingLevel.STORE_PI)

    print(f"measured IQ AVFs (mcf): SDC {base.sdc_avf:.1%}, "
          f"parity DUE {base.due_avf:.1%}; with squash+tracking "
          f"DUE {tracked_due:.1%}\n")

    describe("1. unprotected IQ",
             build_budget(base.sdc_avf, 0.0, iq_detected=False))
    describe("2. parity IQ (SDC -> DUE, rate more than doubles)",
             build_budget(base.sdc_avf, base.due_avf, iq_detected=True))
    describe("3. parity IQ + squash-L1 + store-pi tracking",
             build_budget(squashed.sdc_avf, tracked_due, iq_detected=True))


if __name__ == "__main__":
    main()
