"""Quickstart: measure one benchmark's soft-error profile in ~20 lines.

Runs the `crafty` workload through the full stack — synthesis, functional
execution, dead-code analysis, timing simulation — once without and once
with the paper's squash-on-L1-miss exposure reduction, and prints the
IPC / AVF / MITF trade-off.

    python examples/quickstart.py
"""

from repro import (
    ExperimentSettings,
    SoftErrorRateModel,
    Trigger,
    get_profile,
    run_benchmark,
)


def main() -> None:
    settings = ExperimentSettings(target_instructions=30_000)
    profile = get_profile("crafty")

    base = run_benchmark(profile, settings, Trigger.NONE).report
    squashed = run_benchmark(profile, settings, Trigger.L1_MISS).report

    print(f"benchmark: {profile.name} ({profile.suite})")
    print(f"{'':24s} {'baseline':>10s} {'squash-L1':>10s}")
    print(f"{'IPC':24s} {base.ipc:10.2f} {squashed.ipc:10.2f}")
    print(f"{'SDC AVF (unprotected)':24s} {base.sdc_avf:10.1%} "
          f"{squashed.sdc_avf:10.1%}")
    print(f"{'DUE AVF (parity)':24s} {base.due_avf:10.1%} "
          f"{squashed.due_avf:10.1%}")
    print(f"{'IPC / SDC AVF':24s} {base.ipc_over_sdc_avf:10.1f} "
          f"{squashed.ipc_over_sdc_avf:10.1f}")

    # Absolute numbers need a raw circuit error rate: 1e-3 FIT/bit here.
    model = SoftErrorRateModel()
    for label, report in (("baseline", base), ("squash-L1", squashed)):
        mttf = model.mttf_years(report.sdc_avf)
        mitf = model.mitf(report.ipc, report.sdc_avf)
        print(f"{label:12s} SDC MTTF {mttf:8.0f} years   "
              f"SDC MITF {mitf:.2e} instructions")

    gain = (squashed.ipc_over_sdc_avf / base.ipc_over_sdc_avf - 1.0)
    cost = (squashed.ipc / base.ipc - 1.0)
    print(f"\nsquashing changed IPC by {cost:+.1%} "
          f"but SDC MITF by {gain:+.1%} -> "
          f"{'worth it' if gain > 0 else 'not worth it'} by the paper's "
          f"MITF criterion")


if __name__ == "__main__":
    main()
