"""False-DUE tracking walkthrough: from a parity error to a (non-)signal.

Demonstrates the π-bit machinery at instruction granularity: picks real
dynamic instructions of each ACE class out of a generated workload and
shows, level by level, whether the hardware would raise a machine check
for a parity error on that instruction's queue entry — then prints the
suite-level Figure 2 coverage table.

    python examples/false_due_tracking.py
"""

from repro import ExperimentSettings, Trigger, get_profile, run_benchmark
from repro.analysis.deadcode import DynClass
from repro.due.pi_bit import PiBitTracker
from repro.due.tracking import TRACKING_LADDER
from repro.experiments import figure2
from repro.workloads.spec2000 import ALL_PROFILES


def walkthrough() -> None:
    settings = ExperimentSettings(target_instructions=15_000)
    run = run_benchmark(get_profile("gzip-graphic"), settings, Trigger.NONE)
    trace = run.execution.trace

    wanted = [DynClass.LIVE, DynClass.NEUTRAL, DynClass.PRED_FALSE,
              DynClass.FDD_REG, DynClass.TDD_REG, DynClass.FDD_MEM]
    examples = {}
    for seq, cls in enumerate(run.deadness.classes):
        if cls in wanted and cls not in examples and seq > 50:
            examples[cls] = seq
        if len(examples) == len(wanted):
            break

    print("Per-instruction decisions (signal = machine check raised):\n")
    header = f"{'class':12s} {'instruction':30s}" + "".join(
        f"{lvl.name:>13s}" for lvl in TRACKING_LADDER)
    print(header)
    for cls, seq in examples.items():
        op = trace[seq]
        row = f"{cls.value:12s} {str(op.instruction)[:29]:30s}"
        for level in TRACKING_LADDER:
            decision = PiBitTracker(trace, level).process_fault(seq)
            row += f"{'SIGNAL' if decision.signaled else 'quiet':>13s}"
        print(row)


def suite_coverage() -> None:
    settings = ExperimentSettings(target_instructions=15_000)
    profiles = ALL_PROFILES[::4]
    print("\n" + figure2.format_result(figure2.run(settings, profiles)))


if __name__ == "__main__":
    walkthrough()
    suite_coverage()
