"""Exposure reduction across the whole suite: Table 1 plus the MITF rule.

Sweeps the three design points of the paper's Table 1 (no squashing,
squash on L1 miss, squash on L0 miss) over a sample of the SPEC CPU2000
profiles and applies Section 3.2's MITF criterion: a mechanism is worth
deploying only if it shrinks AVF by a larger factor than it shrinks IPC.

    python examples/squashing_tradeoff.py [n_profiles] [instructions]
"""

import sys

from repro import ExperimentSettings
from repro.experiments import table1
from repro.workloads.spec2000 import ALL_PROFILES


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000
    profiles = ALL_PROFILES[::max(1, len(ALL_PROFILES) // count)][:count]
    settings = ExperimentSettings(target_instructions=instructions)

    result = table1.run(settings, profiles)
    print(table1.format_result(result))

    print("\nPer-benchmark view (squash on L1 misses):")
    base = result.details["No squashing"]
    l1 = result.details["Squash on L1 load misses"]
    for name in sorted(base):
        b, s = base[name], l1[name]
        avf_change = s.sdc_avf / b.sdc_avf - 1.0
        ipc_change = s.ipc / b.ipc - 1.0
        verdict = "+" if (s.ipc_over_sdc_avf > b.ipc_over_sdc_avf) else "-"
        print(f"  {name:18s} SDC AVF {avf_change:+6.1%}  "
              f"IPC {ipc_change:+6.1%}  MITF {verdict}")


if __name__ == "__main__":
    main()
