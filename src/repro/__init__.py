"""repro — a reproduction of Weaver, Emer, Mukherjee & Reinhardt,
"Techniques to Reduce the Soft Error Rate of a High-Performance
Microprocessor" (ISCA 2004).

The package builds, from scratch, everything the paper's evaluation needs:

* :mod:`repro.isa` / :mod:`repro.arch` — an executable IA64-like
  instruction set and its functional simulator;
* :mod:`repro.workloads` — 26 SPEC CPU2000-calibrated synthetic programs;
* :mod:`repro.memory` / :mod:`repro.pipeline` — the Itanium®2-like
  in-order timing model with the squash/throttle exposure-reduction
  mechanisms;
* :mod:`repro.analysis` / :mod:`repro.avf` — dynamic dead-code analysis
  and the SDC/DUE AVF + MITF computations;
* :mod:`repro.due` — the π bit, anti-π bit, PET buffer and the tracking
  ladder for false-DUE elimination;
* :mod:`repro.faults` — single-bit fault injection for validation;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    from repro import ExperimentSettings, Trigger, run_benchmark, get_profile

    run = run_benchmark(get_profile("crafty"),
                        ExperimentSettings(target_instructions=30_000),
                        Trigger.L1_MISS)
    print(run.report.ipc, run.report.sdc_avf, run.report.due_avf)
"""

from repro.analysis.deadcode import DeadnessAnalysis, DynClass, analyze_deadness
from repro.arch.executor import FunctionalSimulator
from repro.avf.avf_calc import IqAvfReport, compute_iq_avf
from repro.avf.mitf import SoftErrorRateModel, mitf, mitf_ratio
from repro.avf.occupancy import AccountingPolicy, compute_breakdown
from repro.due.pet import PetBuffer, pet_coverage_by_size
from repro.due.pi_bit import PiBitTracker
from repro.due.tracking import TrackingLevel, due_avf_with_tracking
from repro.experiments.common import (
    BenchmarkRun,
    ExperimentSettings,
    run_benchmark,
    run_benchmarks,
)
from repro.faults.campaign import CampaignConfig, run_campaign
from repro.runtime.cache import ResultCache
from repro.runtime.context import (
    RuntimeContext,
    configure,
    get_runtime,
    set_runtime,
    use_runtime,
)
from repro.pipeline.config import MachineConfig, SquashAction, SquashConfig, Trigger
from repro.pipeline.core import PipelineSimulator, simulate
from repro.workloads.codegen import synthesize
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES, get_profile, profile_names

__version__ = "1.0.0"

__all__ = [
    "DeadnessAnalysis",
    "DynClass",
    "analyze_deadness",
    "FunctionalSimulator",
    "IqAvfReport",
    "compute_iq_avf",
    "SoftErrorRateModel",
    "mitf",
    "mitf_ratio",
    "AccountingPolicy",
    "compute_breakdown",
    "PetBuffer",
    "pet_coverage_by_size",
    "PiBitTracker",
    "TrackingLevel",
    "due_avf_with_tracking",
    "BenchmarkRun",
    "ExperimentSettings",
    "run_benchmark",
    "run_benchmarks",
    "CampaignConfig",
    "run_campaign",
    "ResultCache",
    "RuntimeContext",
    "configure",
    "get_runtime",
    "set_runtime",
    "use_runtime",
    "MachineConfig",
    "SquashAction",
    "SquashConfig",
    "Trigger",
    "PipelineSimulator",
    "simulate",
    "synthesize",
    "BenchmarkProfile",
    "ALL_PROFILES",
    "get_profile",
    "profile_names",
    "__version__",
]
