"""Opcode set of REPRO-64 and its static classification.

The classification here feeds both the decoder (which fields are live for
each opcode) and the AVF layer, which needs to know — per the paper's
Section 4 — which instruction types are *neutral* (no-ops, prefetches,
branch-prediction hints: only their opcode bits matter), which write a
register (candidates for dynamic deadness), and which define the program's
observable output (stores and I/O).
"""

from __future__ import annotations

from enum import Enum, IntEnum, unique


@unique
class Opcode(IntEnum):
    """7-bit primary opcode values.

    Values 0-23 are architected; all other 7-bit patterns decode to an
    illegal instruction (represented by :data:`ILLEGAL`, value 127), which
    traps at execution. Keeping the architected opcodes dense at the bottom
    of the space makes single-bit opcode corruptions land on *other valid
    opcodes* reasonably often — the interesting case for fault injection.
    """

    NOP = 0
    ADD = 1
    SUB = 2
    AND = 3
    OR = 4
    XOR = 5
    SHL = 6
    SHR = 7
    MUL = 8
    ADDI = 9
    ANDI = 10
    MOVI = 11
    LD = 12
    ST = 13
    CMP_EQ = 14
    CMP_LT = 15
    CMP_NE = 16
    BR = 17
    CALL = 18
    RET = 19
    OUT = 20
    PREFETCH = 21
    HINT = 22
    HALT = 23
    ILLEGAL = 127


@unique
class InstrClass(Enum):
    """Coarse execution class, used by the pipeline's functional units."""

    ALU = "alu"
    MUL = "mul"
    LOAD = "load"
    STORE = "store"
    COMPARE = "compare"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    OUTPUT = "output"
    NEUTRAL = "neutral"
    HALT = "halt"
    ILLEGAL = "illegal"


_CLASS_OF = {
    Opcode.NOP: InstrClass.NEUTRAL,
    Opcode.ADD: InstrClass.ALU,
    Opcode.SUB: InstrClass.ALU,
    Opcode.AND: InstrClass.ALU,
    Opcode.OR: InstrClass.ALU,
    Opcode.XOR: InstrClass.ALU,
    Opcode.SHL: InstrClass.ALU,
    Opcode.SHR: InstrClass.ALU,
    Opcode.MUL: InstrClass.MUL,
    Opcode.ADDI: InstrClass.ALU,
    Opcode.ANDI: InstrClass.ALU,
    Opcode.MOVI: InstrClass.ALU,
    Opcode.LD: InstrClass.LOAD,
    Opcode.ST: InstrClass.STORE,
    Opcode.CMP_EQ: InstrClass.COMPARE,
    Opcode.CMP_LT: InstrClass.COMPARE,
    Opcode.CMP_NE: InstrClass.COMPARE,
    Opcode.BR: InstrClass.BRANCH,
    Opcode.CALL: InstrClass.CALL,
    Opcode.RET: InstrClass.RET,
    Opcode.OUT: InstrClass.OUTPUT,
    Opcode.PREFETCH: InstrClass.NEUTRAL,
    Opcode.HINT: InstrClass.NEUTRAL,
    Opcode.HALT: InstrClass.HALT,
    Opcode.ILLEGAL: InstrClass.ILLEGAL,
}

#: Three-operand register-register ALU forms: r1 <- r2 op r3.
REG_REG_ALU = frozenset(
    {Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL,
     Opcode.SHR, Opcode.MUL}
)

#: Register-immediate ALU forms: r1 <- r2 op imm14.
REG_IMM_ALU = frozenset({Opcode.ADDI, Opcode.ANDI})

#: Compare forms: p[r1] <- r2 op r3.
COMPARES = frozenset({Opcode.CMP_EQ, Opcode.CMP_LT, Opcode.CMP_NE})

#: Neutral instruction types per the paper's Section 4.1: only their opcode
#: bits can affect the program (a strike elsewhere in the syllable cannot).
NEUTRAL_OPCODES = frozenset({Opcode.NOP, Opcode.PREFETCH, Opcode.HINT})

#: Opcodes that use the 21-bit combined immediate (r2|r3|imm7 fields).
WIDE_IMM_OPCODES = frozenset({Opcode.MOVI, Opcode.BR, Opcode.CALL})


def instr_class(opcode: Opcode) -> InstrClass:
    """Execution class of ``opcode``."""
    return _CLASS_OF[opcode]


def is_neutral(opcode: Opcode) -> bool:
    """True for instruction types that can never affect program output."""
    return opcode in NEUTRAL_OPCODES


def writes_gpr(opcode: Opcode) -> bool:
    """True when the instruction writes general register ``r1``."""
    return (
        opcode in REG_REG_ALU
        or opcode in REG_IMM_ALU
        or opcode in (Opcode.MOVI, Opcode.LD)
    )


def writes_predicate(opcode: Opcode) -> bool:
    """True when the instruction writes predicate register ``p[r1 mod 64]``."""
    return opcode in COMPARES


def gpr_sources(opcode: Opcode) -> tuple:
    """Names of the register *fields* this opcode reads ('r1','r2','r3').

    ``ST`` reads its data from r1 and its base address from r2, which is why
    r1 can be a source. Predicated-off instructions read nothing.
    """
    if opcode in REG_REG_ALU or opcode in COMPARES:
        return ("r2", "r3")
    if opcode in REG_IMM_ALU:
        return ("r2",)
    if opcode == Opcode.LD:
        return ("r2",)
    if opcode == Opcode.ST:
        return ("r1", "r2")
    if opcode == Opcode.OUT:
        return ("r2",)
    if opcode == Opcode.PREFETCH:
        # Prefetch computes an address but the access is architecturally
        # invisible; the source read does not make producers live.
        return ("r2",)
    return ()


def is_control(opcode: Opcode) -> bool:
    """True for instructions that can redirect fetch."""
    return _CLASS_OF[opcode] in (
        InstrClass.BRANCH,
        InstrClass.CALL,
        InstrClass.RET,
        InstrClass.HALT,
    )


def decode_opcode(value: int) -> Opcode:
    """Total decode of a 7-bit opcode field; unarchitected values -> ILLEGAL."""
    try:
        opcode = Opcode(value)
    except ValueError:
        return Opcode.ILLEGAL
    if opcode is Opcode.ILLEGAL:
        return Opcode.ILLEGAL
    return opcode
