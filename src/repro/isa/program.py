"""Static program container: code, functions, data-segment layout."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


@dataclass(frozen=True)
class FunctionInfo:
    """Half-open PC range [entry, end) of one synthesised function."""

    name: str
    entry: int
    end: int

    def __post_init__(self) -> None:
        if self.entry < 0 or self.end <= self.entry:
            raise ValueError(f"bad function range [{self.entry}, {self.end})")

    def contains(self, pc: int) -> bool:
        return self.entry <= pc < self.end


_NOP = Instruction(Opcode.NOP)


class Program:
    """An executable REPRO-64 program.

    PCs are instruction-slot indices (not byte addresses). Fetches outside
    the code range return no-ops, which matters on the wrong path: after a
    corrupted or mispredicted branch, the front end must always be able to
    fetch *something*, just as real hardware reads whatever bytes sit at the
    bogus target.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        functions: Sequence[FunctionInfo],
        entry: int = 0,
        data_words: int = 0,
        name: str = "program",
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        if not instructions:
            raise ValueError("a program needs at least one instruction")
        if not 0 <= entry < len(instructions):
            raise ValueError(f"entry PC {entry} outside code range")
        self._instructions: List[Instruction] = list(instructions)
        self.functions: List[FunctionInfo] = list(functions)
        self.entry = entry
        self.data_words = data_words
        self.name = name
        self.metadata: Dict[str, object] = dict(metadata or {})
        self._validate_functions()

    def _validate_functions(self) -> None:
        for info in self.functions:
            if info.end > len(self._instructions):
                raise ValueError(
                    f"function {info.name} extends past code end "
                    f"({info.end} > {len(self._instructions)})"
                )

    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def instructions(self) -> Sequence[Instruction]:
        return tuple(self._instructions)

    def in_range(self, pc: int) -> bool:
        return 0 <= pc < len(self._instructions)

    def fetch(self, pc: int) -> Instruction:
        """Instruction at ``pc``; no-op when outside the code segment."""
        if self.in_range(pc):
            return self._instructions[pc]
        return _NOP

    def function_at(self, pc: int) -> Optional[FunctionInfo]:
        """The function containing ``pc``, if any."""
        for info in self.functions:
            if info.contains(pc):
                return info
        return None

    def branch_target(self, pc: int) -> int:
        """Resolved PC-relative target of the control instruction at ``pc``."""
        instruction = self.fetch(pc)
        if not self.in_range(pc) or not self.is_relative_control(instruction):
            raise ValueError(f"no relative control instruction at pc {pc}")
        return pc + instruction.imm

    @staticmethod
    def is_relative_control(instruction: Instruction) -> bool:
        return instruction.opcode in (Opcode.BR, Opcode.CALL)

    def disassemble(self, lo: int = 0, hi: Optional[int] = None) -> str:
        """Human-readable listing of PCs [lo, hi)."""
        hi = len(self._instructions) if hi is None else hi
        lines = []
        for pc in range(lo, min(hi, len(self._instructions))):
            info = self.function_at(pc)
            if info is not None and info.entry == pc:
                lines.append(f"{info.name}:")
            lines.append(f"  {pc:6d}: {self._instructions[pc]}")
        return "\n".join(lines)
