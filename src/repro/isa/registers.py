"""Register-file architecture of REPRO-64.

Mirrors the IA64 shape the paper assumes: a large general-register file and
a bank of one-bit predicate registers, with hardwired "always" registers
(``r0`` reads as zero, ``p0`` reads as true).
"""

from __future__ import annotations

NUM_GPRS = 128
NUM_PREDICATES = 64

#: General register that always reads as zero; writes to it are discarded.
GPR_ZERO = 0

#: Predicate register that always reads as true; writes to it are discarded.
PRED_TRUE = 0


def gpr_name(index: int) -> str:
    """Assembly name of a general register (``r0`` ... ``r127``)."""
    if not 0 <= index < NUM_GPRS:
        raise ValueError(f"GPR index out of range: {index}")
    return f"r{index}"


def pred_name(index: int) -> str:
    """Assembly name of a predicate register (``p0`` ... ``p63``)."""
    if not 0 <= index < NUM_PREDICATES:
        raise ValueError(f"predicate index out of range: {index}")
    return f"p{index}"
