"""REPRO-64: a synthetic, executable IA64-like instruction set.

The paper's evaluation machine is an Itanium®2-like IA64 processor. We do
not have IA64 binaries or an IA64 front end, so the repository defines a
compact 41-bit-per-syllable instruction set with the properties the paper's
analysis actually depends on:

* full predication (a 6-bit qualifying-predicate field on every syllable),
* explicit no-op / prefetch / branch-hint *neutral* instruction types,
* loads/stores with register+offset addressing,
* calls/returns (needed for the "FDD via procedure return" category), and
* an ``OUT`` instruction that defines the program's observable output.

Every instruction encodes to and decodes from a 41-bit integer, and the
decode function is total, so single-bit faults injected into an encoding
always yield *some* instruction — possibly an illegal one, exactly as a
corrupted real encoding would.
"""

from repro.isa.encoding import (
    ENCODING_BITS,
    Field,
    decode,
    encode,
    field_at_bit,
    live_fields,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import InstrClass, Opcode
from repro.isa.program import FunctionInfo, Program
from repro.isa.registers import (
    GPR_ZERO,
    NUM_GPRS,
    NUM_PREDICATES,
    PRED_TRUE,
    gpr_name,
    pred_name,
)

__all__ = [
    "ENCODING_BITS",
    "Field",
    "decode",
    "encode",
    "field_at_bit",
    "live_fields",
    "Instruction",
    "InstrClass",
    "Opcode",
    "FunctionInfo",
    "Program",
    "GPR_ZERO",
    "NUM_GPRS",
    "NUM_PREDICATES",
    "PRED_TRUE",
    "gpr_name",
    "pred_name",
]
