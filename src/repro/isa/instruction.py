"""Static instruction representation."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.isa import encoding, opcodes
from repro.isa.opcodes import InstrClass, Opcode
from repro.isa.registers import NUM_GPRS, NUM_PREDICATES


@dataclass(frozen=True)
class Instruction:
    """One REPRO-64 syllable.

    ``imm`` is the opcode-dependent immediate: a 7-bit load/store offset,
    a 14-bit ALU immediate, or a 21-bit MOVI constant / PC-relative
    branch-or-call displacement (in instruction slots). Branch targets are
    therefore part of the encoding and participate in fault injection.
    """

    opcode: Opcode
    qp: int = 0
    r1: int = 0
    r2: int = 0
    r3: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.qp < NUM_PREDICATES:
            raise ValueError(f"qp out of range: {self.qp}")
        for name in ("r1", "r2", "r3"):
            value = getattr(self, name)
            if not 0 <= value < NUM_GPRS:
                raise ValueError(f"{name} out of range: {value}")

    @property
    def instr_class(self) -> InstrClass:
        return opcodes.instr_class(self.opcode)

    @property
    def is_neutral(self) -> bool:
        """No-op / prefetch / hint: cannot affect architectural state."""
        return opcodes.is_neutral(self.opcode)

    @property
    def writes_gpr(self) -> bool:
        return opcodes.writes_gpr(self.opcode) and self.r1 != 0

    @property
    def writes_predicate(self) -> bool:
        return opcodes.writes_predicate(self.opcode)

    @property
    def dest_gpr(self) -> int:
        """Destination GPR index, or 0 when the opcode writes none."""
        return self.r1 if opcodes.writes_gpr(self.opcode) else 0

    @property
    def dest_predicate(self) -> int:
        """Destination predicate index, or 0 when the opcode writes none."""
        return self.r1 % NUM_PREDICATES if opcodes.writes_predicate(self.opcode) else 0

    def source_gprs(self) -> tuple:
        """GPR indices this instruction reads (r0 reads excluded)."""
        regs = []
        for field_name in opcodes.gpr_sources(self.opcode):
            reg = getattr(self, field_name)
            if reg != 0:
                regs.append(reg)
        return tuple(regs)

    @property
    def is_control(self) -> bool:
        return opcodes.is_control(self.opcode)

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.ST

    def encode(self) -> int:
        """41-bit encoding of this instruction."""
        return encoding.encode(self)

    def with_qp(self, qp: int) -> "Instruction":
        return replace(self, qp=qp)

    def __str__(self) -> str:
        op = self.opcode.name.lower()
        pred = f"(p{self.qp}) " if self.qp else ""
        if self.opcode in opcodes.REG_REG_ALU:
            return f"{pred}{op} r{self.r1} = r{self.r2}, r{self.r3}"
        if self.opcode in opcodes.REG_IMM_ALU:
            return f"{pred}{op} r{self.r1} = r{self.r2}, {self.imm}"
        if self.opcode is Opcode.MOVI:
            return f"{pred}{op} r{self.r1} = {self.imm}"
        if self.opcode is Opcode.LD:
            return f"{pred}{op} r{self.r1} = [r{self.r2} + {self.imm}]"
        if self.opcode is Opcode.ST:
            return f"{pred}{op} [r{self.r2} + {self.imm}] = r{self.r1}"
        if self.opcode in opcodes.COMPARES:
            return f"{pred}{op} p{self.r1 % NUM_PREDICATES} = r{self.r2}, r{self.r3}"
        if self.opcode in (Opcode.BR, Opcode.CALL):
            return f"{pred}{op} {self.imm:+d}"
        if self.opcode is Opcode.OUT:
            return f"{pred}{op} r{self.r2}"
        return f"{pred}{op}"
