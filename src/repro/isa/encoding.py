"""41-bit syllable encoding of REPRO-64 instructions.

The bit-level layout matters to this reproduction for two reasons:

1. **Fault injection** flips one physical bit of an in-flight encoding; the
   total :func:`decode` maps the corrupted word back to an instruction.
2. **Bit-weighted AVF**: the paper's ACE rules are per-field — e.g. only
   the *opcode* bits of a no-op are ACE, and only the *destination
   specifier* bits of a dynamically dead instruction are ACE. The AVF layer
   asks this module which field each bit belongs to and which fields an
   opcode actually uses.

Layout (LSB first)::

    bits  0..5   qp      qualifying predicate register
    bits  6..12  r1      destination (or store-data / compare-target)
    bits 13..19  r2      first source
    bits 20..26  r3      second source
    bits 27..33  imm7    short immediate (load/store offset)
    bits 34..40  opcode  primary opcode

Wider immediates overlay source fields: ``imm14`` = r3‖imm7 (ALU
immediates) and ``imm21`` = r2‖r3‖imm7 (MOVI constants and branch/call
displacements). All immediates are two's-complement signed.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import FrozenSet

from repro.isa import opcodes
from repro.isa.opcodes import Opcode
from repro.util.bitops import extract_field, insert_field, mask

ENCODING_BITS = 41

QP_LO, QP_BITS = 0, 6
R1_LO, R1_BITS = 6, 7
R2_LO, R2_BITS = 13, 7
R3_LO, R3_BITS = 20, 7
IMM7_LO, IMM7_BITS = 27, 7
OPCODE_LO, OPCODE_BITS = 34, 7

IMM14_BITS = R3_BITS + IMM7_BITS
IMM21_BITS = R2_BITS + R3_BITS + IMM7_BITS


@unique
class Field(Enum):
    """Physical bit fields of a syllable."""

    QP = "qp"
    R1 = "r1"
    R2 = "r2"
    R3 = "r3"
    IMM7 = "imm7"
    OPCODE = "opcode"


_FIELD_RANGES = {
    Field.QP: (QP_LO, QP_BITS),
    Field.R1: (R1_LO, R1_BITS),
    Field.R2: (R2_LO, R2_BITS),
    Field.R3: (R3_LO, R3_BITS),
    Field.IMM7: (IMM7_LO, IMM7_BITS),
    Field.OPCODE: (OPCODE_LO, OPCODE_BITS),
}


def field_at_bit(bit: int) -> Field:
    """Physical field containing bit index ``bit`` (0 = LSB)."""
    if not 0 <= bit < ENCODING_BITS:
        raise ValueError(f"bit index out of range: {bit}")
    for field, (lo, width) in _FIELD_RANGES.items():
        if lo <= bit < lo + width:
            return field
    raise AssertionError("unreachable: layout covers all 41 bits")


def field_bits(field: Field) -> range:
    """Bit positions occupied by ``field``."""
    lo, width = _FIELD_RANGES[field]
    return range(lo, lo + width)


_ALL_FIELDS = frozenset(Field)

_LIVE_FIELDS = {
    Opcode.NOP: frozenset({Field.OPCODE}),
    Opcode.HINT: frozenset({Field.OPCODE}),
    Opcode.PREFETCH: frozenset({Field.OPCODE}),
    Opcode.HALT: frozenset({Field.OPCODE}),
    Opcode.RET: frozenset({Field.OPCODE, Field.QP}),
    Opcode.LD: frozenset({Field.OPCODE, Field.QP, Field.R1, Field.R2, Field.IMM7}),
    Opcode.ST: frozenset({Field.OPCODE, Field.QP, Field.R1, Field.R2, Field.IMM7}),
    Opcode.OUT: frozenset({Field.OPCODE, Field.QP, Field.R2}),
    Opcode.MOVI: frozenset(
        {Field.OPCODE, Field.QP, Field.R1, Field.R2, Field.R3, Field.IMM7}
    ),
    Opcode.BR: frozenset({Field.OPCODE, Field.QP, Field.R2, Field.R3, Field.IMM7}),
    Opcode.CALL: frozenset({Field.OPCODE, Field.QP, Field.R2, Field.R3, Field.IMM7}),
    Opcode.ILLEGAL: frozenset({Field.OPCODE}),
}
for _op in opcodes.REG_REG_ALU | opcodes.COMPARES:
    _LIVE_FIELDS[_op] = frozenset(
        {Field.OPCODE, Field.QP, Field.R1, Field.R2, Field.R3}
    )
for _op in opcodes.REG_IMM_ALU:
    _LIVE_FIELDS[_op] = frozenset(
        {Field.OPCODE, Field.QP, Field.R1, Field.R2, Field.R3, Field.IMM7}
    )


def live_fields(opcode: Opcode) -> FrozenSet[Field]:
    """Fields whose bits the architecture actually interprets for ``opcode``.

    Bits in non-live fields are un-ACE even for otherwise-ACE instructions:
    flipping them cannot change execution.
    """
    return _LIVE_FIELDS[opcode]


def _to_signed(value: int, bits: int) -> int:
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def _to_unsigned(value: int, bits: int) -> int:
    if not -(1 << (bits - 1)) <= value < (1 << (bits - 1)):
        raise ValueError(f"immediate {value} does not fit in {bits} signed bits")
    return value & mask(bits)


def encode(instruction: "Instruction") -> int:  # noqa: F821 (circular typing)
    """Encode an :class:`~repro.isa.instruction.Instruction` to 41 bits."""
    op = instruction.opcode
    word = 0
    word = insert_field(word, OPCODE_LO, OPCODE_BITS, int(op) & mask(OPCODE_BITS))
    word = insert_field(word, QP_LO, QP_BITS, instruction.qp & mask(QP_BITS))
    word = insert_field(word, R1_LO, R1_BITS, instruction.r1 & mask(R1_BITS))
    if op in opcodes.WIDE_IMM_OPCODES:
        imm21 = _to_unsigned(instruction.imm, IMM21_BITS)
        word = insert_field(word, R2_LO, IMM21_BITS, imm21)
    elif op in opcodes.REG_IMM_ALU:
        word = insert_field(word, R2_LO, R2_BITS, instruction.r2 & mask(R2_BITS))
        imm14 = _to_unsigned(instruction.imm, IMM14_BITS)
        word = insert_field(word, R3_LO, IMM14_BITS, imm14)
    else:
        word = insert_field(word, R2_LO, R2_BITS, instruction.r2 & mask(R2_BITS))
        word = insert_field(word, R3_LO, R3_BITS, instruction.r3 & mask(R3_BITS))
        imm7 = _to_unsigned(instruction.imm, IMM7_BITS)
        word = insert_field(word, IMM7_LO, IMM7_BITS, imm7)
    return word


def decode(word: int) -> "Instruction":  # noqa: F821
    """Total decode: every 41-bit pattern yields an Instruction.

    Unarchitected opcode values decode to :data:`Opcode.ILLEGAL` (which
    traps when executed). Field values are preserved so that re-encoding a
    decoded word is stable for architected opcodes.
    """
    from repro.isa.instruction import Instruction

    if not 0 <= word < (1 << ENCODING_BITS):
        raise ValueError(f"encoding out of range: {word:#x}")
    opcode = opcodes.decode_opcode(extract_field(word, OPCODE_LO, OPCODE_BITS))
    qp = extract_field(word, QP_LO, QP_BITS)
    r1 = extract_field(word, R1_LO, R1_BITS)
    r2 = extract_field(word, R2_LO, R2_BITS)
    r3 = extract_field(word, R3_LO, R3_BITS)
    if opcode in opcodes.WIDE_IMM_OPCODES:
        imm = _to_signed(extract_field(word, R2_LO, IMM21_BITS), IMM21_BITS)
        r2 = r3 = 0
    elif opcode in opcodes.REG_IMM_ALU:
        imm = _to_signed(extract_field(word, R3_LO, IMM14_BITS), IMM14_BITS)
        r3 = 0
    else:
        imm = _to_signed(extract_field(word, IMM7_LO, IMM7_BITS), IMM7_BITS)
    return Instruction(opcode=opcode, qp=qp, r1=r1, r2=r2, r3=r3, imm=imm)
