"""Supervision layer: failure taxonomy, retry/backoff, quarantine.

PR 1's process fan-out made campaigns fast but brittle: one crashed or
hung worker lost the whole run. This module wraps the pool with a
supervisor that

* **classifies** every failure into a structured taxonomy
  (:class:`TrialCrash`, :class:`TrialTimeout`, :class:`WorkerLost`,
  :class:`CacheCorrupt`, :class:`ResultInvalid`),
* **retries** failed shards with exponential backoff plus deterministic
  jitter, under a per-trial watchdog deadline,
* **rebuilds** the process pool when a worker dies or hangs (innocent
  in-flight shards are re-queued without being charged an attempt), and
* **quarantines** deterministically-failing trials after the retry
  budget, completing the campaign in degraded mode with an explicit
  :class:`CompletenessReport`.

Determinism is preserved throughout: a shard's tallies depend only on
which trial indices it covers (per-trial seed streams), so re-running a
shard after a crash — or splitting it into single trials to isolate a
poisoned index — reproduces the fault-free result bit-for-bit.
"""

from __future__ import annotations

import time
from collections import Counter, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from math import sqrt
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.due.outcomes import FaultOutcome
from repro.runtime.chaos import ChaosConfig, ChaosInjector
from repro.runtime.telemetry import Telemetry
from repro.util.rng import DeterministicRng, derive_seed

#: Seam for the backoff jitter streams (arbitrary constant, never user
#: facing; folded with the task label/index/attempt via derive_seed).
_BACKOFF_SEED = 0xBAC0FF

#: Poll interval of the supervision loop; bounds watchdog resolution.
_TICK_SECONDS = 0.05


def _reset_worker_signals() -> None:
    """Pool initializer: make workers die quietly.

    Workers forked from the CLI inherit its SIGTERM->KeyboardInterrupt
    handler, so a supervisor pool teardown (``terminate()``) would spew a
    traceback per worker. Restore the default SIGTERM disposition and
    ignore SIGINT — on Ctrl-C the *parent* drains the pool deliberately.
    """
    import signal

    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass


# ---------------------------------------------------------------------------
# Failure taxonomy
# ---------------------------------------------------------------------------

class RuntimeFault(Exception):
    """Base class for classified campaign-runtime failures."""


class TrialCrash(RuntimeFault):
    """A trial (or the code around it) raised inside a worker."""

    def __init__(self, message: str, trial_index: Optional[int] = None):
        super().__init__(message, trial_index)
        self.trial_index = trial_index

    def __str__(self) -> str:
        return self.args[0]


class TrialTimeout(RuntimeFault):
    """A shard blew through its watchdog deadline (hung worker)."""


class WorkerLost(RuntimeFault):
    """A worker process died (killed, segfaulted, OOMed)."""


class CacheCorrupt(RuntimeFault):
    """A cache or checkpoint payload failed validation."""


class ResultInvalid(RuntimeFault):
    """A worker returned structurally invalid tallies."""


class CampaignInterrupted(RuntimeFault):
    """KeyboardInterrupt/SIGTERM landed mid-campaign.

    The pool has been drained and any checkpoint journal holds every
    completed block; re-running with ``resume`` continues bit-identically.
    """

    def __init__(self, message: str, trials_done: int = 0):
        super().__init__(message, trials_done)
        self.trials_done = trials_done

    def __str__(self) -> str:
        return self.args[0]


#: Telemetry counter ticked for each taxonomy class.
FAULT_COUNTERS = {
    TrialCrash: "trial_crashes",
    TrialTimeout: "trial_timeouts",
    WorkerLost: "workers_lost",
    CacheCorrupt: "cache_corruptions",
    ResultInvalid: "results_invalid",
}


def classify_failure(exc: BaseException) -> RuntimeFault:
    """Map an arbitrary exception onto the structured taxonomy."""
    if isinstance(exc, RuntimeFault):
        return exc
    if isinstance(exc, BrokenExecutor):
        return WorkerLost(str(exc) or "worker process died")
    if isinstance(exc, TimeoutError):
        return TrialTimeout(str(exc) or "deadline exceeded")
    return TrialCrash(f"{type(exc).__name__}: {exc}")


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How hard the supervisor fights before giving up on a task."""

    #: Additional attempts after the first (0 = fail fast).
    retries: int = 2
    #: First-retry backoff delay, in seconds; doubles per attempt.
    backoff_base: float = 0.05
    #: Backoff ceiling, in seconds.
    backoff_cap: float = 2.0
    #: Fraction of the delay randomised (deterministically) to de-correlate
    #: retry storms: delay is uniform in [base*(1-j), base*(1+j)].
    jitter: float = 0.5
    #: Watchdog deadline per trial, in seconds (None = no watchdog). A
    #: shard of N trials gets N * trial_timeout before it is declared hung.
    trial_timeout: Optional[float] = None
    #: Flat allowance added to every watchdog deadline. The clock starts
    #: at submit time, so a fresh pool's fork cost and the pickling of
    #: large task arguments must not count against a tight per-trial
    #: budget (otherwise innocent single-trial tasks get falsely charged).
    startup_grace: float = 1.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.backoff_base < 0.0 or self.backoff_cap < 0.0:
            raise ValueError("backoff delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.trial_timeout is not None and self.trial_timeout <= 0.0:
            raise ValueError("trial_timeout must be positive")
        if self.startup_grace < 0.0:
            raise ValueError("startup_grace must be non-negative")

    def backoff_delay(self, label: str, index: int, attempt: int) -> float:
        """Deterministic exponential backoff with jitter for retry
        ``attempt`` (1-based) of task ``index``."""
        base = min(self.backoff_cap,
                   self.backoff_base * (2.0 ** max(0, attempt - 1)))
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = DeterministicRng(
            derive_seed(_BACKOFF_SEED, "backoff", label, index, attempt))
        return base * (1.0 - self.jitter + 2.0 * self.jitter * rng.random())

    def deadline_for(self, items: int) -> Optional[float]:
        """Seconds a task covering ``items`` trials may run, or None."""
        if self.trial_timeout is None:
            return None
        return self.trial_timeout * max(1, items) + self.startup_grace


# ---------------------------------------------------------------------------
# Completeness accounting
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CompletenessReport:
    """What fraction of a campaign actually ran, and at what cost."""

    trials_requested: int
    trials_succeeded: int
    quarantined: Tuple[int, ...] = ()
    retries: int = 0
    resumed_trials: int = 0

    @property
    def degraded(self) -> bool:
        return self.trials_succeeded < self.trials_requested

    @property
    def complete(self) -> bool:
        return not self.degraded

    @property
    def confidence_widening(self) -> float:
        """Factor by which binomial confidence half-widths grow because
        quarantined trials shrank the sample (sqrt(requested/succeeded))."""
        if self.trials_succeeded <= 0:
            return float("inf")
        return sqrt(self.trials_requested / self.trials_succeeded)

    def format(self) -> str:
        parts = [f"{self.trials_succeeded}/{self.trials_requested} trials"]
        if self.resumed_trials:
            parts.append(f"{self.resumed_trials} resumed from checkpoint")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.quarantined:
            shown = ", ".join(str(i) for i in self.quarantined[:8])
            if len(self.quarantined) > 8:
                shown += ", ..."
            parts.append(
                f"quarantined [{shown}] — degraded mode, confidence "
                f"intervals widened x{self.confidence_widening:.3f}")
        return "campaign completeness: " + "; ".join(parts)


# ---------------------------------------------------------------------------
# The supervisor
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SupervisedTask:
    """One unit of retryable work.

    ``fn`` must be picklable and accept ``(*args, attempt)`` — the
    supervisor appends the 0-based attempt number so chaos decisions and
    diagnostics can key on it. ``items`` scales the watchdog deadline and
    worker-timing records; ``deadline`` opts the task into the watchdog.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...]
    items: int = 1
    key: Any = None
    deadline: bool = True


class Supervisor:
    """Runs :class:`SupervisedTask`s with retry, backoff and quarantine.

    ``run_pooled`` executes on a private :class:`ProcessPoolExecutor`,
    rebuilding it whenever a worker dies (``BrokenExecutor``) or a task
    overruns its watchdog deadline; tasks that were merely collocated
    with the failure are re-queued without being charged an attempt
    (except on pool breakage, where the guilty future cannot be told
    apart from its batch — those all take the charge, which is harmless
    because results never depend on the attempt number).
    ``run_serial`` executes inline with the same retry accounting.

    With ``quarantine=True`` exhausted tasks are set aside and reported;
    otherwise the final classified fault is raised.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        *,
        label: str,
        max_workers: int = 1,
        telemetry: Optional[Telemetry] = None,
        quarantine: bool = False,
        validate: Optional[Callable[[Any, SupervisedTask], None]] = None,
        on_result: Optional[Callable[[int, SupervisedTask, Any], None]] = None,
    ) -> None:
        self.policy = policy
        self.label = label
        self.max_workers = max(1, max_workers)
        self.telemetry = telemetry
        self.quarantine = quarantine
        self.validate = validate
        self.on_result = on_result
        self.retries = 0

    # -- shared accounting ----------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.increment(name, amount)

    def _succeed(self, index: int, task: SupervisedTask, value: Any) -> None:
        if self.validate is not None:
            self.validate(value, task)
        if self.on_result is not None:
            self.on_result(index, task, value)

    def _charge(self, index: int, task: SupervisedTask, fault: RuntimeFault,
                attempts: List[int], sleeping: Dict[int, float],
                quarantined: List[int]) -> None:
        """Record a failed attempt; schedule a retry, quarantine, or raise."""
        self._count(FAULT_COUNTERS.get(type(fault), "runtime_faults"))
        attempts[index] += 1
        if attempts[index] <= self.policy.retries:
            self.retries += 1
            self._count("retries")
            delay = self.policy.backoff_delay(self.label, index,
                                              attempts[index])
            sleeping[index] = time.monotonic() + delay
            return
        if self.quarantine:
            quarantined.append(index)
            self._count("quarantined_tasks")
            return
        raise fault

    # -- serial path -----------------------------------------------------

    def run_serial(self, tasks: Sequence[SupervisedTask]) -> List[int]:
        """Run tasks inline; returns quarantined task indices."""
        quarantined: List[int] = []
        for index, task in enumerate(tasks):
            attempt = 0
            while True:
                try:
                    value = task.fn(*task.args, attempt)
                    self._succeed(index, task, value)
                    break
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    fault = classify_failure(exc)
                    self._count(FAULT_COUNTERS.get(type(fault),
                                                   "runtime_faults"))
                    attempt += 1
                    if attempt <= self.policy.retries:
                        self.retries += 1
                        self._count("retries")
                        time.sleep(self.policy.backoff_delay(
                            self.label, index, attempt))
                        continue
                    if self.quarantine:
                        quarantined.append(index)
                        self._count("quarantined_tasks")
                        break
                    raise fault from exc
        return quarantined

    # -- pooled path -----------------------------------------------------

    def _new_pool(self, tasks_left: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=min(self.max_workers, max(1, tasks_left)),
            initializer=_reset_worker_signals)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down hard — hung workers are terminated, not joined."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass

    def run_pooled(self, tasks: Sequence[SupervisedTask]) -> List[int]:
        """Run tasks on a supervised pool; returns quarantined indices."""
        quarantined: List[int] = []
        attempts = [0] * len(tasks)
        ready = deque(range(len(tasks)))
        sleeping: Dict[int, float] = {}
        inflight: Dict[Any, int] = {}
        deadlines: Dict[Any, Optional[float]] = {}
        pool = self._new_pool(len(tasks))
        try:
            while ready or sleeping or inflight:
                now = time.monotonic()
                for index in [i for i, t in sleeping.items() if t <= now]:
                    del sleeping[index]
                    ready.append(index)
                while ready and len(inflight) < self.max_workers:
                    index = ready.popleft()
                    task = tasks[index]
                    future = pool.submit(task.fn, *task.args, attempts[index])
                    inflight[future] = index
                    limit = (self.policy.deadline_for(task.items)
                             if task.deadline else None)
                    deadlines[future] = (None if limit is None
                                         else time.monotonic() + limit)
                if not inflight:
                    if sleeping:
                        pause = min(sleeping.values()) - time.monotonic()
                        time.sleep(max(0.0, min(pause, _TICK_SECONDS)))
                    continue
                done, _ = wait(list(inflight), timeout=_TICK_SECONDS,
                               return_when=FIRST_COMPLETED)
                broken = False
                for future in done:
                    index = inflight.pop(future)
                    deadlines.pop(future, None)
                    task = tasks[index]
                    try:
                        value = future.result()
                        self._succeed(index, task, value)
                    except KeyboardInterrupt:
                        raise
                    except BrokenExecutor as exc:
                        broken = True
                        self._charge(index, task,
                                     WorkerLost(
                                         f"worker died running "
                                         f"{self.label}[{task.key}]: {exc}"),
                                     attempts, sleeping, quarantined)
                    except Exception as exc:
                        self._charge(index, task, classify_failure(exc),
                                     attempts, sleeping, quarantined)
                if broken:
                    # The pool is unusable; re-queue the survivors without
                    # charging them an attempt and start a fresh pool.
                    ready.extend(inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    self._kill_pool(pool)
                    pool = self._new_pool(len(ready) + len(sleeping))
                    continue
                now = time.monotonic()
                expired = [future for future, limit in deadlines.items()
                           if limit is not None and limit <= now
                           and future in inflight]
                if expired:
                    for future in expired:
                        index = inflight.pop(future)
                        deadlines.pop(future, None)
                        task = tasks[index]
                        self._charge(
                            index, task,
                            TrialTimeout(
                                f"{self.label}[{task.key}] exceeded "
                                f"{self.policy.deadline_for(task.items):.3g}s "
                                f"deadline"),
                            attempts, sleeping, quarantined)
                    # A hung worker cannot be cancelled individually: kill
                    # the pool, re-queue innocents uncharged, rebuild.
                    ready.extend(inflight.values())
                    inflight.clear()
                    deadlines.clear()
                    self._kill_pool(pool)
                    pool = self._new_pool(len(ready) + len(sleeping))
        except KeyboardInterrupt:
            self._kill_pool(pool)
            raise
        except BaseException:
            self._kill_pool(pool)
            raise
        else:
            pool.shutdown(wait=True)
        return quarantined


# ---------------------------------------------------------------------------
# Campaign execution under supervision
# ---------------------------------------------------------------------------

def remaining_ranges(trials: int,
                     covered: Sequence[Tuple[int, int]]
                     ) -> List[Tuple[int, int]]:
    """Complement of ``covered`` within ``range(trials)``.

    Raises :class:`CacheCorrupt` when the covered ranges overlap or fall
    outside the campaign — a journal claiming impossible coverage is
    corrupt even if its checksum matches.
    """
    spans = sorted((int(start), int(stop)) for start, stop in covered)
    out: List[Tuple[int, int]] = []
    cursor = 0
    for start, stop in spans:
        if start < 0 or stop > trials or start >= stop:
            raise CacheCorrupt(
                f"checkpoint range [{start}, {stop}) outside campaign "
                f"of {trials} trials")
        if start < cursor:
            raise CacheCorrupt(
                f"overlapping checkpoint ranges at trial {start}")
        if start > cursor:
            out.append((cursor, start))
        cursor = stop
    if cursor < trials:
        out.append((cursor, trials))
    return out


def plan_blocks(spans: Sequence[Tuple[int, int]], jobs: int,
                fine: bool = False) -> List[Tuple[int, int]]:
    """Split remaining trial ranges into contiguous work blocks.

    ``fine`` (used when checkpointing) raises the block count to roughly
    4x the worker count so an interrupt loses at most a small block.
    Blocking never affects tallies — only scheduling and checkpoint
    granularity.
    """
    total = sum(stop - start for start, stop in spans)
    if total == 0:
        return []
    target = max(1, jobs)
    if fine:
        target = max(target, min(total, target * 4))
    chunk = max(1, -(-total // target))
    blocks: List[Tuple[int, int]] = []
    for start, stop in spans:
        cursor = start
        while cursor < stop:
            upper = min(stop, cursor + chunk)
            blocks.append((cursor, upper))
            cursor = upper
    return blocks


def shard_worker(program, baseline, pipeline_result, config,
                 start: int, stop: int,
                 chaos_config: Optional[ChaosConfig],
                 cache_dir: Optional[str], static_filter: bool,
                 strikes, attempt: int):
    """Classify trials ``[start, stop)`` under optional chaos injection.

    Runs in a worker process (or inline when serial). Builds a
    campaign-scoped :class:`~repro.faults.injector.StrikeEvaluator` —
    preloading its effect oracle from the persistent cache when
    ``cache_dir`` is given — and returns ``(counts dict, tracker_misses,
    elapsed_seconds, oracle new-entry dict, oracle counter dict)``; the
    parent merges the last two so no re-execution is ever repeated in a
    later run.

    ``strikes`` (a pre-drawn :class:`~repro.faults.batch.StrikeBatch`
    slice covering the shard, or None for per-trial sampling) selects
    the vectorised classification path; retry and quarantine still
    operate on trial indices either way, because a batch slice is a pure
    function of the indices it covers.
    """
    from repro.faults.campaign import run_trial_block
    from repro.faults.injector import StrikeEvaluator
    from repro.faults.oracle import load_persisted, oracle_cache_key

    injector = ChaosInjector(chaos_config) if chaos_config else None
    if injector is not None:
        injector.maybe_kill(("shard", start, stop), attempt)

    on_trial = None
    if injector is not None:
        def on_trial(index: int) -> None:
            injector.maybe_interrupt(("trial", index))
            injector.maybe_delay(("trial", index))
            injector.maybe_raise(("trial", index), attempt)

    evaluator = StrikeEvaluator(
        program, baseline,
        parity=config.parity, tracking=config.tracking,
        pet_entries=config.pet_entries, ecc=config.ecc,
        scheme=getattr(config, "scheme", None),
        static_filter=static_filter)
    if cache_dir is not None:
        from repro.runtime.cache import ResultCache

        evaluator.oracle.preload(load_persisted(
            ResultCache(cache_dir), oracle_cache_key(program)))

    classifier = None
    if strikes is not None:
        from repro.faults.batch import BatchClassifier

        classifier = BatchClassifier(evaluator, pipeline_result)

    began = time.perf_counter()
    counts, tracker_misses = run_trial_block(
        program, baseline, pipeline_result, config, start, stop,
        on_trial=on_trial, evaluator=evaluator, strikes=strikes,
        classifier=classifier)
    stats = evaluator.oracle.counters()
    if classifier is not None:
        stats.update(classifier.counters())
    if (getattr(config, "scheme", None) is not None
            or getattr(config, "mbu_preset", None) is not None):
        # Legacy single-bit campaigns skip the merge so their telemetry
        # dumps stay byte-identical to pre-MBU runs.
        stats.update(evaluator.burst_counters())
    return (dict(counts), tracker_misses, time.perf_counter() - began,
            evaluator.oracle.new_entries(), stats)


def validate_shard(value: Any, task: SupervisedTask) -> None:
    """Reject structurally invalid worker tallies (:class:`ResultInvalid`)."""
    from repro.faults.oracle import validate_table

    ok = False
    try:
        counts, tracker_misses, elapsed, oracle_new, oracle_counters = value
        ok = (isinstance(counts, dict)
              and all(isinstance(outcome, FaultOutcome)
                      and isinstance(n, int) and n >= 0
                      for outcome, n in counts.items())
              and sum(counts.values()) == task.items
              and isinstance(tracker_misses, int) and tracker_misses >= 0
              and isinstance(elapsed, float)
              and validate_table(oracle_new) is not None
              and isinstance(oracle_counters, dict)
              and all(isinstance(k, str) and isinstance(n, int)
                      for k, n in oracle_counters.items()))
    except (TypeError, ValueError):
        ok = False
    if not ok:
        raise ResultInvalid(
            f"shard {task.key} returned malformed tallies: {value!r:.120}")


def execute_campaign(
    program,
    baseline,
    pipeline_result,
    config,
    jobs: int,
    *,
    policy: Optional[RetryPolicy] = None,
    telemetry: Optional[Telemetry] = None,
    journal=None,
    chaos: Optional[ChaosConfig] = None,
    cache_dir: Optional[str] = None,
    static_filter: bool = True,
    batch_strikes: bool = True,
) -> Tuple[Counter, int, CompletenessReport, Dict[Tuple[int, int], str]]:
    """Run a campaign under full supervision.

    Handles resume (merging a checkpoint journal's completed ranges),
    retry/backoff, watchdog deadlines, pool rebuilds, two-phase
    quarantine (failed blocks are split into single trials so only the
    deterministically-failing indices are lost), and checkpointing of
    every completed block. Returns ``(counts, tracker_misses, report,
    oracle_new)`` where ``oracle_new`` is the union of effect-oracle
    entries the shards computed (for the caller to persist).

    With ``batch_strikes`` the whole campaign's strikes are drawn once
    up front (:func:`~repro.faults.batch.draw_strike_batch`) and shard
    tuples carry array slices; tallies, cache keys, and oracle counters
    are bit-identical to per-trial sampling. A degenerate pipeline
    result that cannot be sampled falls back to the scalar path so its
    failure surfaces through the usual per-shard taxonomy.

    A corrupt journal is discarded (counted in telemetry) and the
    campaign restarts from zero — never trust, always re-derive.
    """
    policy = policy or RetryPolicy()
    counts: Counter = Counter()
    tracker_misses = 0
    oracle_new: Dict[Tuple[int, int], str] = {}
    resumed = 0
    covered: List[Tuple[int, int]] = []

    if journal is not None:
        try:
            state = journal.load()
        except CacheCorrupt:
            if telemetry is not None:
                telemetry.increment("checkpoint_corrupt")
            journal.discard()
            state = None
        if state is not None:
            counts.update(state.counts)
            tracker_misses += state.tracker_misses
            covered = list(state.ranges)
            resumed = sum(stop - start for start, stop in covered)
            if telemetry is not None:
                telemetry.increment("checkpoint_resumed_trials", resumed)

    try:
        remaining = remaining_ranges(config.trials, covered)
    except CacheCorrupt:
        # Impossible coverage claims: start over from nothing.
        if telemetry is not None:
            telemetry.increment("checkpoint_corrupt")
        if journal is not None:
            journal.discard()
        counts.clear()
        tracker_misses = 0
        resumed = 0
        remaining = [(0, config.trials)]

    blocks = plan_blocks(remaining, jobs, fine=journal is not None)

    batch = None
    if batch_strikes and blocks:
        from repro.faults.batch import draw_strike_batch

        lo = min(start for start, _ in blocks)
        hi = max(stop for _, stop in blocks)
        try:
            batch = draw_strike_batch(pipeline_result, config,
                                      program.name, lo, hi)
        except KeyboardInterrupt:
            raise
        except Exception:
            # Unsampleable pipeline result (e.g. empty entry-cycle
            # space): let the scalar path raise the identical error
            # inside the shards, where retry/quarantine accounting
            # already knows what to do with it.
            batch = None

    def on_result(index: int, task: SupervisedTask, value) -> None:
        nonlocal tracker_misses
        shard_counts, shard_misses, seconds, shard_oracle, oracle_stats = value
        counts.update(shard_counts)
        tracker_misses += shard_misses
        oracle_new.update(shard_oracle)
        start, stop = task.key
        if journal is not None:
            journal.record(start, stop, shard_counts, shard_misses)
            if telemetry is not None:
                telemetry.increment("checkpoint_writes")
        if telemetry is not None:
            telemetry.merge_counters(oracle_stats)
            telemetry.record_worker("campaign", index, task.items, seconds)

    def run_pass(spans: Sequence[Tuple[int, int]]
                 ) -> Tuple[List[Tuple[int, int]], int]:
        tasks = [
            SupervisedTask(
                fn=shard_worker,
                args=(program, baseline, pipeline_result, config,
                      start, stop, chaos, cache_dir, static_filter,
                      None if batch is None else batch.slice(start, stop)),
                items=stop - start, key=(start, stop), deadline=True)
            for start, stop in spans
        ]
        supervisor = Supervisor(policy, label="campaign", max_workers=jobs,
                                telemetry=telemetry, quarantine=True,
                                validate=validate_shard, on_result=on_result)
        if jobs > 1 and len(tasks) > 1:
            bad = supervisor.run_pooled(tasks)
        else:
            bad = supervisor.run_serial(tasks)
        return [tasks[i].key for i in bad], supervisor.retries

    quarantined: List[int] = []
    try:
        bad_blocks, retries = run_pass(blocks)
        if bad_blocks:
            # Phase 2: isolate the deterministic failures trial-by-trial.
            singles = [(index, index + 1)
                       for start, stop in bad_blocks
                       for index in range(start, stop)]
            bad_trials, more_retries = run_pass(singles)
            retries += more_retries
            quarantined = sorted(start for start, _ in bad_trials)
    except KeyboardInterrupt:
        done = sum(counts.values())
        raise CampaignInterrupted(
            f"campaign interrupted after {done}/{config.trials} trials"
            + ("; checkpoint journal flushed" if journal is not None
               else ""),
            trials_done=done) from None

    if quarantined and telemetry is not None:
        telemetry.increment("quarantined_trials", len(quarantined))

    report = CompletenessReport(
        trials_requested=config.trials,
        trials_succeeded=config.trials - len(quarantined),
        quarantined=tuple(quarantined),
        retries=retries,
        resumed_trials=resumed,
    )
    return counts, tracker_misses, report, oracle_new
