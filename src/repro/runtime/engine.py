"""Process fan-out for campaigns and experiments.

Determinism contract: every parallel entry point here produces results
bit-identical to its serial counterpart, for any worker count and any
scheduling order. Campaign trials draw from per-trial seed streams
(:func:`repro.util.rng.derive_seed` over the trial index), so a shard's
tallies depend only on *which* trial indices it covers — and
:func:`shard_trials` covers each index exactly once. Benchmark runs are
deterministic functions of ``(profile, settings, trigger)``, so mapping
them over processes changes wall-clock time, never values. Merges happen
in submission order and are commutative anyway (counter sums, ordered
result lists).
"""

from __future__ import annotations

import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from typing import Any, List, Optional, Sequence, Tuple

from repro.runtime.telemetry import Telemetry


def shard_trials(trials: int, shards: int) -> List[range]:
    """Partition ``range(trials)`` into at most ``shards`` contiguous,
    non-empty blocks whose concatenation is exactly ``range(trials)``."""
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if trials == 0:
        return []
    shards = min(shards, trials)
    base, extra = divmod(trials, shards)
    blocks: List[range] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append(range(start, start + size))
        start += size
    return blocks


def _campaign_shard(program, baseline, pipeline_result, config,
                    start: int, stop: int):
    """Worker: classify trials [start, stop) and time the shard."""
    from repro.faults.campaign import run_trial_block

    began = time.perf_counter()
    counts, tracker_misses = run_trial_block(
        program, baseline, pipeline_result, config, start, stop)
    return counts, tracker_misses, time.perf_counter() - began


def run_campaign_parallel(
    program,
    baseline,
    pipeline_result,
    config,
    jobs: int,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[Counter, int]:
    """Fan campaign trials out over ``jobs`` worker processes."""
    shards = shard_trials(config.trials, jobs)
    counts: Counter = Counter()
    tracker_misses = 0
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        futures = [
            pool.submit(_campaign_shard, program, baseline, pipeline_result,
                        config, block.start, block.stop)
            for block in shards
        ]
        for worker, (block, future) in enumerate(zip(shards, futures)):
            shard_counts, shard_misses, seconds = future.result()
            counts.update(shard_counts)
            tracker_misses += shard_misses
            if telemetry is not None:
                telemetry.record_worker("campaign", worker, len(block),
                                        seconds)
    return counts, tracker_misses


def _worker_counters(context) -> dict:
    """A worker's telemetry snapshot, with its cache traffic folded in so
    the parent's merged counters account for every hit and miss."""
    counters = dict(context.telemetry.counters)
    if context.cache is not None:
        counters["cache_hits"] = context.cache.hits
        counters["cache_misses"] = context.cache.misses
        counters["cache_puts"] = context.cache.puts
        counters["cache_errors"] = context.cache.errors
    return counters


def _benchmark_task(profile, settings, trigger, cache_dir: Optional[str]):
    """Worker: one full benchmark run under a private serial context."""
    from repro.experiments.common import run_benchmark
    from repro.runtime.cache import ResultCache
    from repro.runtime.context import RuntimeContext, set_runtime

    cache = ResultCache(cache_dir) if cache_dir else None
    context = set_runtime(RuntimeContext(jobs=1, cache=cache))
    began = time.perf_counter()
    run = run_benchmark(profile, settings, trigger)
    elapsed = time.perf_counter() - began
    return run, _worker_counters(context), elapsed


def run_benchmarks_parallel(
    profiles: Sequence[Any],
    settings,
    trigger,
    jobs: int,
    cache_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[Any]:
    """Map ``run_benchmark`` over profiles across worker processes.

    Returns :class:`BenchmarkRun` objects in ``profiles`` order. Each
    worker opens its own handle on the shared cache directory (writes are
    atomic), and its counter snapshot is merged into ``telemetry``.
    """
    results: List[Any] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(profiles))) as pool:
        futures = [
            pool.submit(_benchmark_task, profile, settings, trigger,
                        cache_dir)
            for profile in profiles
        ]
        for worker, future in enumerate(futures):
            run, counters, seconds = future.result()
            if telemetry is not None:
                telemetry.merge_counters(counters)
                telemetry.record_worker("benchmark", worker, 1, seconds)
            results.append(run)
    return results


def _functional_task(profile, settings, cache_dir: Optional[str]):
    """Worker: synthesize + execute + classify one profile."""
    from repro.experiments.common import functional_parts
    from repro.runtime.cache import ResultCache
    from repro.runtime.context import RuntimeContext, set_runtime

    cache = ResultCache(cache_dir) if cache_dir else None
    context = set_runtime(RuntimeContext(jobs=1, cache=cache))
    parts = functional_parts(profile, settings)
    return parts, _worker_counters(context)


def functional_parallel(
    profiles: Sequence[Any],
    settings,
    jobs: int,
    cache_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
) -> List[Any]:
    """Map ``functional_parts`` over profiles across worker processes."""
    results: List[Any] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(profiles))) as pool:
        futures = [
            pool.submit(_functional_task, profile, settings, cache_dir)
            for profile in profiles
        ]
        for future in futures:
            parts, counters = future.result()
            if telemetry is not None:
                telemetry.merge_counters(counters)
            results.append(parts)
    return results
