"""Process fan-out for campaigns and experiments, under supervision.

Determinism contract: every parallel entry point here produces results
bit-identical to its serial counterpart, for any worker count, any
scheduling order, and any recoverable failure history. Campaign trials
draw from per-trial seed streams (:func:`repro.util.rng.derive_seed`
over the trial index), so a shard's tallies depend only on *which* trial
indices it covers — retrying a crashed shard, or re-running it after a
worker was killed, reproduces the identical tallies. Benchmark runs are
deterministic functions of ``(profile, settings, trigger)``, so mapping
them over processes (and retrying on failure) changes wall-clock time,
never values. Merges happen in submission order and are commutative
anyway (counter sums, ordered result lists).

Failure handling lives in :mod:`repro.runtime.resilience`: every fan-out
here runs under a :class:`~repro.runtime.resilience.Supervisor` that
classifies failures, retries with backoff, enforces watchdog deadlines,
and rebuilds the pool when workers die.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.chaos import ChaosConfig, ChaosInjector
from repro.runtime.resilience import (
    RetryPolicy,
    SupervisedTask,
    Supervisor,
    execute_campaign,
)
from repro.runtime.telemetry import Telemetry


def shard_trials(trials: int, shards: int) -> List[range]:
    """Partition ``range(trials)`` into at most ``shards`` contiguous,
    non-empty blocks whose concatenation is exactly ``range(trials)``."""
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if trials == 0:
        return []
    shards = min(shards, trials)
    base, extra = divmod(trials, shards)
    blocks: List[range] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        blocks.append(range(start, start + size))
        start += size
    return blocks


def run_campaign_parallel(
    program,
    baseline,
    pipeline_result,
    config,
    jobs: int,
    telemetry: Optional[Telemetry] = None,
    policy: Optional[RetryPolicy] = None,
    journal=None,
    chaos: Optional[ChaosConfig] = None,
    batch_strikes: bool = True,
) -> Tuple[Counter, int]:
    """Fan campaign trials out over ``jobs`` supervised worker processes.

    Thin wrapper over :func:`repro.runtime.resilience.execute_campaign`
    kept for API continuity; the full return (including the
    :class:`CompletenessReport`) is available from ``execute_campaign``.
    """
    counts, tracker_misses, _, _ = execute_campaign(
        program, baseline, pipeline_result, config, jobs,
        policy=policy, telemetry=telemetry, journal=journal, chaos=chaos,
        batch_strikes=batch_strikes)
    return counts, tracker_misses


def _worker_counters(context) -> dict:
    """A worker's telemetry snapshot, with its cache traffic folded in so
    the parent's merged counters account for every hit and miss."""
    counters = dict(context.telemetry.counters)
    if context.cache is not None:
        counters["cache_hits"] = context.cache.hits
        counters["cache_misses"] = context.cache.misses
        counters["cache_puts"] = context.cache.puts
        counters["cache_errors"] = context.cache.errors
    return counters


def _benchmark_task(profile, settings, trigger, cache_dir: Optional[str],
                    chaos: Optional[ChaosConfig], interval_kernel: bool,
                    chunk_memo: bool, attempt: int):
    """Worker: one full benchmark run under a private serial context."""
    from repro.experiments.common import run_benchmark
    from repro.runtime.cache import ResultCache
    from repro.runtime.context import RuntimeContext, set_runtime

    if chaos is not None:
        ChaosInjector(chaos).maybe_kill(("benchmark", profile.name), attempt)
    cache = ResultCache(cache_dir) if cache_dir else None
    context = set_runtime(RuntimeContext(jobs=1, cache=cache,
                                         interval_kernel=interval_kernel,
                                         chunk_memo=chunk_memo))
    began = time.perf_counter()
    run = run_benchmark(profile, settings, trigger)
    elapsed = time.perf_counter() - began
    return run, _worker_counters(context), elapsed


def run_benchmarks_parallel(
    profiles: Sequence[Any],
    settings,
    trigger,
    jobs: int,
    cache_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosConfig] = None,
    interval_kernel: bool = True,
    chunk_memo: bool = True,
) -> List[Any]:
    """Map ``run_benchmark`` over profiles across supervised processes.

    Returns :class:`BenchmarkRun` objects in ``profiles`` order. Each
    worker opens its own handle on the shared cache directory (writes are
    atomic), and its counter snapshot is merged into ``telemetry``.
    Failed profiles are retried per ``policy``; a profile that keeps
    failing raises its classified fault — an exhibit must never silently
    drop a benchmark.
    """
    results: Dict[int, Any] = {}

    def on_result(index: int, task: SupervisedTask, value) -> None:
        run, counters, seconds = value
        if telemetry is not None:
            telemetry.merge_counters(counters)
            telemetry.record_worker("benchmark", index, 1, seconds)
        results[index] = run

    tasks = [
        SupervisedTask(fn=_benchmark_task,
                       args=(profile, settings, trigger, cache_dir, chaos,
                             interval_kernel, chunk_memo),
                       items=1, key=profile.name, deadline=False)
        for profile in profiles
    ]
    supervisor = Supervisor(policy or RetryPolicy(), label="benchmark",
                            max_workers=min(jobs, len(profiles)),
                            telemetry=telemetry, on_result=on_result)
    supervisor.run_pooled(tasks)
    return [results[index] for index in range(len(profiles))]


def _functional_task(profile, settings, cache_dir: Optional[str],
                     chaos: Optional[ChaosConfig], attempt: int):
    """Worker: synthesize + execute + classify one profile."""
    from repro.experiments.common import functional_parts
    from repro.runtime.cache import ResultCache
    from repro.runtime.context import RuntimeContext, set_runtime

    if chaos is not None:
        ChaosInjector(chaos).maybe_kill(("functional", profile.name), attempt)
    cache = ResultCache(cache_dir) if cache_dir else None
    context = set_runtime(RuntimeContext(jobs=1, cache=cache))
    parts = functional_parts(profile, settings)
    return parts, _worker_counters(context)


def functional_parallel(
    profiles: Sequence[Any],
    settings,
    jobs: int,
    cache_dir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosConfig] = None,
) -> List[Any]:
    """Map ``functional_parts`` over profiles across supervised processes."""
    results: Dict[int, Any] = {}

    def on_result(index: int, task: SupervisedTask, value) -> None:
        parts, counters = value
        if telemetry is not None:
            telemetry.merge_counters(counters)
        results[index] = parts

    tasks = [
        SupervisedTask(fn=_functional_task,
                       args=(profile, settings, cache_dir, chaos),
                       items=1, key=profile.name, deadline=False)
        for profile in profiles
    ]
    supervisor = Supervisor(policy or RetryPolicy(), label="functional",
                            max_workers=min(jobs, len(profiles)),
                            telemetry=telemetry, on_result=on_result)
    supervisor.run_pooled(tasks)
    return [results[index] for index in range(len(profiles))]
