"""Progress and throughput counters for the parallel runtime.

A :class:`Telemetry` instance lives on the active runtime context and is
ticked by the campaign engine, the experiment plumbing, and the result
cache. Worker processes run with their own (fresh) telemetry; the engine
merges their counter snapshots back into the parent after each fan-out,
so parent-side totals are accurate regardless of the worker count.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional


@dataclass(frozen=True)
class WorkerTiming:
    """Wall-clock record for one worker's share of one fan-out."""

    label: str
    worker: int
    items: int
    seconds: float


class Telemetry:
    """Monotonic counters plus labelled time spans and worker timings."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self.spans: Dict[str, float] = {}
        self.worker_timings: List[WorkerTiming] = []

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def add_time(self, label: str, seconds: float) -> None:
        self.spans[label] = self.spans.get(label, 0.0) + seconds

    def record_worker(self, label: str, worker: int, items: int,
                      seconds: float) -> None:
        self.worker_timings.append(
            WorkerTiming(label=label, worker=worker, items=items,
                         seconds=seconds))

    def merge_counters(self, counters: Mapping[str, int]) -> None:
        """Fold a worker process's counter snapshot into this instance."""
        for name, amount in counters.items():
            self.counters[name] += amount

    @property
    def trials_per_second(self) -> float:
        """Campaign throughput over every campaign run so far."""
        elapsed = self.spans.get("campaign", 0.0)
        if elapsed <= 0.0:
            return 0.0
        return self.counters["campaign_trials"] / elapsed

    def snapshot(self) -> Dict[str, object]:
        return {
            "counters": dict(self.counters),
            "spans": dict(self.spans),
            "worker_timings": [
                (t.label, t.worker, t.items, t.seconds)
                for t in self.worker_timings
            ],
        }

    def reset(self) -> None:
        self.counters.clear()
        self.spans.clear()
        self.worker_timings.clear()

    def format_summary(self, cache: Optional[object] = None,
                       jobs: int = 1, verbose: bool = False) -> str:
        """One-paragraph human-readable account of the work performed.

        ``verbose`` appends the fast-path breakdown (effect-oracle memo
        hits / static kills / re-executions and warmed-hierarchy reuse)
        even when it would normally be folded away, plus the raw counter
        dump.
        """
        parts = [f"jobs={jobs}"]
        sims = []
        for name, label in (("functional_sims", "functional"),
                            ("pipeline_sims", "pipeline"),
                            ("campaign_trials", "campaign trials")):
            if self.counters[name]:
                sims.append(f"{self.counters[name]} {label}")
        parts.append("sims: " + (", ".join(sims) if sims else "none"))
        if self.counters["campaign_trials"] and self.trials_per_second:
            parts.append(f"{self.trials_per_second:,.0f} trials/s")
        # Combine this process's cache counters with the worker-side
        # traffic merged in via ``merge_counters``.
        hits = self.counters["cache_hits"] + getattr(cache, "hits", 0)
        misses = self.counters["cache_misses"] + getattr(cache, "misses", 0)
        if cache is not None or hits or misses:
            total = hits + misses
            rate = f" ({hits / total:.0%} hit rate)" if total else ""
            corrupt = self.counters["cache_corrupt_entries"]
            detail = f", {corrupt} corrupt" if corrupt else ""
            parts.append(f"cache: {hits} hits, {misses} misses{rate}{detail}")
        else:
            parts.append("cache: off")
        oracle = self._format_oracle()
        if oracle:
            parts.append(oracle)
        batch = self._format_batch()
        if batch:
            parts.append(batch)
        mbu = self._format_mbu()
        if mbu:
            parts.append(mbu)
        chunk = self._format_chunk_memo()
        if chunk:
            parts.append(chunk)
        serve = self._format_serve()
        if serve:
            parts.append(serve)
        remote = self._format_remote_store()
        if remote:
            parts.append(remote)
        resilience = self._format_resilience()
        if resilience:
            parts.append(resilience)
        checkpoint = self._format_checkpoint()
        if checkpoint:
            parts.append(checkpoint)
        lines = ["[runtime: " + " | ".join(parts) + "]"]
        for timing in self.worker_timings[-8:]:
            lines.append(
                f"  worker {timing.worker} ({timing.label}): "
                f"{timing.items} items in {timing.seconds:.2f}s")
        if verbose:
            warm = (self.counters["warm_hierarchy_hits"]
                    + self.counters["warm_hierarchy_misses"])
            if warm:
                lines.append(
                    f"  warm hierarchy: "
                    f"{self.counters['warm_hierarchy_hits']} snapshot "
                    f"restores, {self.counters['warm_hierarchy_misses']} "
                    f"full warm-ups, "
                    f"{self.counters['warm_snapshot_evictions']} snapshots "
                    f"evicted")
            if self.counters["timeline_store_hits"]:
                lines.append(
                    f"  timeline store: "
                    f"{self.counters['timeline_store_hits']} pipeline runs "
                    f"served without simulation")
            footprint = self._chunk_memo_footprint()
            if footprint is not None and footprint["segments"]:
                lines.append(
                    f"  chunk memo: {footprint['segments']} segments over "
                    f"{footprint['keys']} keys in {footprint['scopes']} "
                    f"scopes, {footprint['bytes'] / (1 << 20):.1f} MiB "
                    f"resident")
            for name in sorted(self.counters):
                lines.append(f"  {name}: {self.counters[name]}")
        return "\n".join(lines)

    def _format_oracle(self) -> str:
        """Strike fast-path account, empty when no oracle was consulted."""
        c = self.counters
        memo = c["oracle_memo_hits"]
        static = c["oracle_static_kills"]
        executed = c["oracle_executions"]
        total = memo + static + executed
        if not total:
            return ""
        fast = memo + static
        return (f"oracle: {memo} memo hits, {static} static kills, "
                f"{executed} re-executions ({fast / total:.0%} fast path)")

    def _format_chunk_memo(self) -> str:
        """Chunk-memo account, empty when the fast path never engaged."""
        c = self.counters
        hits = c["chunk_memo_hits"]
        misses = c["chunk_memo_misses"]
        if not (hits or misses or c["chunk_memo_fallbacks"]):
            return ""
        total = hits + misses
        rate = f" ({hits / total:.0%} hit rate)" if total else ""
        text = (f"chunk memo: {hits} hits, {misses} misses{rate}, "
                f"{c['chunk_memo_splices']} rows spliced")
        detail = []
        if c["chunk_memo_fallbacks"]:
            detail.append(f"{c['chunk_memo_fallbacks']} fallbacks")
        if c["chunk_memo_evictions"]:
            detail.append(f"{c['chunk_memo_evictions']} evicted")
        if detail:
            text += f" [{', '.join(detail)}]"
        return text

    @staticmethod
    def _chunk_memo_footprint() -> Optional[dict]:
        """In-process memo size, None when compose was never imported."""
        import sys

        compose = sys.modules.get("repro.pipeline.compose")
        if compose is None:
            return None
        return compose.chunk_memo_footprint()

    def _format_batch(self) -> str:
        """Vectorised-strike account, empty when no batch was classified.

        ``vector kills`` are trials the array pass resolved outright
        (never-read, ECC-corrected, wrong-path); ``scalar kills`` are
        committed-read survivors the bit-matrix masks or the oracle memo
        settled without re-execution; the rest re-executed.
        """
        c = self.counters
        total = c["batch_trials"]
        if not total:
            return ""
        return (f"batch: {c['batch_vector_kills']} vector kills, "
                f"{c['batch_scalar_kills']} scalar kills, "
                f"{c['batch_reexecutions']} re-executions "
                f"over {total} trials")

    def _format_mbu(self) -> str:
        """ECC/MBU decoder account, empty for single-bit campaigns.

        The counters arrive only from campaigns that set a lattice
        scheme or an MBU preset (shard workers withhold them otherwise),
        so legacy telemetry output is byte-identical to pre-MBU runs.
        """
        c = self.counters
        if not (c["ecc_corrected"] or c["ecc_detected"]
                or c["ecc_escaped"] or c["mbu_multi_bit"]):
            return ""
        return (f"ecc: {c['ecc_corrected']} corrected, "
                f"{c['ecc_detected']} detected, "
                f"{c['ecc_escaped']} escaped "
                f"({c['mbu_multi_bit']} multi-bit bursts)")

    def _format_serve(self) -> str:
        """Query-service account, empty when no requests were served."""
        c = self.counters
        total = c["serve_requests"]
        if not total:
            return ""
        text = (f"serve: {total} requests ({c['serve_warm_hits']} warm, "
                f"{c['serve_cold_computes']} cold, "
                f"{c['serve_coalesced']} coalesced)")
        detail = []
        if c["serve_lru_evictions"]:
            detail.append(f"{c['serve_lru_evictions']} evicted")
        if c["serve_errors"]:
            detail.append(f"{c['serve_errors']} errors")
        if c["serve_shed_requests"]:
            detail.append(f"{c['serve_shed_requests']} shed")
        if c["serve_deadline_expirations"]:
            detail.append(f"{c['serve_deadline_expirations']} deadlines "
                          f"expired")
        if c["serve_drains"]:
            detail.append(f"drained ({c['serve_drained_answers']} answered, "
                          f"{c['serve_drain_refusals']} refused)")
        if c["serve_store_hits"] or c["serve_store_puts"]:
            detail.append(f"store {c['serve_store_hits']} gets, "
                          f"{c['serve_store_puts']} puts")
        if detail:
            text += f" [{', '.join(detail)}]"
        return text

    def _format_remote_store(self) -> str:
        """Service-store client account, empty when no service was used."""
        c = self.counters
        if not (c["remote_store_hits"] or c["remote_store_misses"]
                or c["remote_store_puts"] or c["remote_store_errors"]
                or c["remote_store_short_circuits"]):
            return ""
        text = (f"service store: {c['remote_store_hits']} hits, "
                f"{c['remote_store_misses']} misses, "
                f"{c['remote_store_puts']} puts")
        if c["remote_store_errors"]:
            text += f", {c['remote_store_errors']} errors"
        if c["remote_store_client_retries"]:
            text += f", {c['remote_store_client_retries']} retries"
        if c["remote_store_breaker_open"]:
            text += (f", breaker opened x{c['remote_store_breaker_open']} "
                     f"({c['remote_store_short_circuits']} short-circuited)")
        return text

    def _format_resilience(self) -> str:
        """Retry/quarantine account, empty when the run was failure-free."""
        c = self.counters
        failures = [
            (c["workers_lost"], "workers lost"),
            (c["trial_timeouts"], "timeouts"),
            (c["trial_crashes"], "crashes"),
            (c["results_invalid"], "invalid results"),
        ]
        total_failures = sum(n for n, _ in failures)
        if not (c["retries"] or c["quarantined_trials"] or total_failures):
            return ""
        text = f"resilience: {c['retries']} retries"
        detail = ", ".join(f"{n} {label}" for n, label in failures if n)
        if detail:
            text += f" ({detail})"
        if c["quarantined_trials"]:
            text += f", {c['quarantined_trials']} trials quarantined"
        if c["campaigns_degraded"]:
            text += " [degraded]"
        return text

    def _format_checkpoint(self) -> str:
        """Checkpoint/resume account, empty when no journal was touched."""
        c = self.counters
        if not (c["checkpoint_writes"] or c["checkpoint_resumed_trials"]
                or c["checkpoint_corrupt"]):
            return ""
        text = f"checkpoint: {c['checkpoint_writes']} writes"
        if c["checkpoint_resumed_trials"]:
            text += f", {c['checkpoint_resumed_trials']} trials resumed"
        if c["checkpoint_corrupt"]:
            text += (f", {c['checkpoint_corrupt']} corrupt journals "
                     f"discarded")
        return text
