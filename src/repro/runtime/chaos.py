"""Deterministic chaos injection for the runtime itself.

The paper's experiments inject faults into a simulated instruction queue;
this module injects faults into the *campaign runtime* — killing worker
processes, delaying or crashing trials, and garbling cache or checkpoint
files — so the supervision layer's recovery paths can be proven rather
than assumed (the same injection-based-validation philosophy, aimed at
our own machinery).

Every decision is a pure function of ``(chaos seed, site labels)`` via
:func:`repro.util.rng.derive_seed`, so a chaos run is exactly
reproducible: the same seed kills the same workers and poisons the same
trials on every invocation, regardless of scheduling. Transient modes
(``kill-worker``, ``raise-trial``) additionally key on the attempt number
and only fire on the first attempt, so a retry always recovers;
``poison-trial`` deliberately ignores the attempt so the supervisor's
quarantine path is exercised.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

from repro.util.rng import DeterministicRng, derive_seed

#: Every recognised failure mode, as spelled on the ``--chaos`` flag.
CHAOS_MODES = (
    "kill-worker",        # os._exit a worker process at shard start
    "delay-trial",        # sleep before a trial (exercises the watchdog)
    "raise-trial",        # transient mid-trial exception (recovers on retry)
    "poison-trial",       # deterministic mid-trial exception (quarantined)
    "corrupt-cache",      # garble the persistent cache entry after a write
    "corrupt-checkpoint", # garble the checkpoint journal after a run
    "interrupt",          # raise KeyboardInterrupt mid-campaign
)


class ChaosError(RuntimeError):
    """An exception injected into a trial by the chaos harness."""


@dataclass(frozen=True)
class ChaosConfig:
    """Which failure modes are armed, and how aggressively."""

    modes: Tuple[str, ...] = ()
    seed: int = 1337
    kill_prob: float = 0.3
    delay_prob: float = 0.1
    delay_seconds: float = 0.005
    raise_prob: float = 0.08
    poison_prob: float = 0.05
    interrupt_prob: float = 0.05

    def __post_init__(self) -> None:
        unknown = [m for m in self.modes if m not in CHAOS_MODES]
        if unknown:
            raise ValueError(
                f"unknown chaos mode(s) {', '.join(sorted(unknown))}; "
                f"choose from {', '.join(CHAOS_MODES)}")
        if self.seed < 0:
            raise ValueError("chaos seed must be non-negative")
        for name in ("kill_prob", "delay_prob", "raise_prob", "poison_prob",
                     "interrupt_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_seconds < 0.0:
            raise ValueError("delay_seconds must be non-negative")

    @classmethod
    def parse(cls, spec: str, seed: int = 1337, **overrides) -> "ChaosConfig":
        """Build a config from a ``--chaos`` comma list, e.g.
        ``"kill-worker,corrupt-cache"``."""
        modes = tuple(dict.fromkeys(
            part.strip() for part in spec.split(",") if part.strip()))
        if not modes:
            raise ValueError("empty --chaos specification")
        return cls(modes=modes, seed=seed, **overrides)

    def enabled(self, mode: str) -> bool:
        return mode in self.modes


def in_worker_process() -> bool:
    """True when running inside a multiprocessing child."""
    return multiprocessing.parent_process() is not None


class ChaosInjector:
    """Applies a :class:`ChaosConfig` at well-defined injection sites."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config

    def decide(self, prob: float, *site: object) -> bool:
        """Deterministic bernoulli draw for one injection site."""
        if prob <= 0.0:
            return False
        rng = DeterministicRng(derive_seed(self.config.seed, "chaos", *site))
        return rng.bernoulli(prob)

    # -- in-worker sites -------------------------------------------------

    def maybe_kill(self, site: Tuple[object, ...], attempt: int) -> None:
        """Hard-kill the current *worker* process (never the parent).

        Fires only on the first attempt, so the supervisor's pool rebuild
        plus retry always completes the shard.
        """
        if (self.config.enabled("kill-worker") and attempt == 0
                and in_worker_process()
                and self.decide(self.config.kill_prob, "kill", *site)):
            os._exit(13)

    def maybe_delay(self, site: Tuple[object, ...]) -> None:
        if (self.config.enabled("delay-trial")
                and self.decide(self.config.delay_prob, "delay", *site)):
            time.sleep(self.config.delay_seconds)

    def maybe_raise(self, site: Tuple[object, ...], attempt: int) -> None:
        """Raise a :class:`ChaosError` mid-trial.

        ``poison-trial`` ignores the attempt number — the same trials fail
        deterministically forever and must end up quarantined.
        ``raise-trial`` is transient: first attempt only.
        """
        if (self.config.enabled("poison-trial")
                and self.decide(self.config.poison_prob, "poison", *site)):
            raise ChaosError(f"chaos: poisoned {site}")
        if (self.config.enabled("raise-trial") and attempt == 0
                and self.decide(self.config.raise_prob, "raise", *site)):
            raise ChaosError(f"chaos: transient fault at {site}")

    def maybe_interrupt(self, site: Tuple[object, ...]) -> None:
        """Simulate a Ctrl-C / SIGTERM landing mid-campaign."""
        if (self.config.enabled("interrupt")
                and self.decide(self.config.interrupt_prob,
                                "interrupt", *site)):
            raise KeyboardInterrupt

    # -- file-corruption sites (parent side) -----------------------------

    def corrupt_file(self, path: Union[str, Path], *site: object) -> bool:
        """Deterministically truncate or garble ``path`` in place.

        Returns True when the file was damaged (False when it does not
        exist or cannot be rewritten — chaos must not crash the run it is
        testing).
        """
        path = Path(path)
        try:
            data = path.read_bytes()
            rng = DeterministicRng(
                derive_seed(self.config.seed, "chaos", "corrupt", *site))
            if rng.bernoulli(0.5):
                # Torn write: keep only a prefix.
                damaged = data[: len(data) // 2]
            else:
                # Bit rot: flip bits across the first 64 bytes.
                head = bytes(b ^ 0xA5 for b in data[:64])
                damaged = head + data[64:]
            path.write_bytes(damaged)
        except OSError:
            return False
        return True

    # -- helpers for tests and reports -----------------------------------

    def poisoned_trials(self, trials: int) -> Tuple[int, ...]:
        """Indices the ``poison-trial`` mode will fail on every attempt."""
        if not self.config.enabled("poison-trial"):
            return ()
        return tuple(
            index for index in range(trials)
            if self.decide(self.config.poison_prob, "poison", "trial", index))
