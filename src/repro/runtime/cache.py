"""Content-addressed persistent result cache.

Keys are sha256 digests over a canonical token stream of every ingredient
that determines a result: the program's instruction bytes, the machine /
squash / campaign configuration, the experiment seed, and a code-version
tag bumped whenever simulation semantics change. Values are pickles on
disk under ``<root>/<key[:2]>/<key>.pkl``, written atomically so parallel
workers can share one cache directory.

Failure policy: the cache must never take a run down. Unreadable,
truncated, or otherwise corrupt entries are treated as misses and
recomputed; write failures are swallowed (and counted) so a read-only
cache directory degrades to a pass-through.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from array import array
from enum import Enum
from pathlib import Path
from typing import Any, Iterator, Union

#: Bump whenever a change alters simulation semantics (and therefore any
#: previously cached result). Part of every cache key.
CODE_VERSION = "repro-runtime-1"

#: Sentinel distinguishing "no entry" from a cached ``None``.
MISS = object()

_SEP = b"\x1f"


def _tokens(obj: Any) -> Iterator[bytes]:
    """Canonical byte tokens for every object a cache key may contain."""
    # Local imports: the simulator packages must not depend on the runtime.
    from repro.isa.instruction import Instruction
    from repro.isa.program import Program
    from repro.pipeline.iq import (
        KIND_BY_CODE,
        IntervalTimeline,
        OccupancyInterval,
    )
    from repro.pipeline.result import PipelineResult

    if obj is None:
        yield b"none"
    elif isinstance(obj, bool):
        yield b"bool:" + (b"1" if obj else b"0")
    elif isinstance(obj, int):
        yield b"int:" + str(obj).encode()
    elif isinstance(obj, float):
        yield b"float:" + repr(obj).encode()
    elif isinstance(obj, str):
        yield b"str:" + obj.encode()
    elif isinstance(obj, bytes):
        yield b"bytes:" + obj
    elif isinstance(obj, array):
        # Numeric columns (strike batches, timeline slices) tokenise by
        # typecode + raw bytes. Campaign cache keys deliberately exclude
        # the batching flag and any drawn strike arrays — batched and
        # scalar runs of the same campaign must hash identically so
        # cached tallies never fork.
        yield b"arr:" + obj.typecode.encode() + b":" + obj.tobytes()
    elif isinstance(obj, Enum):
        yield f"enum:{type(obj).__name__}:{obj.value}".encode()
    elif isinstance(obj, Instruction):
        yield b"insn:" + str(obj.encode()).encode()
    elif isinstance(obj, Program):
        yield b"program:" + obj.name.encode()
        yield from _tokens((obj.entry, obj.data_words))
        yield b",".join(str(i.encode()).encode() for i in obj.instructions)
        for info in obj.functions:
            yield f"fn:{info.name}:{info.entry}:{info.end}".encode()
        yield from _tokens(sorted(
            (k, repr(v)) for k, v in obj.metadata.items()))
    elif isinstance(obj, OccupancyInterval):
        issue = -1 if obj.issue_cycle is None else obj.issue_cycle
        seq = -1 if obj.seq is None else obj.seq
        yield (f"ivl:{seq}:{obj.kind.value}:{obj.alloc_cycle}:"
               f"{issue}:{obj.dealloc_cycle}:"
               f"{obj.instruction.encode()}").encode()
    elif isinstance(obj, IntervalTimeline):
        # Column form of the OccupancyInterval encoding above, token for
        # token (NO_VALUE is already -1), so a result's key is the same
        # whichever timing kernel produced it — no materialisation needed.
        for seq, kind, alloc, issue, dealloc, instr in zip(
                obj.seq, obj.kind, obj.alloc, obj.issue, obj.dealloc,
                obj.instr):
            yield (f"ivl:{seq}:{KIND_BY_CODE[kind].value}:{alloc}:"
                   f"{issue}:{dealloc}:{instr.encode()}").encode()
    elif isinstance(obj, PipelineResult):
        yield b"pipeline"
        yield from _tokens((obj.cycles, obj.committed, obj.iq_entries))
        yield from _tokens(sorted(obj.stats.items()))
        if isinstance(obj.intervals, IntervalTimeline):
            yield from _tokens(obj.intervals)
        else:
            for interval in obj.intervals:
                yield from _tokens(interval)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        yield b"dc:" + type(obj).__name__.encode()
        # ``_CACHE_OPTIONAL_FIELDS`` names fields that are omitted from
        # the token stream while None: a config may grow new optional
        # knobs without forking the key of every result computed before
        # the knob existed (e.g. pre-MBU campaign tallies).
        optional = getattr(type(obj), "_CACHE_OPTIONAL_FIELDS", ())
        for field in dataclasses.fields(obj):
            value = getattr(obj, field.name)
            if value is None and field.name in optional:
                continue
            yield b"f:" + field.name.encode()
            yield from _tokens(value)
    elif isinstance(obj, dict):
        yield b"dict"
        for key in sorted(obj, key=repr):
            yield from _tokens(key)
            yield from _tokens(obj[key])
    elif isinstance(obj, (list, tuple)):
        yield b"seq"
        for item in obj:
            yield from _tokens(item)
    elif isinstance(obj, (set, frozenset)):
        yield b"set"
        for item in sorted(obj, key=repr):
            yield from _tokens(item)
    else:
        raise TypeError(
            f"cannot derive a cache key from {type(obj).__name__}; "
            f"add an explicit canonical form to repro.runtime.cache")


def cache_key(*parts: Any) -> str:
    """sha256 hex digest of ``CODE_VERSION`` plus the canonical parts."""
    digest = hashlib.sha256()
    digest.update(CODE_VERSION.encode())
    for part in parts:
        for token in _tokens(part):
            digest.update(_SEP)
            digest.update(token)
    return digest.hexdigest()


def fingerprint_program(program: Any) -> str:
    """Content hash of a program's code, layout, and metadata."""
    return cache_key(program)


class ResultCache:
    """Pickle-on-disk store addressed by :func:`cache_key` digests."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.errors = 0

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Stored value for ``key``, or :data:`MISS` (never raises)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except Exception:
            # Corrupt, truncated, or unpicklable entry: treat as a miss;
            # the recompute will overwrite it. The degradation is counted
            # on the active telemetry (not just ``self.errors``) so a
            # serving process notices a store that is silently rotting.
            self.errors += 1
            self.misses += 1
            self._count_corrupt_entry()
            return MISS
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> bool:
        """Atomically store ``value``; returns False on (counted) failure.

        Durable write-then-rename: the pickle is flushed and fsynced
        before being renamed over the final path (and the directory entry
        is fsynced after), so a crash mid-write can never leave a torn
        entry under the real key — corruption tolerance on read is the
        backstop, not the plan.
        """
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                            prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, path)
                self._fsync_dir(path.parent)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            self.errors += 1
            return False
        self.puts += 1
        return True

    @staticmethod
    def _count_corrupt_entry() -> None:
        """Tick ``cache_corrupt_entries`` on the active telemetry.

        Deferred import (context imports this module) and best-effort:
        the never-take-a-run-down policy covers the counting itself.
        """
        try:
            from repro.runtime.context import get_runtime

            get_runtime().telemetry.increment("cache_corrupt_entries")
        except Exception:
            pass

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Best-effort fsync of the directory entry after a rename."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))
