"""Atomic, versioned checkpoint journal for interruptible campaigns.

A campaign periodically records each completed block of trials —
``(start, stop, outcome tallies, tracker misses)`` — into a JSON journal
keyed by the campaign's content hash. Writes are torn-write safe: the
payload goes to a temp file, is flushed and fsynced, then atomically
renamed over the journal (the directory entry is fsynced too). A
``--resume`` run loads the journal, re-validates it end to end (format
version, campaign key, trial count, per-range tally sums, a sha256
checksum over the canonical payload), merges the completed ranges, and
computes only the complement — bit-identical to an uninterrupted run
because every trial draws from its own derived seed stream.

Anything suspicious raises :class:`~repro.runtime.resilience.CacheCorrupt`;
the campaign layer responds by discarding the journal and starting over.
A checkpoint may lose work, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.due.outcomes import FaultOutcome
from repro.runtime.resilience import CacheCorrupt, remaining_ranges

#: Bump when the journal format changes; old journals are discarded.
JOURNAL_VERSION = 1


@dataclass(frozen=True)
class JournalState:
    """Validated contents of a checkpoint journal."""

    ranges: Tuple[Tuple[int, int], ...]
    counts: Counter
    tracker_misses: int

    @property
    def trials_covered(self) -> int:
        return sum(stop - start for start, stop in self.ranges)


def _canonical(payload: Mapping) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()


def _checksum(payload: Mapping) -> str:
    body = {key: value for key, value in payload.items()
            if key != "checksum"}
    return hashlib.sha256(_canonical(body)).hexdigest()


def fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via flush + fsync + atomic rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=".tmp-",
                                    suffix=path.suffix)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    fsync_directory(path.parent)


class CheckpointJournal:
    """On-disk record of a campaign's completed trial blocks."""

    def __init__(self, directory: Union[str, Path], campaign_key: str,
                 trials: int) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.campaign_key = campaign_key
        self.trials = trials
        self.path = self.directory / f"campaign-{campaign_key[:16]}.json"
        self._entries: List[Dict] = []

    # -- reading ---------------------------------------------------------

    def load(self) -> Optional[JournalState]:
        """Parse and validate the journal; None when absent.

        Raises :class:`CacheCorrupt` on any structural, checksum, or
        identity mismatch — the caller discards and restarts.
        """
        try:
            raw = self.path.read_text()
        except FileNotFoundError:
            return None
        except (OSError, UnicodeDecodeError) as exc:
            raise CacheCorrupt(f"unreadable checkpoint journal: {exc}")
        try:
            doc = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CacheCorrupt(f"undecodable checkpoint journal: {exc}")
        if not isinstance(doc, dict):
            raise CacheCorrupt("checkpoint journal is not an object")
        if doc.get("version") != JOURNAL_VERSION:
            raise CacheCorrupt(
                f"checkpoint journal version {doc.get('version')!r} != "
                f"{JOURNAL_VERSION}")
        if doc.get("checksum") != _checksum(doc):
            raise CacheCorrupt("checkpoint journal checksum mismatch")
        if doc.get("campaign") != self.campaign_key:
            raise CacheCorrupt("checkpoint journal belongs to a different "
                               "campaign")
        if doc.get("trials") != self.trials:
            raise CacheCorrupt(
                f"checkpoint journal covers {doc.get('trials')!r} trials, "
                f"campaign wants {self.trials}")
        entries = doc.get("entries")
        if not isinstance(entries, list):
            raise CacheCorrupt("checkpoint journal entries missing")

        counts: Counter = Counter()
        tracker_misses = 0
        ranges: List[Tuple[int, int]] = []
        for entry in entries:
            state = self._validate_entry(entry)
            start, stop, entry_counts, misses = state
            ranges.append((start, stop))
            counts.update(entry_counts)
            tracker_misses += misses
        # Overlap / bounds validation (raises CacheCorrupt).
        remaining_ranges(self.trials, ranges)
        self._entries = [dict(entry) for entry in entries]
        return JournalState(ranges=tuple(ranges), counts=counts,
                            tracker_misses=tracker_misses)

    @staticmethod
    def _validate_entry(entry) -> Tuple[int, int, Counter, int]:
        if not isinstance(entry, dict):
            raise CacheCorrupt("checkpoint entry is not an object")
        try:
            start = int(entry["start"])
            stop = int(entry["stop"])
            misses = int(entry["misses"])
            raw_counts = entry["counts"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CacheCorrupt(f"malformed checkpoint entry: {exc}")
        if not isinstance(raw_counts, dict) or misses < 0:
            raise CacheCorrupt("malformed checkpoint entry")
        counts: Counter = Counter()
        for name, value in raw_counts.items():
            try:
                outcome = FaultOutcome(name)
            except ValueError:
                raise CacheCorrupt(f"unknown outcome {name!r} in checkpoint")
            if not isinstance(value, int) or value < 0:
                raise CacheCorrupt(f"bad tally for {name!r} in checkpoint")
            counts[outcome] = value
        if sum(counts.values()) != stop - start:
            raise CacheCorrupt(
                f"checkpoint entry [{start}, {stop}) tallies "
                f"{sum(counts.values())} trials")
        return start, stop, counts, misses

    # -- writing ---------------------------------------------------------

    def record(self, start: int, stop: int,
               counts: Mapping[FaultOutcome, int],
               tracker_misses: int) -> None:
        """Append one completed block and flush the journal atomically."""
        self._entries.append({
            "start": int(start),
            "stop": int(stop),
            "misses": int(tracker_misses),
            "counts": {outcome.value: int(n)
                       for outcome, n in sorted(counts.items(),
                                                key=lambda kv: kv[0].value)},
        })
        self._write()

    def _write(self) -> None:
        payload = {
            "version": JOURNAL_VERSION,
            "campaign": self.campaign_key,
            "trials": self.trials,
            "entries": self._entries,
        }
        payload["checksum"] = _checksum(payload)
        atomic_write(self.path, _canonical(payload))

    def discard(self) -> None:
        """Forget all recorded blocks and remove the on-disk journal."""
        self._entries = []
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass
