"""Parallel execution runtime: fan-out, cache, telemetry, resilience.

The runtime is deliberately orthogonal to the simulator: experiments and
campaigns consult the *active* :class:`~repro.runtime.context.RuntimeContext`
(jobs, cache, telemetry, retry policy, checkpointing, chaos) but compute
identical results whether they run serially, across worker processes,
out of the persistent cache, or through a crash/retry/resume history —
the supervision layer (:mod:`repro.runtime.resilience`) guarantees that
failures cost wall-clock time, never correctness.
"""

from repro.runtime.cache import CODE_VERSION, MISS, ResultCache, cache_key
from repro.runtime.chaos import (
    CHAOS_MODES,
    ChaosConfig,
    ChaosError,
    ChaosInjector,
)
from repro.runtime.checkpoint import (
    JOURNAL_VERSION,
    CheckpointJournal,
    JournalState,
)
from repro.runtime.context import (
    RuntimeContext,
    configure,
    get_runtime,
    reset_runtime,
    set_runtime,
    use_runtime,
)
from repro.runtime.engine import shard_trials
from repro.runtime.resilience import (
    CacheCorrupt,
    CampaignInterrupted,
    CompletenessReport,
    ResultInvalid,
    RetryPolicy,
    RuntimeFault,
    SupervisedTask,
    Supervisor,
    TrialCrash,
    TrialTimeout,
    WorkerLost,
    classify_failure,
    remaining_ranges,
)
from repro.runtime.telemetry import Telemetry, WorkerTiming

__all__ = [
    "CHAOS_MODES",
    "CODE_VERSION",
    "CacheCorrupt",
    "CampaignInterrupted",
    "ChaosConfig",
    "ChaosError",
    "ChaosInjector",
    "CheckpointJournal",
    "CompletenessReport",
    "JOURNAL_VERSION",
    "JournalState",
    "MISS",
    "ResultCache",
    "ResultInvalid",
    "RetryPolicy",
    "RuntimeContext",
    "RuntimeFault",
    "SupervisedTask",
    "Supervisor",
    "Telemetry",
    "TrialCrash",
    "TrialTimeout",
    "WorkerLost",
    "WorkerTiming",
    "cache_key",
    "classify_failure",
    "configure",
    "get_runtime",
    "remaining_ranges",
    "reset_runtime",
    "set_runtime",
    "shard_trials",
    "use_runtime",
]
