"""Parallel execution runtime: process fan-out, result cache, telemetry.

The runtime is deliberately orthogonal to the simulator: experiments and
campaigns consult the *active* :class:`~repro.runtime.context.RuntimeContext`
(jobs, cache, telemetry) but compute identical results whether they run
serially, across worker processes, or out of the persistent cache.
"""

from repro.runtime.cache import CODE_VERSION, MISS, ResultCache, cache_key
from repro.runtime.context import (
    RuntimeContext,
    configure,
    get_runtime,
    reset_runtime,
    set_runtime,
    use_runtime,
)
from repro.runtime.engine import shard_trials
from repro.runtime.telemetry import Telemetry, WorkerTiming

__all__ = [
    "CODE_VERSION",
    "MISS",
    "ResultCache",
    "RuntimeContext",
    "Telemetry",
    "WorkerTiming",
    "cache_key",
    "configure",
    "get_runtime",
    "reset_runtime",
    "set_runtime",
    "shard_trials",
    "use_runtime",
]
