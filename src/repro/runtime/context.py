"""The active runtime: workers, cache, telemetry, and failure policy.

Experiments and campaigns read the process-wide context installed here;
the default is serial with no persistent cache, no checkpointing, and no
chaos, which preserves the pre-runtime behaviour exactly. The CLI and
the benchmark suite install a configured context from ``--jobs`` /
``--cache-dir`` / ``--no-cache`` / ``--retries`` / ``--trial-timeout`` /
``--checkpoint-dir`` / ``--resume`` / ``--chaos`` flags (or their
``REPRO_BENCH_*`` environment twins).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.runtime.cache import ResultCache
from repro.runtime.chaos import ChaosConfig
from repro.runtime.resilience import RetryPolicy
from repro.runtime.telemetry import Telemetry


@dataclass
class RuntimeContext:
    """Everything the execution engine needs to know about *how* to run."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    telemetry: Telemetry = field(default_factory=Telemetry)
    #: Retry/backoff/watchdog budget for supervised fan-outs.
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: Deterministic fault injector for the runtime itself (None = off).
    chaos: Optional[ChaosConfig] = None
    #: Campaign checkpoint journal directory (None = no checkpointing).
    checkpoint_dir: Optional[Path] = None
    #: Continue an interrupted campaign from its checkpoint journal.
    resume: bool = False
    #: Let the effect oracle classify provably-inert strikes without
    #: re-execution (``--no-static-filter`` turns this off to measure the
    #: filter / reproduce seed-era wall-clock; tallies are identical).
    static_filter: bool = True
    #: Run timing simulations through the interval-compressed kernel
    #: (``--no-interval-kernel`` selects the legacy per-cycle loop;
    #: results are bit-identical either way).
    interval_kernel: bool = True
    #: Draw each campaign's strikes as one array batch and classify them
    #: through the vectorised bit-matrix pre-filter
    #: (``--no-batch-strikes`` selects per-trial sampling; tallies,
    #: cache keys, and oracle counters are bit-identical either way).
    batch_strikes: bool = True
    #: Memoize basic-block chunk deltas inside the interval kernel and
    #: replay them on repeat visits (``--no-chunk-memo`` turns the
    #: fast path off; cycles, intervals, stats, RNG stream, and timing
    #: cache keys are bit-identical either way).
    chunk_memo: bool = True
    #: ``host:port`` of a running ``repro serve`` instance to use as the
    #: fleet-wide timeline store (``--service`` / ``REPRO_SERVICE``).
    #: Timing entries missing locally are fetched from it and computed
    #: results are written through; any service failure degrades to a
    #: local compute, never an error.
    service: Optional[str] = None
    #: Per-attempt socket timeout, in seconds, for service clients
    #: (``--service-timeout`` / ``REPRO_SERVICE_TIMEOUT``; None = each
    #: client's own default: 60 s for the remote store, 300 s
    #: interactive).
    service_timeout: Optional[float] = None
    #: Default multi-bit upset severity preset for campaigns/exhibits
    #: that don't name one explicitly (``--mbu-preset``; a preset name
    #: from ``repro.faults.mbu``, kept as a string so the runtime layer
    #: stays free of fault-model imports). None = single-bit faults.
    mbu_preset: Optional[str] = None
    #: Default ECC lattice scheme (``--ecc-scheme``; an
    #: ``EccScheme.value`` string from ``repro.due.tracking``). None =
    #: the exhibit's own default protection.
    ecc_scheme: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.service_timeout is not None and self.service_timeout <= 0:
            raise ValueError("service_timeout must be positive")
        if self.checkpoint_dir is not None:
            self.checkpoint_dir = Path(self.checkpoint_dir)
        if self.resume and self.checkpoint_dir is None:
            raise ValueError("resume requires a checkpoint_dir")

    @property
    def cache_dir(self) -> Optional[str]:
        """Cache root as a plain string (picklable, for worker handoff)."""
        return None if self.cache is None else str(self.cache.root)


_current = RuntimeContext()


def get_runtime() -> RuntimeContext:
    return _current


def set_runtime(context: RuntimeContext) -> RuntimeContext:
    global _current
    _current = context
    return context


def reset_runtime() -> RuntimeContext:
    """Back to the serial, cache-less default (mainly for tests)."""
    return set_runtime(RuntimeContext())


def configure(
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    retries: Optional[int] = None,
    trial_timeout: Optional[float] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    chaos: Optional[Union[ChaosConfig, str]] = None,
    chaos_seed: int = 1337,
    static_filter: bool = True,
    interval_kernel: bool = True,
    batch_strikes: bool = True,
    chunk_memo: bool = True,
    service: Optional[str] = None,
    service_timeout: Optional[float] = None,
    mbu_preset: Optional[str] = None,
    ecc_scheme: Optional[str] = None,
) -> RuntimeContext:
    """Build and install a context from CLI-style knobs.

    ``no_cache`` wins over ``cache_dir``: it disables both cache reads
    and cache writes even when a directory is supplied. ``chaos`` may be
    a :class:`ChaosConfig` or a ``--chaos``-style comma list.
    """
    cache = None
    if cache_dir is not None and not no_cache:
        cache = ResultCache(cache_dir)
    policy = RetryPolicy(
        retries=RetryPolicy.retries if retries is None else retries,
        trial_timeout=trial_timeout,
    )
    if isinstance(chaos, str):
        chaos = ChaosConfig.parse(chaos, seed=chaos_seed)
    return set_runtime(RuntimeContext(
        jobs=jobs, cache=cache, policy=policy, chaos=chaos,
        checkpoint_dir=None if checkpoint_dir is None
        else Path(checkpoint_dir),
        resume=resume, static_filter=static_filter,
        interval_kernel=interval_kernel, batch_strikes=batch_strikes,
        chunk_memo=chunk_memo,
        service=service, service_timeout=service_timeout,
        mbu_preset=mbu_preset, ecc_scheme=ecc_scheme))


@contextmanager
def use_runtime(
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    telemetry: Optional[Telemetry] = None,
    policy: Optional[RetryPolicy] = None,
    chaos: Optional[ChaosConfig] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    static_filter: bool = True,
    interval_kernel: bool = True,
    batch_strikes: bool = True,
    chunk_memo: bool = True,
    service: Optional[str] = None,
    service_timeout: Optional[float] = None,
    mbu_preset: Optional[str] = None,
    ecc_scheme: Optional[str] = None,
) -> Iterator[RuntimeContext]:
    """Scoped context install; restores the previous context on exit."""
    if cache is None and cache_dir is not None and not no_cache:
        cache = ResultCache(cache_dir)
    if no_cache:
        cache = None
    context = RuntimeContext(jobs=jobs, cache=cache,
                             telemetry=telemetry or Telemetry(),
                             policy=policy or RetryPolicy(),
                             chaos=chaos,
                             checkpoint_dir=checkpoint_dir,
                             resume=resume,
                             static_filter=static_filter,
                             interval_kernel=interval_kernel,
                             batch_strikes=batch_strikes,
                             chunk_memo=chunk_memo,
                             service=service,
                             service_timeout=service_timeout,
                             mbu_preset=mbu_preset,
                             ecc_scheme=ecc_scheme)
    previous = get_runtime()
    set_runtime(context)
    try:
        yield context
    finally:
        set_runtime(previous)
