"""The active runtime: worker count, persistent cache, telemetry.

Experiments and campaigns read the process-wide context installed here;
the default is serial with no persistent cache, which preserves the
pre-runtime behaviour exactly. The CLI and the benchmark suite install a
configured context from ``--jobs`` / ``--cache-dir`` / ``--no-cache``
flags (or their ``REPRO_BENCH_*`` environment twins).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.runtime.cache import ResultCache
from repro.runtime.telemetry import Telemetry


@dataclass
class RuntimeContext:
    """Everything the execution engine needs to know about *how* to run."""

    jobs: int = 1
    cache: Optional[ResultCache] = None
    telemetry: Telemetry = field(default_factory=Telemetry)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")

    @property
    def cache_dir(self) -> Optional[str]:
        """Cache root as a plain string (picklable, for worker handoff)."""
        return None if self.cache is None else str(self.cache.root)


_current = RuntimeContext()


def get_runtime() -> RuntimeContext:
    return _current


def set_runtime(context: RuntimeContext) -> RuntimeContext:
    global _current
    _current = context
    return context


def reset_runtime() -> RuntimeContext:
    """Back to the serial, cache-less default (mainly for tests)."""
    return set_runtime(RuntimeContext())


def configure(
    jobs: int = 1,
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
) -> RuntimeContext:
    """Build and install a context from CLI-style knobs.

    ``no_cache`` wins over ``cache_dir``: it disables both cache reads
    and cache writes even when a directory is supplied.
    """
    cache = None
    if cache_dir is not None and not no_cache:
        cache = ResultCache(cache_dir)
    return set_runtime(RuntimeContext(jobs=jobs, cache=cache))


@contextmanager
def use_runtime(
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    no_cache: bool = False,
    telemetry: Optional[Telemetry] = None,
) -> Iterator[RuntimeContext]:
    """Scoped context install; restores the previous context on exit."""
    if cache is None and cache_dir is not None and not no_cache:
        cache = ResultCache(cache_dir)
    if no_cache:
        cache = None
    context = RuntimeContext(jobs=jobs, cache=cache,
                             telemetry=telemetry or Telemetry())
    previous = get_runtime()
    set_runtime(context)
    try:
        yield context
    finally:
        set_runtime(previous)
