"""Plain-text charts for the figure exhibits.

The benchmark harness runs in terminals and CI logs, so the figures are
rendered as ASCII bar charts alongside their numeric tables.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 40,
    maximum: Optional[float] = None,
    unit: str = "%",
    title: Optional[str] = None,
) -> str:
    """Horizontal bar chart of (label, value) pairs.

    Values are scaled to ``maximum`` (default: the largest value).
    """
    if not items:
        raise ValueError("bar_chart needs at least one item")
    if width <= 0:
        raise ValueError("width must be positive")
    top = maximum if maximum is not None else max(v for _, v in items)
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        filled = int(round(min(value, top) / top * width))
        bar = "#" * filled + "." * (width - filled)
        shown = value * 100 if unit == "%" else value
        lines.append(f"{label.ljust(label_width)} |{bar}| "
                     f"{shown:6.1f}{unit}")
    return "\n".join(lines)


def series_chart(
    x_labels: Sequence[str],
    series: Dict[str, Sequence[float]],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Multi-series chart: one bar row per x point, one mark per series.

    Series are overlaid on a single axis per row using their first letter
    as the marker, which is enough to show nesting/crossover structure in
    a log.
    """
    if not series:
        raise ValueError("series_chart needs at least one series")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must match x_labels in length")
    top = max(max(values) for values in series.values())
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label in x_labels)
    lines = [title] if title else []
    markers = {name: name[0].upper() for name in series}
    for index, x_label in enumerate(x_labels):
        row = [" "] * (width + 1)
        for name, values in series.items():
            position = int(round(values[index] / top * width))
            row[min(position, width)] = markers[name]
        lines.append(f"{x_label.rjust(label_width)} |{''.join(row)}|")
    legend = ", ".join(f"{markers[name]}={name}" for name in series)
    lines.append(f"{' ' * label_width}  scale: 0..{top:.2f}  ({legend})")
    return "\n".join(lines)
