"""Bit-manipulation helpers used by the encoding and fault-injection layers.

All helpers operate on arbitrary-width non-negative Python integers; the
caller supplies widths explicitly where they matter (e.g. :func:`flip_bit`
does not need a width because Python integers are unbounded).
"""

from __future__ import annotations


def mask(width: int) -> int:
    """Return an all-ones mask of ``width`` bits.

    >>> mask(4)
    15
    """
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit_is_set(value: int, bit: int) -> bool:
    """Return True when ``bit`` (0 = LSB) is set in ``value``."""
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    return (value >> bit) & 1 == 1


def set_bit(value: int, bit: int) -> int:
    """Return ``value`` with ``bit`` set."""
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    return value | (1 << bit)


def clear_bit(value: int, bit: int) -> int:
    """Return ``value`` with ``bit`` cleared."""
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    return value & ~(1 << bit)


def flip_bit(value: int, bit: int) -> int:
    """Return ``value`` with ``bit`` inverted.

    This is the single-event-upset primitive: a particle strike flips
    exactly one storage cell.
    """
    if bit < 0:
        raise ValueError(f"bit index must be non-negative, got {bit}")
    return value ^ (1 << bit)


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    if value < 0:
        raise ValueError(f"popcount requires a non-negative value, got {value}")
    return bin(value).count("1")


def extract_field(value: int, lo: int, width: int) -> int:
    """Extract ``width`` bits of ``value`` starting at bit ``lo``."""
    if lo < 0 or width < 0:
        raise ValueError("field bounds must be non-negative")
    return (value >> lo) & mask(width)


def insert_field(value: int, lo: int, width: int, field: int) -> int:
    """Return ``value`` with ``field`` written into bits [lo, lo+width)."""
    if field < 0 or field > mask(width):
        raise ValueError(f"field {field} does not fit in {width} bits")
    cleared = value & ~(mask(width) << lo)
    return cleared | (field << lo)
