"""Small statistics helpers shared by the AVF and experiment layers."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class OnlineStats:
    """Welford's online mean/variance accumulator.

    Used by fault-injection campaigns, where the number of trials is large
    and storing every outcome would be wasteful.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of an empty accumulator")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def confidence_halfwidth(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation confidence interval."""
        if self._count == 0:
            return float("inf")
        return z * self.stddev / math.sqrt(self._count)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean; raises on mismatched or empty input."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("total weight must be positive")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (the right mean for rates like IPC)."""
    values = list(values)
    if not values:
        raise ValueError("harmonic mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def ratio_change(new: float, old: float) -> float:
    """Relative change (new - old) / old, e.g. -0.26 for a 26 % reduction."""
    if old == 0:
        raise ValueError("relative change from zero baseline is undefined")
    return (new - old) / old
