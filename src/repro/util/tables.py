"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables and figure
series report; this module renders them legibly without external deps.
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} does not match header width {len(headers)}"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in str_rows)) if str_rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string: 0.29 -> '29.0%'."""
    return f"{100.0 * value:.{digits}f}%"
