"""Deterministic random-number generation.

Every stochastic component in the simulator (program synthesis, fault
injection, address streams) draws from a :class:`DeterministicRng` seeded
from an experiment-level root seed, so whole experiments replay bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(root: int, *labels: object) -> int:
    """Derive a child seed from ``root`` and a label path.

    Labels are hashed so that adding a new consumer of randomness never
    perturbs the streams of existing consumers (a common reproducibility
    bug when sharing one ``random.Random`` across components).
    """
    digest = hashlib.sha256()
    digest.update(str(root).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "little")


class DeterministicRng:
    """A thin, explicitly-seeded wrapper over :class:`random.Random`.

    The wrapper exists to (a) force every call site to name its stream via
    :func:`derive_seed`, and (b) expose only the draw primitives the
    simulator needs, which keeps accidental global-RNG usage out of the
    codebase.
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def child(self, *labels: object) -> "DeterministicRng":
        """Create an independent child stream named by ``labels``."""
        return DeterministicRng(derive_seed(self._seed, *labels))

    def random(self) -> float:
        return self._random.random()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] inclusive."""
        return self._random.randint(lo, hi)

    def randrange(self, n: int) -> int:
        return self._random.randrange(n)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def choices(self, seq: Sequence[T], weights: Sequence[float], k: int = 1) -> list:
        return self._random.choices(seq, weights=weights, k=k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> list:
        return self._random.sample(seq, k)

    def geometric(self, p: float, maximum: Optional[int] = None) -> int:
        """Number of failures before the first success (support {0, 1, ...}).

        Used for run lengths (e.g. cycles between miss clusters). ``p`` is
        the per-trial success probability; optional ``maximum`` truncates.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric p must be in (0, 1], got {p}")
        count = 0
        while self._random.random() >= p:
            count += 1
            if maximum is not None and count >= maximum:
                return maximum
        return count

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"bernoulli p must be in [0, 1], got {p}")
        return self._random.random() < p
