"""Shared low-level utilities: bit manipulation, RNG, statistics, tables."""

from repro.util.bitops import bit_is_set, clear_bit, flip_bit, mask, popcount, set_bit
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.stats import OnlineStats, geometric_mean, harmonic_mean, weighted_mean
from repro.util.tables import format_table

__all__ = [
    "bit_is_set",
    "clear_bit",
    "flip_bit",
    "mask",
    "popcount",
    "set_bit",
    "DeterministicRng",
    "derive_seed",
    "OnlineStats",
    "geometric_mean",
    "harmonic_mean",
    "weighted_mean",
    "format_table",
]
