"""Figure 1's classification of single-bit fault outcomes."""

from __future__ import annotations

from enum import Enum, unique


@unique
class FaultOutcome(Enum):
    """Possible outcomes of a single-bit fault in a storage structure.

    Numbers follow the paper's Figure 1:

    1. ``BENIGN_UNREAD`` — the faulted bit is never read (idle entry,
       Ex-ACE tail, never-issued occupant): no error.
    2. ``BENIGN_UNACE`` — the bit is read but does not matter (un-ACE
       state: wrong path, neutral, dead, ...): no error.
    3. ``CORRECTED`` — read, matters, but protected by error *correction*
       (not deployed on the paper's instruction queue; listed for
       completeness).
    4. ``SDC`` — read, matters, no detection: silent data corruption.
    5. ``FALSE_DUE`` — detection fired, but the value would not have
       affected the outcome: a benign detected unrecoverable error.
    6. ``TRUE_DUE`` — detection fired and the value would have affected
       the outcome.

    Our executable substrate adds two refinements of outcome 4 that the
    paper's analytical model folds into SDC: a corrupted instruction can
    *trap* (illegal opcode, wild control transfer) or *hang* (runaway
    execution) instead of silently corrupting output. Fault-injection
    reports keep them distinct.
    """

    BENIGN_UNREAD = "benign_unread"
    BENIGN_UNACE = "benign_unace"
    CORRECTED = "corrected"
    SDC = "sdc"
    FALSE_DUE = "false_due"
    TRUE_DUE = "true_due"
    TRAP = "trap"
    HANG = "hang"

    @property
    def is_error(self) -> bool:
        """True when a user-visible failure (of any kind) occurred."""
        return self in (FaultOutcome.SDC, FaultOutcome.FALSE_DUE,
                        FaultOutcome.TRUE_DUE, FaultOutcome.TRAP,
                        FaultOutcome.HANG)

    @property
    def is_benign(self) -> bool:
        return not self.is_error
