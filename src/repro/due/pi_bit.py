"""Mechanistic π-bit propagation (paper Sections 4.2-4.3).

Given a *concrete* detected error — "parity fired when the instruction
queue entry holding committed instruction ``seq`` was read" — this engine
decides whether hardware at a given :class:`TrackingLevel` would signal a
machine check, and where. It implements the actual mechanisms:

* at ``PI_COMMIT``, the retire unit ignores π on uncommitted-result
  instructions (predicated-false here; wrong-path occupants never reach
  this engine because they never commit);
* at ``ANTI_PI``, decode-time anti-π suppresses non-opcode faults on
  neutral instructions;
* at ``PET``, the evicted π rides the Post-commit Error Tracking scan;
* at ``REG_PI``, π transfers to the destination register and signals on
  the first read (overwrite-before-read proves the error false);
* at ``STORE_PI``, readers OR source π into their own π and carry it on;
  the error signals only when a poisoned value reaches a store, an OUT,
  or a control decision ("interacts with the memory system or I/O");
* at ``MEM_PI``, stores transfer π onto memory words and loads pick it
  back up; only an OUT (I/O) with poisoned data signals.

The engine is deliberately independent of the dead-code *analysis*: tests
cross-validate the two (e.g. a fault on a TDD-via-registers instruction
must signal at ``REG_PI`` but stay silent at ``STORE_PI``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.arch.trace import CommittedOp
from repro.due.anti_pi import anti_pi_suppresses
from repro.due.pet import PetBuffer
from repro.due.tracking import DEFAULT_PET_ENTRIES, TrackingLevel
from repro.isa.encoding import Field, field_at_bit, field_bits
from repro.isa.opcodes import InstrClass

_CONTROL = (InstrClass.BRANCH, InstrClass.CALL, InstrClass.RET)

#: A representative non-opcode bit, used when the caller does not care
#: which physical bit was struck.
_DEFAULT_STRUCK_BIT = next(iter(field_bits(Field.R3)))


@dataclass(frozen=True)
class SignalDecision:
    """Whether (and where) the hardware raises a machine check."""

    signaled: bool
    at_seq: Optional[int]
    reason: str


class PiBitTracker:
    """Decides the fate of one detected error under one tracking level."""

    def __init__(
        self,
        trace: List[CommittedOp],
        level: TrackingLevel,
        pet_entries: int = DEFAULT_PET_ENTRIES,
    ) -> None:
        self.trace = trace
        self.level = level
        self.pet_entries = pet_entries
        # The decision is a pure function of (seq, opcode-bit?): the
        # struck bit enters only through the anti-π opcode-field test, so
        # a campaign-shared tracker answers each strike point once.
        self._memo: Dict[Tuple[int, bool], SignalDecision] = {}

    def process_fault(
        self, seq: int, struck_bit: Optional[int] = None
    ) -> SignalDecision:
        """Trace the π bit of a parity error on committed instruction ``seq``."""
        if not 0 <= seq < len(self.trace):
            raise ValueError(f"seq {seq} outside trace")
        if struck_bit is None:
            struck_bit = _DEFAULT_STRUCK_BIT
        key = (seq, field_at_bit(struck_bit) is Field.OPCODE)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        decision = self._process_fault(seq, struck_bit)
        self._memo[key] = decision
        return decision

    def _process_fault(self, seq: int, struck_bit: int) -> SignalDecision:
        op = self.trace[seq]
        level = self.level

        if level is TrackingLevel.PARITY_ONLY:
            return SignalDecision(True, seq, "parity error signalled at read")

        # π set instead of signalling; decisions defer to the commit point.
        if op.predicated_false:
            return SignalDecision(
                False, None, "retire unit ignores π: predicated false")
        if (level >= TrackingLevel.ANTI_PI
                and anti_pi_suppresses(op.instruction, struck_bit)):
            return SignalDecision(
                False, None, "anti-π: neutral instruction, non-opcode bit")
        if level <= TrackingLevel.ANTI_PI:
            return SignalDecision(True, seq, "π set at commit point")
        if level is TrackingLevel.PET:
            return self._pet(seq)
        if level is TrackingLevel.REG_PI:
            return self._register_pi(seq)
        return self._propagating_pi(seq, through_memory=(
            level is TrackingLevel.MEM_PI))

    # -- PET ---------------------------------------------------------------

    def _pet(self, seq: int) -> SignalDecision:
        buffer = PetBuffer(self.pet_entries)
        horizon = min(len(self.trace), seq + self.pet_entries + 1)
        for op in self.trace[seq:horizon]:
            decision = buffer.retire(op, pi_set=(op.seq == seq))
            if decision is not None and decision.seq == seq:
                return SignalDecision(decision.signal, decision.seq,
                                      f"PET: {decision.reason}")
        for decision in buffer.drain():
            if decision.seq == seq:
                return SignalDecision(decision.signal, decision.seq,
                                      f"PET drain: {decision.reason}")
        raise AssertionError("PET never resolved the faulted instruction")

    # -- register-file π ------------------------------------------------------

    def _register_pi(self, seq: int) -> SignalDecision:
        op = self.trace[seq]
        if not (op.dest_gpr or op.dest_pred >= 0):
            return SignalDecision(
                True, seq, "π out of scope: no destination register")
        dest_gpr = op.dest_gpr
        dest_pred = op.dest_pred
        for later in self.trace[seq + 1:]:
            if dest_gpr and dest_gpr in later.src_gprs:
                return SignalDecision(True, later.seq,
                                      "poisoned register read")
            if dest_pred >= 0 and later.instruction.qp == dest_pred:
                return SignalDecision(True, later.seq,
                                      "poisoned predicate read")
            if later.executed and dest_gpr and later.dest_gpr == dest_gpr:
                return SignalDecision(False, None,
                                      "register overwritten before read (FDD)")
            if later.executed and dest_pred >= 0 \
                    and later.dest_pred == dest_pred:
                return SignalDecision(False, None,
                                      "predicate overwritten before read (FDD)")
        return SignalDecision(False, None, "never read again before exit")

    # -- pipeline-wide / memory-wide π -----------------------------------------

    def _propagating_pi(self, seq: int, through_memory: bool) -> SignalDecision:
        op = self.trace[seq]
        poisoned_gprs: Set[int] = set()
        poisoned_preds: Set[int] = set()
        poisoned_mem: Set[int] = set()

        first = self._absorb(op, poisoned_gprs, poisoned_preds, poisoned_mem,
                             through_memory, initial=True)
        if first is not None:
            return first
        if not (poisoned_gprs or poisoned_preds or poisoned_mem):
            return SignalDecision(False, None, "π vanished at the source")

        for later in self.trace[seq + 1:]:
            decision = self._absorb(later, poisoned_gprs, poisoned_preds,
                                    poisoned_mem, through_memory,
                                    initial=False)
            if decision is not None:
                return decision
            if not (poisoned_gprs or poisoned_preds or poisoned_mem):
                return SignalDecision(False, None,
                                      "all poisoned state overwritten clean")
        return SignalDecision(False, None,
                              "poison never reached memory or I/O")

    def _absorb(
        self,
        op: CommittedOp,
        gprs: Set[int],
        preds: Set[int],
        mem: Set[int],
        through_memory: bool,
        initial: bool,
    ) -> Optional[SignalDecision]:
        """Process one committed op against the poison sets.

        Returns a decision when the op forces a signal; mutates the poison
        sets otherwise. ``initial=True`` seeds the poison from the faulted
        instruction itself.
        """
        instruction = op.instruction
        if initial:
            reads_poison = True  # the faulted instruction *is* the poison
        else:
            if instruction.qp in preds and not instruction.is_neutral:
                # A qp read is a nullification decision: a poisoned
                # predicate may have silently changed control behaviour,
                # and nothing downstream carries that — signal now.
                return SignalDecision(True, op.seq,
                                      "poisoned predication decision")
            reads_poison = (
                any(r in gprs for r in op.src_gprs)
                or (op.is_load and op.mem_addr in mem)
            )

        if reads_poison:
            if instruction.instr_class in _CONTROL:
                return SignalDecision(True, op.seq,
                                      "poisoned control decision")
            if op.is_output:
                return SignalDecision(True, op.seq, "poisoned I/O output")
            if op.is_store:
                if through_memory:
                    mem.add(op.mem_addr)
                    return None
                return SignalDecision(True, op.seq,
                                      "poisoned store commits to memory")
            if op.executed and op.dest_gpr:
                gprs.add(op.dest_gpr)
            elif op.executed and op.dest_pred >= 0:
                preds.add(op.dest_pred)
            elif initial and not op.executed:
                # Predicated-false faulted op: handled by the retire unit
                # before this engine; nothing to poison.
                pass
            return None

        # Clean op: overwrites scrub poison.
        if op.executed:
            if op.dest_gpr:
                gprs.discard(op.dest_gpr)
            if op.dest_pred >= 0:
                preds.discard(op.dest_pred)
            if op.is_store and op.mem_addr in mem:
                mem.discard(op.mem_addr)
        return None
