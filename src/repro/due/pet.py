"""The Post-commit Error Tracking (PET) buffer (paper Section 4.3.3).

The PET buffer is a FIFO log of retired instructions and their π bits.
When a π-set instruction is evicted, the hardware scans the (newer)
buffered instructions: if the evictee's result was overwritten before any
intervening read, the instruction was first-level dynamically dead and the
error is provably false — no machine check is raised. Otherwise the error
must be signalled.

Two views are provided:

* :class:`PetBuffer` — the mechanism itself, driven by the commit stream;
* :func:`pet_coverage_by_size` — the analytic coverage curves of Figure 3,
  derived from overwrite distances (a retired instruction's overwriter must
  still be in the buffer when the evictee's scan runs, i.e. the overwrite
  must land within ``entries`` subsequent commits).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.deadcode import DeadnessAnalysis, DynClass
from repro.arch.trace import CommittedOp


@dataclass(frozen=True)
class PetDecision:
    """Outcome of evicting one π-set instruction."""

    seq: int
    signal: bool
    reason: str


class PetBuffer:
    """FIFO post-commit log with π-bit resolution at eviction."""

    def __init__(self, entries: int = 512, track_memory: bool = False) -> None:
        if entries <= 0:
            raise ValueError("PET buffer needs at least one entry")
        self.entries = entries
        #: When True, store results are also tracked (the Figure 3
        #: "+ FDD via memory" extension); the base design tracks registers.
        self.track_memory = track_memory
        self._fifo: deque = deque()
        self.decisions: List[PetDecision] = []

    def __len__(self) -> int:
        return len(self._fifo)

    def retire(self, op: CommittedOp, pi_set: bool) -> Optional[PetDecision]:
        """Log a retiring instruction; resolve the evictee if one falls out."""
        self._fifo.append((op, pi_set))
        if len(self._fifo) <= self.entries:
            return None
        evicted, evicted_pi = self._fifo.popleft()
        if not evicted_pi:
            return None
        decision = self._resolve(evicted)
        self.decisions.append(decision)
        return decision

    def drain(self) -> List[PetDecision]:
        """End of execution: π-set entries still buffered resolve in place.

        An entry whose death is already provable from the remaining buffer
        contents is suppressed; anything else must be signalled (the
        machine cannot wait forever).
        """
        results = []
        while self._fifo:
            evicted, evicted_pi = self._fifo.popleft()
            if evicted_pi:
                decision = self._resolve(evicted)
                self.decisions.append(decision)
                results.append(decision)
        return results

    # -- the eviction scan -----------------------------------------------------

    def _resolve(self, evicted: CommittedOp) -> PetDecision:
        resource = self._resource_of(evicted)
        if resource is None:
            return PetDecision(evicted.seq, True, "no trackable result")
        for op, _pi in self._fifo:
            if self._reads(op, resource):
                return PetDecision(evicted.seq, True, "result was read")
            if self._writes(op, resource):
                return PetDecision(evicted.seq, False,
                                   "overwritten before any read (FDD)")
        return PetDecision(evicted.seq, True, "no overwrite in buffer")

    def _resource_of(self, op: CommittedOp) -> Optional[Tuple[str, int]]:
        if op.executed and op.dest_gpr:
            return ("gpr", op.dest_gpr)
        if op.executed and op.dest_pred >= 0:
            return ("pred", op.dest_pred)
        if self.track_memory and op.is_store and op.mem_addr is not None:
            return ("mem", op.mem_addr)
        return None

    @staticmethod
    def _reads(op: CommittedOp, resource: Tuple[str, int]) -> bool:
        kind, ident = resource
        if kind == "gpr":
            return ident in op.src_gprs
        if kind == "pred":
            return op.instruction.qp == ident
        return op.is_load and op.mem_addr == ident

    @staticmethod
    def _writes(op: CommittedOp, resource: Tuple[str, int]) -> bool:
        if not op.executed:
            return False
        kind, ident = resource
        if kind == "gpr":
            return op.dest_gpr == ident
        if kind == "pred":
            return op.dest_pred == ident
        return op.is_store and op.mem_addr == ident


#: Figure 3's sweep of buffer sizes (powers of two, 16 .. 16384).
DEFAULT_PET_SIZES = tuple(2 ** k for k in range(4, 15))


def pet_coverage_by_size(
    deadness: DeadnessAnalysis,
    sizes: Sequence[int] = DEFAULT_PET_SIZES,
    classes: Iterable[DynClass] = (DynClass.FDD_REG,),
    denominator_classes: Optional[Iterable[DynClass]] = None,
) -> Dict[int, float]:
    """Analytic PET coverage (instruction counts) per buffer size.

    ``classes`` selects which FDD categories the buffer variant tracks;
    ``denominator_classes`` (default: same as ``classes``) sets the
    population coverage is reported against, which lets Figure 3's three
    series share one denominator and nest cumulatively.
    """
    classes = frozenset(classes)
    denominator = frozenset(denominator_classes or classes)
    distances = []
    total = 0
    for seq, cls in enumerate(deadness.classes):
        if cls in denominator:
            total += 1
        if cls in classes:
            distance = deadness.overwrite_distance.get(seq)
            if distance is not None:
                distances.append(distance)
    coverage = {}
    for size in sizes:
        if size <= 0:
            raise ValueError("PET sizes must be positive")
        covered = sum(1 for d in distances if d <= size)
        coverage[size] = covered / total if total else 0.0
    return coverage
