"""Macro-level redundancy schemes and their false-DUE exposure (Section 7).

The paper closes by observing that false DUE events also afflict
macro-level detection:

* **cycle-by-cycle lockstepping** compares *everything* every cycle, so a
  strike on architecturally benign state — a branch-predictor bit, a
  wrong-path instruction, a dead value — diverges the lockstep pair and
  raises a false error;
* **RMT comparing every instruction** ignores mis-speculation (it compares
  committed instructions), but still false-errors on dynamically dead
  instructions;
* **RMT comparing only stores/outputs** (the usual design) only signals
  when corrupted data would leave the sphere of replication — dead values
  never reach the comparator.

This module maps each scheme to the un-ACE categories it falsely signals
on and evaluates the resulting false-DUE AVF over an instruction-queue
breakdown, quantifying the paper's qualitative ranking.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Dict, FrozenSet

from repro.analysis.deadcode import DynClass
from repro.avf.ace import WRONG_PATH_CATEGORY
from repro.avf.occupancy import OccupancyBreakdown

_DEAD = frozenset({
    DynClass.FDD_REG.value, DynClass.FDD_REG_RETURN.value,
    DynClass.TDD_REG.value, DynClass.FDD_MEM.value, DynClass.TDD_MEM.value,
})


@unique
class RedundancyScheme(Enum):
    """Macro-level fault-detection schemes compared in Section 7."""

    #: Cycle-by-cycle lockstep: any microarchitectural divergence signals.
    LOCKSTEP = "lockstep"
    #: Redundant multithreading comparing every committed instruction.
    RMT_ALL_INSTRUCTIONS = "rmt_all"
    #: Redundant multithreading comparing only stores and I/O.
    RMT_OUTPUTS_ONLY = "rmt_outputs"


#: Un-ACE categories each scheme falsely signals on. Lockstep adds the
#: wrong path (divergent fetch streams) and predication noise on top of
#: dead values; committed-instruction RMT drops the speculation-related
#: categories; output-comparing RMT drops the register-tracked dead ones
#: too (dead values never reach a store or I/O comparator). Neutral
#: instructions never execute differently, so no scheme signals on them.
FALSE_SIGNAL_CATEGORIES: Dict[RedundancyScheme, FrozenSet[str]] = {
    RedundancyScheme.LOCKSTEP: frozenset(
        {WRONG_PATH_CATEGORY, DynClass.PRED_FALSE.value}) | _DEAD,
    RedundancyScheme.RMT_ALL_INSTRUCTIONS: _DEAD,
    RedundancyScheme.RMT_OUTPUTS_ONLY: frozenset(
        {DynClass.FDD_MEM.value, DynClass.TDD_MEM.value}),
}


def false_due_avf(breakdown: OccupancyBreakdown,
                  scheme: RedundancyScheme) -> float:
    """False-DUE AVF the scheme would exhibit over this IQ breakdown."""
    categories = FALSE_SIGNAL_CATEGORIES[scheme]
    return sum(value for name, value
               in breakdown.false_due_components().items()
               if name in categories)


def compare_schemes(breakdown: OccupancyBreakdown) -> Dict[str, float]:
    """False-DUE AVF per scheme, for reporting."""
    return {scheme.value: false_due_avf(breakdown, scheme)
            for scheme in RedundancyScheme}
