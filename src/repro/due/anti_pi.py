"""The anti-π bit (paper Section 4.3.2).

The anti-π bit is attached to every instruction at decode: set for neutral
instruction types (no-ops, prefetches, branch-prediction hints), clear
otherwise. When the instruction queue detects a parity error on the
*non-opcode* bits of an entry whose anti-π bit is set, it suppresses the
π bit — such a fault can never matter.

Decoding again at retire would avoid storing the bit but would force the
entry to be read after its last issue, pulling the Ex-ACE residency into
the false-DUE window (the paper's 33 % -> 41 % example); the experiment
module carries that ablation.
"""

from __future__ import annotations

from repro.isa.encoding import Field, field_at_bit
from repro.isa.instruction import Instruction


def anti_pi_bit(instruction: Instruction) -> bool:
    """Decode-time anti-π classification: True for neutral instructions."""
    return instruction.is_neutral


def anti_pi_suppresses(instruction: Instruction, struck_bit: int) -> bool:
    """Would the anti-π bit suppress a parity error on ``struck_bit``?

    Suppression applies only to non-opcode bits of neutral instructions:
    an opcode-bit strike could have turned the no-op into something real,
    so it must still be flagged.
    """
    if not anti_pi_bit(instruction):
        return False
    return field_at_bit(struck_bit) is not Field.OPCODE
