"""False-DUE tracking mechanisms (paper Section 4).

* ``tracking`` — the cumulative ladder of mechanisms (π bit to commit,
  anti-π bit, PET buffer, register-file π, store-buffer π, memory π) and
  the analytic DUE-AVF they leave behind.
* ``pet`` — the Post-commit Error Tracking buffer: both the real FIFO
  mechanism and the analytic coverage-vs-size curves of Figure 3.
* ``pi_bit`` — a mechanistic π-bit propagation engine that decides, for a
  concrete detected error on a concrete dynamic instruction, whether a
  machine-check is signalled under each tracking level.
* ``anti_pi`` — the decode-time anti-π classification.
* ``outcomes`` — the Figure-1 fault-outcome taxonomy.
"""

from repro.due.anti_pi import anti_pi_bit
from repro.due.outcomes import FaultOutcome
from repro.due.pet import PetBuffer, pet_coverage_by_size
from repro.due.pi_bit import PiBitTracker, SignalDecision
from repro.due.tracking import (
    TRACKING_LADDER,
    TrackingLevel,
    covered_categories,
    due_avf_with_tracking,
    false_due_coverage,
    residual_false_due,
)

__all__ = [
    "anti_pi_bit",
    "FaultOutcome",
    "PetBuffer",
    "pet_coverage_by_size",
    "PiBitTracker",
    "SignalDecision",
    "TRACKING_LADDER",
    "TrackingLevel",
    "covered_categories",
    "due_avf_with_tracking",
    "false_due_coverage",
    "residual_false_due",
]
