"""The cumulative tracking ladder and its analytic DUE-AVF effect.

The paper's Section 4.3 mechanisms compose cumulatively — each level keeps
everything below it:

====================  ======================================================
level                 newly covered false-DUE source
====================  ======================================================
``PARITY_ONLY``       nothing: every detected error is signalled
``PI_COMMIT``         wrong-path and predicated-false instructions
``ANTI_PI``           neutral instructions (non-opcode bits)
``PET``               FDD-via-registers whose overwrite lands in the buffer
``REG_PI``            all FDD-via-registers (including via returns)
``STORE_PI``          TDD-via-registers (π carried to the store commit)
``MEM_PI``            FDD/TDD tracked via memory (π on caches and memory)
====================  ======================================================
"""

from __future__ import annotations

from enum import Enum, IntEnum, unique
from typing import Dict, FrozenSet

from repro.analysis.deadcode import DynClass
from repro.avf.ace import WRONG_PATH_CATEGORY
from repro.avf.occupancy import OccupancyBreakdown

#: Default PET buffer size used throughout the paper's evaluation.
DEFAULT_PET_ENTRIES = 512


@unique
class TrackingLevel(IntEnum):
    """Cumulative false-DUE tracking configurations."""

    PARITY_ONLY = 0
    PI_COMMIT = 1
    ANTI_PI = 2
    PET = 3
    REG_PI = 4
    STORE_PI = 5
    MEM_PI = 6


#: The ladder in coverage order (useful for sweeps).
TRACKING_LADDER = tuple(TrackingLevel)

_NEW_COVERAGE: Dict[TrackingLevel, FrozenSet[str]] = {
    TrackingLevel.PARITY_ONLY: frozenset(),
    TrackingLevel.PI_COMMIT: frozenset(
        {WRONG_PATH_CATEGORY, DynClass.PRED_FALSE.value}),
    TrackingLevel.ANTI_PI: frozenset({DynClass.NEUTRAL.value}),
    TrackingLevel.PET: frozenset(),  # partial coverage, handled specially
    TrackingLevel.REG_PI: frozenset(
        {DynClass.FDD_REG.value, DynClass.FDD_REG_RETURN.value}),
    TrackingLevel.STORE_PI: frozenset({DynClass.TDD_REG.value}),
    TrackingLevel.MEM_PI: frozenset(
        {DynClass.FDD_MEM.value, DynClass.TDD_MEM.value}),
}


def covered_categories(level: TrackingLevel) -> FrozenSet[str]:
    """All fully-covered false-DUE categories at ``level`` (cumulative).

    PET coverage is partial (it depends on buffer size and the overwrite-
    distance distribution) and is therefore not listed here; see
    :func:`residual_false_due`.
    """
    covered: set = set()
    for lvl in TrackingLevel:
        if lvl > level:
            break
        covered |= _NEW_COVERAGE[lvl]
    return frozenset(covered)


def residual_false_due(
    breakdown: OccupancyBreakdown,
    level: TrackingLevel,
    pet_entries: int = DEFAULT_PET_ENTRIES,
) -> float:
    """False-DUE AVF remaining once ``level`` is deployed.

    At exactly ``TrackingLevel.PET``, the FDD-via-registers category is
    reduced by the residency-weighted fraction of deaths the buffer can
    prove (overwrite within ``pet_entries`` commits); higher levels
    subsume it entirely.
    """
    covered = covered_categories(level)
    residual = 0.0
    components = breakdown.false_due_components()
    for category, value in components.items():
        if category in covered:
            continue
        if (level is TrackingLevel.PET
                and category == DynClass.FDD_REG.value):
            value *= 1.0 - breakdown.pet_covered_fraction(
                pet_entries, classes=(DynClass.FDD_REG,))
        residual += value
    return residual


def due_avf_with_tracking(
    breakdown: OccupancyBreakdown,
    level: TrackingLevel,
    pet_entries: int = DEFAULT_PET_ENTRIES,
) -> float:
    """Total DUE AVF (true + residual false) at ``level``."""
    return breakdown.true_due_avf + residual_false_due(
        breakdown, level, pet_entries)


def false_due_coverage(
    breakdown: OccupancyBreakdown,
    level: TrackingLevel,
    pet_entries: int = DEFAULT_PET_ENTRIES,
) -> float:
    """Fraction of the parity-only false-DUE AVF removed at ``level``.

    This is Figure 2's y-axis: 0.0 at parity-only, 1.0 at full memory-π.
    """
    baseline = breakdown.false_due_avf
    if baseline <= 0.0:
        return 0.0
    return 1.0 - residual_false_due(breakdown, level, pet_entries) / baseline


# ---------------------------------------------------------------------------
# The ECC protection lattice (multi-bit upset tier)
# ---------------------------------------------------------------------------

@unique
class EccScheme(Enum):
    """Protection codes over one 41-bit queue entry, by strength.

    The legacy campaign booleans are the two single-bit endpoints of
    this lattice (``parity=True`` == ``PARITY``, ``ecc=True`` == any
    correcting scheme on a single-bit strike); the schemes beyond them
    matter only once bursts enter the fault model:

    ``PARITY``
        One check bit, minimum distance 2: detects odd-weight errors,
        aliases even-weight ones to a valid word.
    ``SEC``
        Hamming, distance 3: corrects any single bit; every multi-bit
        error lands inside some other correctable sphere and is
        *miscorrected* (silent escape).
    ``SEC_DED``
        Extended Hamming, distance 4: corrects singles, detects
        doubles; triples alias into a correctable sphere and escape.
    ``TAEC``
        Single-error plus adjacent-burst correction (à la Dutta/Touba):
        corrects any single and any adjacent 2- or 3-bit burst —
        exactly the physically dominant MBU shapes — and detects
        non-adjacent doubles; anything beyond escapes.
    ``DEC``
        Double-error-correcting, triple-error-detecting BCH (distance
        6): corrects any 1- or 2-bit error regardless of adjacency,
        detects any triple, escapes past that.
    """

    PARITY = "parity"
    SEC = "sec"
    SEC_DED = "sec-ded"
    TAEC = "taec"
    DEC = "dec"


#: The lattice in strength order (useful for sweeps).
SCHEME_LADDER = tuple(EccScheme)


@unique
class BurstAction(Enum):
    """What a scheme's decoder does with one error pattern at read."""

    #: Repaired in place; the read returns clean data (no error).
    CORRECT = "correct"
    #: Flagged uncorrectable; feeds the parity/π detection machinery
    #: (a DUE unless tracking proves the occupant's death).
    DETECT = "detect"
    #: Aliased to a valid (or miscorrected) word; the corruption is
    #: consumed silently, exactly like an unprotected read.
    ESCAPE = "escape"


#: Approximate check-bit overhead per 41-bit data word, used as the
#: design-space tie-breaker: Hamming over 41 bits needs r=6 (2^6 >=
#: 41+6+1), SEC-DED adds the overall parity bit, adjacent-burst
#: correction roughly one syndrome bit more, and DEC-TED BCH over
#: GF(2^6) needs two 6-bit syndromes plus the parity bit.
CHECK_BITS: Dict[EccScheme, int] = {
    EccScheme.PARITY: 1,
    EccScheme.SEC: 6,
    EccScheme.SEC_DED: 7,
    EccScheme.TAEC: 8,
    EccScheme.DEC: 13,
}


def _burst_shape(mask: int):
    """``(weight, adjacent)`` of a non-empty error mask."""
    if mask <= 0:
        raise ValueError("burst mask must have at least one set bit")
    weight = bin(mask).count("1")
    shifted = mask >> ((mask & -mask).bit_length() - 1)
    adjacent = shifted == (1 << weight) - 1
    return weight, adjacent


def classify_burst(scheme: EccScheme, mask: int) -> BurstAction:
    """Decoder action of ``scheme`` on the error pattern ``mask``.

    Derived from each code's minimum distance and decoding radius (see
    :class:`EccScheme`); the exhaustive sweep in ``tests/test_mbu.py``
    pins this table against an independent brute-force bit-enumeration
    reference for every mask of weight <= 3 (and the classification is
    total: weights beyond anything the samplers draw still map to a
    defined action).
    """
    weight, adjacent = _burst_shape(mask)
    if scheme is EccScheme.PARITY:
        # Distance 2: odd weight flips the check bit, even weight aliases.
        return BurstAction.DETECT if weight % 2 else BurstAction.ESCAPE
    if scheme is EccScheme.SEC:
        return BurstAction.CORRECT if weight == 1 else BurstAction.ESCAPE
    if scheme is EccScheme.SEC_DED:
        if weight == 1:
            return BurstAction.CORRECT
        return BurstAction.DETECT if weight == 2 else BurstAction.ESCAPE
    if scheme is EccScheme.TAEC:
        if weight == 1 or (adjacent and weight <= 3):
            return BurstAction.CORRECT
        return BurstAction.DETECT if weight == 2 else BurstAction.ESCAPE
    # DEC (DEC-TED): radius-2 correction, distance 6 detection beyond.
    if weight <= 2:
        return BurstAction.CORRECT
    return BurstAction.DETECT if weight == 3 else BurstAction.ESCAPE
