"""The cumulative tracking ladder and its analytic DUE-AVF effect.

The paper's Section 4.3 mechanisms compose cumulatively — each level keeps
everything below it:

====================  ======================================================
level                 newly covered false-DUE source
====================  ======================================================
``PARITY_ONLY``       nothing: every detected error is signalled
``PI_COMMIT``         wrong-path and predicated-false instructions
``ANTI_PI``           neutral instructions (non-opcode bits)
``PET``               FDD-via-registers whose overwrite lands in the buffer
``REG_PI``            all FDD-via-registers (including via returns)
``STORE_PI``          TDD-via-registers (π carried to the store commit)
``MEM_PI``            FDD/TDD tracked via memory (π on caches and memory)
====================  ======================================================
"""

from __future__ import annotations

from enum import IntEnum, unique
from typing import Dict, FrozenSet

from repro.analysis.deadcode import DynClass
from repro.avf.ace import WRONG_PATH_CATEGORY
from repro.avf.occupancy import OccupancyBreakdown

#: Default PET buffer size used throughout the paper's evaluation.
DEFAULT_PET_ENTRIES = 512


@unique
class TrackingLevel(IntEnum):
    """Cumulative false-DUE tracking configurations."""

    PARITY_ONLY = 0
    PI_COMMIT = 1
    ANTI_PI = 2
    PET = 3
    REG_PI = 4
    STORE_PI = 5
    MEM_PI = 6


#: The ladder in coverage order (useful for sweeps).
TRACKING_LADDER = tuple(TrackingLevel)

_NEW_COVERAGE: Dict[TrackingLevel, FrozenSet[str]] = {
    TrackingLevel.PARITY_ONLY: frozenset(),
    TrackingLevel.PI_COMMIT: frozenset(
        {WRONG_PATH_CATEGORY, DynClass.PRED_FALSE.value}),
    TrackingLevel.ANTI_PI: frozenset({DynClass.NEUTRAL.value}),
    TrackingLevel.PET: frozenset(),  # partial coverage, handled specially
    TrackingLevel.REG_PI: frozenset(
        {DynClass.FDD_REG.value, DynClass.FDD_REG_RETURN.value}),
    TrackingLevel.STORE_PI: frozenset({DynClass.TDD_REG.value}),
    TrackingLevel.MEM_PI: frozenset(
        {DynClass.FDD_MEM.value, DynClass.TDD_MEM.value}),
}


def covered_categories(level: TrackingLevel) -> FrozenSet[str]:
    """All fully-covered false-DUE categories at ``level`` (cumulative).

    PET coverage is partial (it depends on buffer size and the overwrite-
    distance distribution) and is therefore not listed here; see
    :func:`residual_false_due`.
    """
    covered: set = set()
    for lvl in TrackingLevel:
        if lvl > level:
            break
        covered |= _NEW_COVERAGE[lvl]
    return frozenset(covered)


def residual_false_due(
    breakdown: OccupancyBreakdown,
    level: TrackingLevel,
    pet_entries: int = DEFAULT_PET_ENTRIES,
) -> float:
    """False-DUE AVF remaining once ``level`` is deployed.

    At exactly ``TrackingLevel.PET``, the FDD-via-registers category is
    reduced by the residency-weighted fraction of deaths the buffer can
    prove (overwrite within ``pet_entries`` commits); higher levels
    subsume it entirely.
    """
    covered = covered_categories(level)
    residual = 0.0
    components = breakdown.false_due_components()
    for category, value in components.items():
        if category in covered:
            continue
        if (level is TrackingLevel.PET
                and category == DynClass.FDD_REG.value):
            value *= 1.0 - breakdown.pet_covered_fraction(
                pet_entries, classes=(DynClass.FDD_REG,))
        residual += value
    return residual


def due_avf_with_tracking(
    breakdown: OccupancyBreakdown,
    level: TrackingLevel,
    pet_entries: int = DEFAULT_PET_ENTRIES,
) -> float:
    """Total DUE AVF (true + residual false) at ``level``."""
    return breakdown.true_due_avf + residual_false_due(
        breakdown, level, pet_entries)


def false_due_coverage(
    breakdown: OccupancyBreakdown,
    level: TrackingLevel,
    pet_entries: int = DEFAULT_PET_ENTRIES,
) -> float:
    """Fraction of the parity-only false-DUE AVF removed at ``level``.

    This is Figure 2's y-axis: 0.0 at parity-only, 1.0 at full memory-π.
    """
    baseline = breakdown.false_due_avf
    if baseline <= 0.0:
        return 0.0
    return 1.0 - residual_false_due(breakdown, level, pet_entries) / baseline
