"""Per-benchmark workload profiles.

A profile is the statistical contract between the paper's description of a
benchmark and our synthetic stand-in for it: relative weights of *items*
(an item is a short idiom of 1-6 instructions: a live ALU op, a streaming
load plus its index update, a random branch with its arm, a call, a dead
chain, ...) plus structural knobs (body size, predication block length,
front-end bubble rate).

Integer profiles carry more data-dependent branches and calls; floating-
point profiles carry more no-ops and prefetches (IA64 bundle padding) and
more streaming memory traffic — the properties Figures 2 and 4 of the paper
attribute the int/fp differences to.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class BenchmarkProfile:
    """Knobs controlling program synthesis for one benchmark."""

    name: str
    suite: str  # "int" or "fp"
    #: Instructions skipped in the paper's SimPoint (Table 2; metadata only).
    skip_millions: int = 0

    # --- item mix (relative weights; need not sum to anything) ---
    w_alu: float = 30.0  # live single-cycle ALU work
    w_mul: float = 4.0  # live multiplies (longer latency)
    w_hot_load: float = 10.0  # loads hitting L0
    w_warm_load: float = 4.0  # streaming loads that miss L0, hit L1
    w_cold_load: float = 1.0  # streaming loads that miss L1, hit L2
    w_rand_load: float = 0.0  # pointer-chasing loads (random in cold region)
    w_live_store: float = 4.0  # stores whose values are later loaded
    w_branch_pred: float = 6.0  # predictable conditional branches
    w_branch_rand: float = 3.0  # data-dependent ~50/50 branches
    w_pred_block: float = 2.0  # cmp + predicated instruction block
    w_call: float = 1.5  # call to a leaf function
    w_dead_single: float = 3.0  # first-level dynamically dead ALU op
    w_dead_chain: float = 1.5  # TDD -> FDD register chain
    w_dead_store: float = 1.5  # store never loaded (FDD via memory)
    w_dead_mem_chain: float = 0.7  # store read only by a dead load (TDD-mem)
    w_noop: float = 18.0
    w_prefetch: float = 2.0
    w_hint: float = 1.0

    # --- structure ---
    body_items: int = 120  # items per main-loop body
    pred_block_len: int = 3  # predicated instructions per pred block
    branch_arm_len: int = 3  # instructions in a random branch's arm
    out_period_items: int = 40  # OUT emitted every N items
    call_leaves: int = 8  # number of distinct leaf functions
    leaf_body_len: int = 8  # live instructions per leaf
    leaf_dead_writes: int = 2  # return-dead register writes per leaf
    load_use_distance: int = 2  # items between a load and its first use
    miss_burst: int = 1  # consecutive cold lines per cold item (clustering)
    alu_chain_prob: float = 0.45  # P(ALU op depends on the newest value)

    # --- front end ---
    fetch_bubble_prob: float = 0.25  # P(front end delivers nothing this cycle)

    seed_salt: int = 0

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"suite must be 'int' or 'fp', got {self.suite!r}")
        for f in fields(self):
            if f.name.startswith("w_") and getattr(self, f.name) < 0:
                raise ValueError(f"{f.name} must be non-negative")
        if self.body_items < 10:
            raise ValueError("body_items must be at least 10")
        if not 0.0 <= self.fetch_bubble_prob < 1.0:
            raise ValueError("fetch_bubble_prob must be in [0, 1)")
        if self.miss_burst < 1:
            raise ValueError("miss_burst must be >= 1")
        if self.call_leaves < 1:
            raise ValueError("call_leaves must be >= 1")

    def item_weights(self) -> dict:
        """Mapping of item-kind name -> weight (the ``w_`` fields)."""
        return {
            f.name[2:]: getattr(self, f.name)
            for f in fields(self)
            if f.name.startswith("w_")
        }
