"""Trace serialisation: export committed traces for offline analysis.

Traces serialise to a compact JSON-lines format (one committed instruction
per line) so AVF/deadness analyses can be run on stored traces, traces can
be diffed across tool versions, and external tooling can consume them.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, TextIO, Union

from repro.arch.result import ExecutionResult, ExecutionStatus, InvocationRecord
from repro.arch.trace import CommittedOp
from repro.isa import encoding

FORMAT_VERSION = 1


def _op_to_record(op: CommittedOp) -> dict:
    record = {
        "seq": op.seq,
        "pc": op.pc,
        "enc": op.instruction.encode(),
        "x": int(op.executed),
        "inv": op.invocation,
    }
    if op.dest_gpr:
        record["d"] = op.dest_gpr
    if op.dest_pred >= 0:
        record["dp"] = op.dest_pred
    if op.src_gprs:
        record["s"] = list(op.src_gprs)
    if op.mem_addr is not None:
        record["a"] = op.mem_addr
        record["st"] = int(op.is_store)
    if op.branch_taken:
        record["bt"] = 1
    record["np"] = op.next_pc
    if op.is_output:
        record["o"] = 1
    return record


def _record_to_op(record: dict) -> CommittedOp:
    mem_addr = record.get("a")
    return CommittedOp(
        seq=record["seq"],
        pc=record["pc"],
        instruction=encoding.decode(record["enc"]),
        executed=bool(record["x"]),
        dest_gpr=record.get("d", 0),
        dest_pred=record.get("dp", -1),
        src_gprs=tuple(record.get("s", ())),
        mem_addr=mem_addr,
        is_store=bool(record.get("st", 0)) if mem_addr is not None else False,
        is_load=(mem_addr is not None and not record.get("st", 0)),
        branch_taken=bool(record.get("bt", 0)),
        next_pc=record["np"],
        invocation=record["inv"],
        is_output=bool(record.get("o", 0)),
    )


def dump_execution(result: ExecutionResult,
                   path: Union[str, Path]) -> None:
    """Write an execution result (trace + outputs + invocations) to disk."""
    path = Path(path)
    with path.open("w") as handle:
        header = {
            "version": FORMAT_VERSION,
            "status": result.status.value,
            "outputs": list(result.outputs),
            "invocations": [
                {"id": inv.invocation, "entry": inv.entry_pc,
                 "call": inv.call_seq, "ret": inv.return_seq}
                for inv in result.invocations.values()
            ],
        }
        handle.write(json.dumps(header) + "\n")
        for op in result.trace:
            handle.write(json.dumps(_op_to_record(op)) + "\n")


def load_execution(path: Union[str, Path]) -> ExecutionResult:
    """Read an execution result previously written by :func:`dump_execution`."""
    path = Path(path)
    with path.open() as handle:
        header = json.loads(handle.readline())
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format version {header.get('version')}")
        trace = [_record_to_op(json.loads(line)) for line in handle]
    invocations = {
        item["id"]: InvocationRecord(
            invocation=item["id"], entry_pc=item["entry"],
            call_seq=item["call"], return_seq=item["ret"])
        for item in header["invocations"]
    }
    return ExecutionResult(
        status=ExecutionStatus(header["status"]),
        trace=trace,
        outputs=tuple(header["outputs"]),
        invocations=invocations,
    )
