"""Program synthesis from a :class:`BenchmarkProfile`.

The synthesizer emits a single large main loop whose body is a randomized
(but seed-deterministic) sequence of *items* drawn from the profile's
weights, plus a set of leaf functions for the call items. Items are short
idioms — each one is real code with real dataflow:

* live ALU/multiply work feeds an accumulator that is periodically ``OUT``,
  so liveness chains are anchored at genuine program output;
* streaming loads walk regions sized against the cache hierarchy, so
  hot / warm / cold items produce L0-hit / L0-miss / L1-miss behaviour
  by construction rather than by fiat;
* data-dependent branches and predicates consume an in-program
  xorshift-augmented LCG, so branch outcomes are genuinely data-driven;
* dead items write scratch registers or buffer slots that are later
  overwritten without an intervening read — the dead-code *analysis*
  rediscovers them, the generator only arranges the opportunity.

Memory map (word addresses)::

    HOT   0x01000 +   64 words   always L0-resident
    DEAD  0x02000 +   64 words   write-only buffer (dead stores)
    WARM  0x10000 + 16 K words   streams miss L0, hit L1 (128 KB)
    COLD  0x80000 + 256 K words  streams miss L1, hit L2 (2 MB)
"""

from __future__ import annotations

from typing import List, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.util.rng import DeterministicRng, derive_seed
from repro.workloads.builder import CodeBuilder, Label
from repro.workloads.profile import BenchmarkProfile

# --- register conventions -------------------------------------------------
R_HOT = 1  # base of the L0-resident region
R_WARM = 2  # base of the L1-resident region
R_COLD = 3  # base of the L2-resident region
R_LCG = 4  # in-program PRNG state
R_LCGMUL = 5  # PRNG multiplier constant
R_ACC = 7  # the live accumulator, anchored by OUT
R_WIDX = 8  # warm stream index
R_CIDX = 9  # cold stream index
R_DEADBUF = 10  # base of the dead-store buffer
R_WMASK = 11  # warm region index mask
R_CMASK = 12  # cold region index mask
R_CTR = 13  # main loop counter
R_T0 = 14  # PRNG-derived temporary
R_ADDR = 15  # address temporary
LIVE_TEMPS = tuple(range(16, 28))  # rotating pool of live values
R_ARG = 28  # call argument
R_SH33 = 29  # holds the constant 33 (shift amount)
SCRATCH = tuple(range(32, 46))  # rotating pool for dead register chains
R_RET = 48  # leaf return value
LEAF_LOCALS = tuple(range(49, 56))
LEAF_DEAD = tuple(range(56, 64))  # return-dead registers, one per leaf
R_DRING_IDX = 64  # dead-store ring index
R_DRING_BASE = 65  # dead-store ring base

P_LOOP = 1
P_POOL = tuple(range(2, 15))

# --- memory map (word addresses) -------------------------------------------
HOT_BASE = 0x01000
DEAD_BASE = 0x02000
DEAD_RING_BASE = 0x03000
DEAD_RING_WORDS = 128
WARM_BASE = 0x10000
WARM_WORDS = 1024
COLD_BASE = 0x80000
COLD_WORDS = 32 * 1024

_LIVE_ALU_OPS = (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR)


class ProgramSynthesizer:
    """Builds one executable program for a profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 2004) -> None:
        self.profile = profile
        self.rng = DeterministicRng(
            derive_seed(seed, "codegen", profile.name, profile.seed_salt)
        )
        self.builder = CodeBuilder()
        self._temp_cursor = 0
        self._scratch_cursor = 0
        self._pred_cursor = 0
        self._dead_slot_cursor = 0
        self._last_store_offset: Optional[int] = None
        self._recent_temps: List[int] = list(LIVE_TEMPS[:3])
        self._leaf_labels: List[Label] = []

    # -- small helpers -------------------------------------------------------

    def _emit(self, opcode: Opcode, qp: int = 0, r1: int = 0, r2: int = 0,
              r3: int = 0, imm: int = 0) -> int:
        return self.builder.emit(
            Instruction(opcode, qp=qp, r1=r1, r2=r2, r3=r3, imm=imm)
        )

    def _next_temp(self) -> int:
        reg = LIVE_TEMPS[self._temp_cursor % len(LIVE_TEMPS)]
        self._temp_cursor += 1
        return reg

    def _next_scratch(self) -> int:
        """Scratch register for a dead write.

        Selection is tiered so dead-value overwrite distances spread, as
        the paper's Figure 3 curve implies: the two-register short pool is
        shared by several sites (deaths within a fraction of a body), the
        round-robin middle pool gives one site per register (death at the
        next iteration), and SCRATCH[10:] is reserved for the runtime-rare
        sites whose deaths take many bodies.
        """
        if self.rng.bernoulli(0.35):
            return self.rng.choice(SCRATCH[:2])
        pool = SCRATCH[2:10]
        reg = pool[self._scratch_cursor % len(pool)]
        self._scratch_cursor += 1
        return reg

    def _next_pred(self) -> int:
        pred = P_POOL[self._pred_cursor % len(P_POOL)]
        self._pred_cursor += 1
        return pred

    def _read_temp(self) -> int:
        """A recently-written live temp (keeps the pool actually live)."""
        return self.rng.choice(self._recent_temps)

    def _note_write(self, reg: int) -> None:
        self._recent_temps.append(reg)
        if len(self._recent_temps) > 6:
            self._recent_temps.pop(0)

    def _lcg_step(self) -> None:
        """Advance the in-program PRNG; leaves mixed high bits in R_T0.

        x = x * 65537 + 4093; t0 = x >> 33; x ^= t0 — an affine step with an
        xorshift fold, cheap to express in REPRO-64 and good enough to make
        branch directions unlearnable by a gshare predictor.
        """
        self._emit(Opcode.MUL, r1=R_LCG, r2=R_LCG, r3=R_LCGMUL)
        self._emit(Opcode.ADDI, r1=R_LCG, r2=R_LCG, imm=4093)
        self._emit(Opcode.SHR, r1=R_T0, r2=R_LCG, r3=R_SH33)
        self._emit(Opcode.XOR, r1=R_LCG, r2=R_LCG, r3=R_T0)

    # -- item emitters --------------------------------------------------------

    def _item_alu(self) -> None:
        dest = self._next_temp()
        op = self.rng.choice(_LIVE_ALU_OPS)
        if self._recent_temps and self.rng.bernoulli(self.profile.alu_chain_prob):
            # Serial dependence on the newest value: compiled code carries
            # long scalar chains that bound in-order issue below the width.
            src1 = self._recent_temps[-1]
        else:
            src1 = self._read_temp()
        self._emit(op, r1=dest, r2=src1, r3=self._read_temp())
        self._note_write(dest)
        if self.rng.bernoulli(0.35):
            self._emit(Opcode.ADD, r1=R_ACC, r2=R_ACC, r3=dest)

    def _item_mul(self) -> None:
        dest = self._next_temp()
        self._emit(Opcode.MUL, r1=dest, r2=self._read_temp(), r3=self._read_temp())
        self._note_write(dest)
        if self.rng.bernoulli(0.35):
            self._emit(Opcode.XOR, r1=R_ACC, r2=R_ACC, r3=dest)

    def _item_hot_load(self) -> None:
        if self._last_store_offset is not None and self.rng.bernoulli(0.5):
            offset = self._last_store_offset
            self._last_store_offset = None
        else:
            offset = self.rng.randint(0, 56)
        dest = self._next_temp()
        self._emit(Opcode.LD, r1=dest, r2=R_HOT, imm=offset)
        self._note_write(dest)

    def _emit_stream_load(self, index_reg: int, base_reg: int, mask_reg: int,
                          stride: int) -> None:
        dest = self._next_temp()
        self._emit(Opcode.ADDI, r1=index_reg, r2=index_reg, imm=stride)
        self._emit(Opcode.AND, r1=index_reg, r2=index_reg, r3=mask_reg)
        self._emit(Opcode.ADD, r1=R_ADDR, r2=base_reg, r3=index_reg)
        self._emit(Opcode.LD, r1=dest, r2=R_ADDR, imm=0)
        self._note_write(dest)

    def _item_warm_load(self) -> None:
        # One line per item: the warm footprint overflows the L0 but stays
        # resident in the L1 (region sizes sit between the two capacities).
        self._emit_stream_load(R_WIDX, R_WARM, R_WMASK, stride=8)

    def _item_cold_load(self) -> None:
        # 37-line jumps spread the stream across the whole cold region
        # quickly, so revisited lines have always left the L1 but remain in
        # the L2: every item is an L1 miss / L2 hit.
        for _ in range(self.profile.miss_burst):
            self._emit_stream_load(R_CIDX, R_COLD, R_CMASK, stride=296)

    def _item_rand_load(self) -> None:
        dest = self._next_temp()
        self._lcg_step()
        self._emit(Opcode.AND, r1=R_T0, r2=R_T0, r3=R_CMASK)
        self._emit(Opcode.ADD, r1=R_ADDR, r2=R_COLD, r3=R_T0)
        self._emit(Opcode.LD, r1=dest, r2=R_ADDR, imm=0)
        self._note_write(dest)

    def _item_live_store(self) -> None:
        offset = self.rng.randint(0, 56)
        self._emit(Opcode.ST, r1=self._read_temp(), r2=R_HOT, imm=offset)
        self._last_store_offset = offset

    def _item_branch_pred(self) -> None:
        pred = self._next_pred()
        skip = self.builder.label()
        if self.rng.bernoulli(0.5):
            # Not taken until the final iteration: arm is correct-path code.
            self._emit(Opcode.CMP_EQ, r1=pred, r2=R_CTR, r3=0)
            self.builder.emit_control(Opcode.BR, skip, qp=pred)
            self._item_alu()
        else:
            # Always taken: the arm only ever executes on the wrong path.
            self._emit(Opcode.CMP_NE, r1=pred, r2=R_CTR, r3=0)
            self.builder.emit_control(Opcode.BR, skip, qp=pred)
            for _ in range(2):
                dest = self._next_temp()
                self._emit(Opcode.OR, r1=dest, r2=self._read_temp(),
                           r3=self._read_temp())
        self.builder.bind(skip)

    def _item_branch_rand(self) -> None:
        pred = self._next_pred()
        skip = self.builder.label()
        self._lcg_step()
        self._emit(Opcode.ANDI, r1=R_T0, r2=R_T0, imm=1)
        self._emit(Opcode.CMP_NE, r1=pred, r2=R_T0, r3=0)
        self.builder.emit_control(Opcode.BR, skip, qp=pred)
        for _ in range(self.profile.branch_arm_len):
            dest = self._next_temp()
            op = self.rng.choice(_LIVE_ALU_OPS)
            self._emit(op, r1=dest, r2=self._read_temp(), r3=self._read_temp())
            self._note_write(dest)
        self.builder.bind(skip)

    def _item_pred_block(self) -> None:
        pred = self._next_pred()
        self._lcg_step()
        self._emit(Opcode.ANDI, r1=R_T0, r2=R_T0, imm=1)
        self._emit(Opcode.CMP_EQ, r1=pred, r2=R_T0, r3=0)
        for _ in range(self.profile.pred_block_len):
            dest = self._next_temp()
            op = self.rng.choice(_LIVE_ALU_OPS)
            self._emit(op, qp=pred, r1=dest, r2=self._read_temp(),
                       r3=self._read_temp())
            self._note_write(dest)

    def _item_call(self) -> None:
        if len(self._leaf_labels) >= 4 and self.rng.bernoulli(0.5):
            self._emit_rotating_calls()
            return
        leaf = self.rng.choice(self._leaf_labels)
        self._emit(Opcode.ADD, r1=R_ARG, r2=self._read_temp(), r3=R_ACC)
        self.builder.emit_control(Opcode.CALL, leaf)
        self._emit(Opcode.XOR, r1=R_ACC, r2=R_ACC, r3=R_RET)

    def _emit_rotating_calls(self) -> None:
        """A phase-rotated call group: one call per iteration, cycling
        through four leaves, so each leaf's *recall* gap — and therefore
        the overwrite distance of its return-dead registers — spans four
        loop bodies instead of one."""
        leaves = self.rng.sample(self._leaf_labels, 4)
        self._emit(Opcode.ADD, r1=R_ARG, r2=self._read_temp(), r3=R_ACC)
        self._emit(Opcode.ANDI, r1=R_T0, r2=R_CTR, imm=3)
        for phase, leaf in enumerate(leaves):
            pred = self._next_pred()
            self._emit(Opcode.ADDI, r1=R_ADDR, r2=R_T0, imm=-phase)
            self._emit(Opcode.CMP_EQ, r1=pred, r2=R_ADDR, r3=0)
            self.builder.emit_control(Opcode.CALL, leaf, qp=pred)
        self._emit(Opcode.XOR, r1=R_ACC, r2=R_ACC, r3=R_RET)

    def _dead_source(self) -> int:
        """Source for dead computations: usually the (always-live)
        accumulator, so dead reads rarely demote pool temps to TDD."""
        return R_ACC if self.rng.bernoulli(0.6) else self._read_temp()

    def _emit_rarely(self, mask: int) -> int:
        """Emit a counter-derived predicate that is true one iteration in
        ``mask + 1``; returns the predicate register.

        A single static loop body cannot produce dead-value overwrite
        distances beyond one iteration on its own — every instance of a
        static write hits the same register or slot, so the overwrite is
        always "next iteration". Writes guarded by these sparse predicates
        execute only every (mask+1)-th iteration, stretching their
        overwrite distances to multiple loop bodies, which is what gives
        Figure 3's PET-coverage curve its long tail.
        """
        pred = self._next_pred()
        self._emit(Opcode.ANDI, r1=R_T0, r2=R_CTR, imm=mask)
        self._emit(Opcode.CMP_EQ, r1=pred, r2=R_T0, r3=0)
        return pred

    def _item_dead_single(self) -> None:
        if self.rng.bernoulli(0.45):
            mask = self.rng.choice((3, 7, 15, 31))
            pred = self._emit_rarely(mask)
            dest = self.rng.choice(SCRATCH[10:])
            self._emit(Opcode.ADD, qp=pred, r1=dest, r2=self._dead_source(),
                       r3=self._dead_source())
            return
        dest = self._next_scratch()
        op = self.rng.choice(_LIVE_ALU_OPS)
        self._emit(op, r1=dest, r2=self._dead_source(), r3=self._dead_source())

    def _item_dead_chain(self) -> None:
        first = self._next_scratch()
        second = self._next_scratch()
        self._emit(Opcode.ADD, r1=first, r2=self._dead_source(),
                   r3=self._dead_source())
        self._emit(Opcode.MUL, r1=second, r2=first, r3=self._dead_source())

    def _item_dead_store(self) -> None:
        self._dead_slot_cursor += 1
        roll = self.rng.random()
        if roll < 0.35:
            # Ring buffer: every iteration stores to a fresh word; the slot
            # is only overwritten when the ring wraps (tens of bodies away).
            self._emit(Opcode.ADDI, r1=R_DRING_IDX, r2=R_DRING_IDX, imm=1)
            self._emit(Opcode.ANDI, r1=R_DRING_IDX, r2=R_DRING_IDX,
                       imm=DEAD_RING_WORDS - 1)
            self._emit(Opcode.ADD, r1=R_ADDR, r2=R_DRING_BASE,
                       r3=R_DRING_IDX)
            self._emit(Opcode.ST, r1=self._dead_source(), r2=R_ADDR, imm=0)
            return
        if roll < 0.65:
            # Runtime-rare: the slot is rewritten only every (mask+1)-th
            # iteration, so the dead value lives for several bodies.
            mask = self.rng.choice((3, 7, 15, 31))
            pred = self._emit_rarely(mask)
            slot = 8 + (self._dead_slot_cursor % 48)
            self._emit(Opcode.ST, qp=pred, r1=self._dead_source(),
                       r2=R_DEADBUF, imm=slot)
            return
        slot = self._dead_slot_cursor % 8
        self._emit(Opcode.ST, r1=self._dead_source(), r2=R_DEADBUF, imm=slot)

    def _item_dead_mem_chain(self) -> None:
        slot = 56 + (self._dead_slot_cursor % 8)
        self._dead_slot_cursor += 1
        scratch = self._next_scratch()
        self._emit(Opcode.ST, r1=self._read_temp(), r2=R_DEADBUF, imm=slot)
        self._emit(Opcode.LD, r1=scratch, r2=R_DEADBUF, imm=slot)

    def _item_noop(self) -> None:
        self._emit(Opcode.NOP)

    def _item_prefetch(self) -> None:
        self._emit(Opcode.PREFETCH, r2=R_ADDR, imm=self.rng.randint(0, 56))

    def _item_hint(self) -> None:
        self._emit(Opcode.HINT)

    # -- program assembly ------------------------------------------------------

    _ITEM_EMITTERS = {
        "alu": _item_alu,
        "mul": _item_mul,
        "hot_load": _item_hot_load,
        "warm_load": _item_warm_load,
        "cold_load": _item_cold_load,
        "rand_load": _item_rand_load,
        "live_store": _item_live_store,
        "branch_pred": _item_branch_pred,
        "branch_rand": _item_branch_rand,
        "pred_block": _item_pred_block,
        "call": _item_call,
        "dead_single": _item_dead_single,
        "dead_chain": _item_dead_chain,
        "dead_store": _item_dead_store,
        "dead_mem_chain": _item_dead_mem_chain,
        "noop": _item_noop,
        "prefetch": _item_prefetch,
        "hint": _item_hint,
    }

    def _emit_init(self, trips: int) -> None:
        emit = self._emit
        emit(Opcode.MOVI, r1=R_HOT, imm=HOT_BASE)
        emit(Opcode.MOVI, r1=R_WARM, imm=WARM_BASE)
        emit(Opcode.MOVI, r1=R_COLD, imm=COLD_BASE)
        emit(Opcode.MOVI, r1=R_DEADBUF, imm=DEAD_BASE)
        emit(Opcode.MOVI, r1=R_WMASK, imm=WARM_WORDS - 1)
        emit(Opcode.MOVI, r1=R_CMASK, imm=COLD_WORDS - 1)
        emit(Opcode.MOVI, r1=R_LCG, imm=self.rng.randint(1, 1_000_000))
        emit(Opcode.MOVI, r1=R_LCGMUL, imm=65537)
        emit(Opcode.MOVI, r1=R_SH33, imm=33)
        emit(Opcode.MOVI, r1=R_CTR, imm=trips)
        emit(Opcode.MOVI, r1=R_ACC, imm=1)
        emit(Opcode.MOVI, r1=R_WIDX, imm=0)
        emit(Opcode.MOVI, r1=R_CIDX, imm=0)
        emit(Opcode.MOVI, r1=R_DRING_IDX, imm=0)
        emit(Opcode.MOVI, r1=R_DRING_BASE, imm=DEAD_RING_BASE)
        for reg in LIVE_TEMPS:
            emit(Opcode.MOVI, r1=reg, imm=self.rng.randint(1, 8000))

    def _emit_leaf(self, index: int) -> Label:
        """One leaf function; its LEAF_DEAD writes become FDD-via-return."""
        profile = self.profile
        label = self.builder.label(f"leaf{index}")
        self.builder.bind(label)
        self.builder.begin_function(f"leaf{index}")
        emit = self._emit
        emit(Opcode.ADDI, r1=R_RET, r2=R_ARG, imm=self.rng.randint(1, 500))
        local_a = LEAF_LOCALS[index % len(LEAF_LOCALS)]
        local_b = LEAF_LOCALS[(index + 1) % len(LEAF_LOCALS)]
        emit(Opcode.MOVI, r1=local_a, imm=self.rng.randint(1, 4000))
        for step in range(max(0, profile.leaf_body_len - 3)):
            if step % 3 == 0:
                emit(Opcode.LD, r1=local_b, r2=R_HOT, imm=self.rng.randint(0, 56))
            elif step % 3 == 1:
                emit(Opcode.ADD, r1=local_a, r2=local_a, r3=local_b)
            else:
                emit(Opcode.XOR, r1=R_RET, r2=R_RET, r3=local_a)
        # Each leaf owns (leaf_dead_writes) return-dead registers, each
        # overwritten only when a leaf sharing the register is next called.
        # Rotating call groups recall a given leaf every four bodies, which
        # puts the "FDD via returns" mass at large PET sizes (Figure 3).
        for k in range(max(1, profile.leaf_dead_writes)):
            dead_reg = LEAF_DEAD[(index + 3 * k) % len(LEAF_DEAD)]
            emit(Opcode.ADD, r1=dead_reg, r2=R_RET, r3=local_a)
        emit(Opcode.RET)
        self.builder.end_function()
        return label

    def _pick_body_items(self) -> List[str]:
        """Item kinds for one loop body.

        Counts are stochastically rounded from the profile weights, with
        every positive-weight kind guaranteed at least one occurrence —
        rare kinds (e.g. the L1-missing cold loads that drive the squash
        trigger) must not vanish from the loop body by sampling accident.
        """
        weights = self.profile.item_weights()
        total = sum(w for w in weights.values() if w > 0)
        items: List[str] = []
        for kind, weight in weights.items():
            if weight <= 0:
                continue
            exact = weight / total * self.profile.body_items
            count = int(exact)
            if self.rng.bernoulli(exact - count):
                count += 1
            items.extend([kind] * max(1, count))
        self.rng.shuffle(items)
        # Periodic OUT anchors the accumulator's liveness. OUTs are
        # *inserted*, not overwritten onto existing slots — overwriting
        # could silently delete a singleton kind (e.g. the one cold load
        # whose L1 misses drive the squash trigger).
        period = max(2, self.profile.out_period_items)
        for position in range(len(items) - 1, 0, -period):
            items.insert(position, "out")
        return items

    def synthesize(self, target_instructions: int = 100_000) -> Program:
        """Generate the program sized to roughly ``target_instructions``."""
        if target_instructions < 1000:
            raise ValueError("target_instructions must be at least 1000")
        profile = self.profile
        builder = self.builder

        # Leaf functions live after main; emit main first so PC 0 is entry.
        body_items = self._pick_body_items()
        self._leaf_labels = [builder.label(f"leaf{i}")
                             for i in range(profile.call_leaves)]

        builder.begin_function("main")
        # Trip count is patched after the body is emitted and measured.
        self._emit_init(trips=1)
        trips_pc = builder.here - len(LIVE_TEMPS) - 6  # PC of the MOVI R_CTR
        loop_head = builder.label("loop")
        builder.bind(loop_head)
        body_start = builder.here
        calls_in_body = 0
        arms_skippable = 0
        for kind in body_items:
            if kind == "out":
                self._emit(Opcode.OUT, r2=R_ACC)
                continue
            if kind == "call":
                calls_in_body += 1
            if kind == "branch_rand":
                arms_skippable += profile.branch_arm_len
            self._ITEM_EMITTERS[kind](self)
        self._emit(Opcode.ADDI, r1=R_CTR, r2=R_CTR, imm=-1)
        self._emit(Opcode.CMP_NE, r1=P_LOOP, r2=R_CTR, r3=0)
        builder.emit_control(Opcode.BR, loop_head, qp=P_LOOP)
        body_static = builder.here - body_start
        self._emit(Opcode.OUT, r2=R_ACC)
        self._emit(Opcode.HALT)
        builder.end_function()

        leaf_dynamic = profile.leaf_body_len + profile.leaf_dead_writes
        for index, label in enumerate(self._leaf_labels):
            real_label = self._emit_leaf(index)
            label.pc = real_label.pc  # alias pre-created labels used by CALLs

        # Dynamic length per iteration: static body, minus half of the
        # random-branch arms (skipped when taken), plus executed leaf bodies.
        per_iter = body_static - arms_skippable // 2 + calls_in_body * leaf_dynamic
        trips = max(1, round(target_instructions / max(1, per_iter)))

        program = builder.build(
            entry=0,
            data_words=COLD_BASE + COLD_WORDS,
            name=profile.name,
            metadata={
                "profile": profile.name,
                "suite": profile.suite,
                "trips": trips,
                "per_iteration_estimate": per_iter,
            },
        )
        # Patch the trip count MOVI now that trips is known.
        instructions = list(program.instructions)
        movi_ctr = instructions[trips_pc]
        if movi_ctr.opcode is not Opcode.MOVI or movi_ctr.r1 != R_CTR:
            raise AssertionError("trip-count patch location drifted")
        instructions[trips_pc] = Instruction(Opcode.MOVI, r1=R_CTR, imm=trips)
        return Program(
            instructions=instructions,
            functions=program.functions,
            entry=0,
            data_words=program.data_words,
            name=program.name,
            metadata=program.metadata,
        )


def synthesize(
    profile: BenchmarkProfile,
    target_instructions: int = 100_000,
    seed: int = 2004,
) -> Program:
    """Convenience wrapper: build the program for ``profile``."""
    return ProgramSynthesizer(profile, seed=seed).synthesize(target_instructions)
