"""Workload characterization: what each synthetic benchmark looks like.

Real reproduction studies publish a characterization table next to their
results so readers can judge the workloads; this module computes one per
profile — dynamic instruction mix, cache-miss rates, branch behaviour and
the dead-code composition — from actual simulation, not from the knobs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.deadcode import DEAD_CLASSES, DynClass
from repro.experiments.common import ExperimentSettings, run_benchmark
from repro.isa.opcodes import InstrClass
from repro.pipeline.config import Trigger
from repro.util.tables import format_table
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import ALL_PROFILES


@dataclass
class WorkloadCharacter:
    """Measured properties of one benchmark's dynamic behaviour."""

    name: str
    suite: str
    instructions: int
    ipc: float
    neutral_frac: float
    load_frac: float
    store_frac: float
    branch_frac: float
    pred_false_frac: float
    dead_frac: float
    l0_miss_per_kilo: float
    l1_miss_per_kilo: float
    mispredict_rate: float

    @classmethod
    def measure(cls, profile: BenchmarkProfile,
                settings: ExperimentSettings) -> "WorkloadCharacter":
        bench = run_benchmark(profile, settings, Trigger.NONE)
        trace = bench.execution.trace
        total = max(1, len(trace))
        classes = Counter(op.instruction.instr_class for op in trace)
        stats = bench.pipeline.stats
        predictions = max(1, stats.get("branch_predictions", 0))
        kilo = total / 1000.0
        return cls(
            name=profile.name,
            suite=profile.suite,
            instructions=total,
            ipc=bench.pipeline.ipc,
            neutral_frac=classes[InstrClass.NEUTRAL] / total,
            load_frac=classes[InstrClass.LOAD] / total,
            store_frac=classes[InstrClass.STORE] / total,
            branch_frac=(classes[InstrClass.BRANCH] + classes[InstrClass.CALL]
                         + classes[InstrClass.RET]) / total,
            pred_false_frac=sum(
                1 for op in trace if op.predicated_false) / total,
            dead_frac=bench.deadness.dead_fraction(),
            l0_miss_per_kilo=stats.get("l0_misses", 0) / kilo,
            l1_miss_per_kilo=stats.get("l1_misses", 0) / kilo,
            mispredict_rate=stats.get("branch_mispredictions", 0)
            / predictions,
        )


def characterize(
    settings: Optional[ExperimentSettings] = None,
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
) -> List[WorkloadCharacter]:
    settings = settings or ExperimentSettings()
    profiles = list(profiles or ALL_PROFILES)
    return [WorkloadCharacter.measure(profile, settings)
            for profile in profiles]


def format_characterization(rows: Sequence[WorkloadCharacter]) -> str:
    table = format_table(
        headers=["Benchmark", "IPC", "neutral", "loads", "stores",
                 "branches", "pred-false", "dead", "L0 m/Ki", "L1 m/Ki",
                 "mispredict"],
        rows=[[r.name, f"{r.ipc:.2f}", f"{r.neutral_frac:.1%}",
               f"{r.load_frac:.1%}", f"{r.store_frac:.1%}",
               f"{r.branch_frac:.1%}", f"{r.pred_false_frac:.1%}",
               f"{r.dead_frac:.1%}", f"{r.l0_miss_per_kilo:.1f}",
               f"{r.l1_miss_per_kilo:.1f}", f"{r.mispredict_rate:.1%}"]
              for r in rows],
        title="Workload characterization (measured, not configured)",
    )

    def mean(get, suite):
        values = [get(r) for r in rows if r.suite == suite]
        return sum(values) / len(values) if values else 0.0

    summary = (
        f"suite means: neutral int {mean(lambda r: r.neutral_frac, 'int'):.1%}"
        f" / fp {mean(lambda r: r.neutral_frac, 'fp'):.1%}; "
        f"mispredict int {mean(lambda r: r.mispredict_rate, 'int'):.1%}"
        f" / fp {mean(lambda r: r.mispredict_rate, 'fp'):.1%}; "
        f"dead overall "
        f"{sum(r.dead_frac for r in rows) / len(rows):.1%}"
    )
    return f"{table}\n\n{summary}"
