"""The 26 SPEC CPU2000 benchmark profiles (paper Table 2).

Each profile is a synthetic stand-in for one of the paper's SimPoint
slices. ``skip_millions`` preserves Table 2's skip intervals as metadata.
The knobs encode the qualitative characters the paper leans on:

* integer codes: more data-dependent branches, calls, and predication;
* floating-point codes: more no-ops/prefetches/hints (IA64 bundle padding
  and software pipelining) and heavier streaming memory traffic;
* ``mcf``/``art``: poor locality (random pointer loads into the cold
  region); ``ammp``: clustered L1 misses that queue instructions behind a
  few critical loads, which is why the paper sees its SDC AVF collapse by
  ~90 % under squashing at only ~7 % IPC cost.

Absolute constants were calibrated against the paper's aggregate targets
(IPC 1.21; IQ residency 29 % ACE / 33 % un-ACE / 8 % Ex-ACE / 30 % idle);
see EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.profile import BenchmarkProfile


def _int_profile(name: str, skip: int, **overrides: object) -> BenchmarkProfile:
    base = dict(
        name=name,
        suite="int",
        skip_millions=skip,
        w_alu=30.0,
        w_mul=6.0,
        w_hot_load=9.0,
        w_warm_load=1.2,
        w_cold_load=0.35,
        w_rand_load=0.0,
        w_live_store=4.0,
        w_branch_pred=5.0,
        w_branch_rand=1.0,
        w_pred_block=2.5,
        w_call=2.0,
        w_dead_single=3.5,
        w_dead_chain=0.8,
        w_dead_store=4.5,
        w_dead_mem_chain=1.8,
        w_noop=66.0,
        w_prefetch=1.0,
        w_hint=1.5,
        fetch_bubble_prob=0.34,
        body_items=320,
    )
    base.update(overrides)
    return BenchmarkProfile(**base)  # type: ignore[arg-type]


def _fp_profile(name: str, skip: int, **overrides: object) -> BenchmarkProfile:
    base = dict(
        name=name,
        suite="fp",
        skip_millions=skip,
        w_alu=26.0,
        w_mul=9.0,
        w_hot_load=7.0,
        w_warm_load=1.6,
        w_cold_load=0.6,
        w_rand_load=0.0,
        w_live_store=4.0,
        w_branch_pred=4.0,
        w_branch_rand=0.4,
        w_pred_block=1.0,
        w_call=0.8,
        w_dead_single=3.0,
        w_dead_chain=0.7,
        w_dead_store=4.5,
        w_dead_mem_chain=1.8,
        w_noop=100.0,
        w_prefetch=6.0,
        w_hint=2.5,
        fetch_bubble_prob=0.37,
        body_items=340,
    )
    base.update(overrides)
    return BenchmarkProfile(**base)  # type: ignore[arg-type]


INT_PROFILES: List[BenchmarkProfile] = [
    _int_profile("bzip2-source", 48_900, w_branch_rand=1.1, w_warm_load=2.6,
                 seed_salt=1),
    _int_profile("cc-200", 16_600, w_call=3.0, w_branch_rand=1.6,
                 w_cold_load=0.5, fetch_bubble_prob=0.36, seed_salt=2),
    _int_profile("crafty", 120_600, w_branch_rand=2.0, w_alu=34.0,
                 w_pred_block=3.0, seed_salt=3),
    _int_profile("eon-kajiya", 73_000, w_mul=6.0, w_call=3.0,
                 w_branch_rand=0.7, seed_salt=4),
    _int_profile("gap", 18_800, w_call=2.5, w_warm_load=2.0, seed_salt=5),
    _int_profile("gzip-graphic", 29_000, w_branch_rand=1.2, w_warm_load=2.8,
                 seed_salt=6),
    _int_profile("mcf", 26_200, w_rand_load=1.5, w_cold_load=0.8,
                 w_alu=24.0, fetch_bubble_prob=0.26, seed_salt=7),
    _int_profile("parser", 71_400, w_call=2.5, w_branch_rand=1.5,
                 seed_salt=8),
    _int_profile("perlbmk-makerand", 0, w_call=4.0, w_branch_rand=1.2,
                 fetch_bubble_prob=0.34, seed_salt=9),
    _int_profile("twolf", 185_400, w_branch_rand=1.5, w_cold_load=0.5,
                 seed_salt=10),
    _int_profile("vortex-lendian3", 59_300, w_call=3.5, w_warm_load=2.2,
                 fetch_bubble_prob=0.34, seed_salt=11),
    _int_profile("vpr-route", 49_200, w_branch_rand=1.4, w_cold_load=0.45,
                 seed_salt=12),
]

FP_PROFILES: List[BenchmarkProfile] = [
    _fp_profile("ammp", 50_900, w_cold_load=3.5, miss_burst=8,
                w_warm_load=0.8, w_noop=50.0, fetch_bubble_prob=0.15,
                seed_salt=21),
    _fp_profile("applu", 500, w_warm_load=3.0, w_cold_load=0.5,
                w_prefetch=7.0, seed_salt=22),
    _fp_profile("apsi", 100, w_warm_load=2.5, w_mul=7.0, seed_salt=23),
    _fp_profile("art-110", 36_400, w_rand_load=0.5, w_cold_load=0.4,
                w_noop=55.0, seed_salt=24),
    _fp_profile("equake", 1_500, w_warm_load=3.0, w_cold_load=0.6,
                seed_salt=25),
    _fp_profile("facerec", 64_100, w_warm_load=2.8, w_prefetch=7.0,
                seed_salt=26),
    _fp_profile("fma3d", 23_600, w_call=1.5, w_warm_load=2.2,
                fetch_bubble_prob=0.32, seed_salt=27),
    _fp_profile("galgel", 5_000, w_mul=8.0, w_warm_load=2.5, seed_salt=28),
    _fp_profile("lucas", 123_500, w_warm_load=3.0, w_noop=58.0,
                seed_salt=29),
    _fp_profile("mesa", 73_300, w_alu=30.0, w_branch_rand=0.5,
                w_noop=60.0, seed_salt=30),
    _fp_profile("mgrid", 200, w_warm_load=3.5, w_cold_load=0.6,
                w_prefetch=8.0, seed_salt=31),
    _fp_profile("sixtrack", 4_100, w_alu=34.0, w_mul=8.0, w_warm_load=1.2,
                w_noop=40.0, fetch_bubble_prob=0.24, seed_salt=32),
    _fp_profile("swim", 78_100, w_warm_load=3.5, w_cold_load=0.8,
                w_prefetch=8.0, seed_salt=33),
    _fp_profile("wupwise", 23_800, w_mul=7.0, w_warm_load=2.2,
                w_call=1.2, seed_salt=34),
]

ALL_PROFILES: List[BenchmarkProfile] = INT_PROFILES + FP_PROFILES

_BY_NAME: Dict[str, BenchmarkProfile] = {p.name: p for p in ALL_PROFILES}


def get_profile(name: str) -> BenchmarkProfile:
    """Look up a profile by its Table 2 benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(sorted(_BY_NAME))}"
        ) from None


def profile_names() -> List[str]:
    return [p.name for p in ALL_PROFILES]
