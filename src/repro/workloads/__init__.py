"""Synthetic SPEC CPU2000-like workloads.

The paper evaluates dynamic SimPoint slices of 26 SPEC CPU2000 binaries
compiled for IA64. We cannot run those binaries, so this package
synthesises *executable* REPRO-64 programs whose dynamic properties —
instruction mix, cache-miss behaviour, branch predictability, predication,
call structure, and dynamically-dead-code fraction — are controlled per
benchmark by a :class:`~repro.workloads.profile.BenchmarkProfile`.

Programs are real code: deadness, wrong paths and miss streams are
*discovered* by downstream analyses, not labelled by the generator.
"""

from repro.workloads.builder import CodeBuilder, Label
from repro.workloads.codegen import ProgramSynthesizer, synthesize
from repro.workloads.profile import BenchmarkProfile
from repro.workloads.spec2000 import (
    ALL_PROFILES,
    FP_PROFILES,
    INT_PROFILES,
    get_profile,
    profile_names,
)

__all__ = [
    "CodeBuilder",
    "Label",
    "ProgramSynthesizer",
    "synthesize",
    "BenchmarkProfile",
    "ALL_PROFILES",
    "FP_PROFILES",
    "INT_PROFILES",
    "get_profile",
    "profile_names",
]
