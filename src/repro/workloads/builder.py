"""A tiny two-pass assembler for synthesising programs.

The generator emits instructions linearly and uses :class:`Label` for
forward branch/call targets; displacements are patched at :meth:`build`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import FunctionInfo, Program


class Label:
    """A code position, possibly not yet bound."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.pc: Optional[int] = None

    @property
    def bound(self) -> bool:
        return self.pc is not None

    def __repr__(self) -> str:
        where = self.pc if self.bound else "?"
        return f"Label({self.name}@{where})"


class CodeBuilder:
    """Accumulates instructions, labels and function extents."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._fixups: List[Tuple[int, Label]] = []
        self._functions: List[FunctionInfo] = []
        self._open_function: Optional[Tuple[str, int]] = None
        self._label_counter = 0

    @property
    def here(self) -> int:
        """PC of the next instruction to be emitted."""
        return len(self._instructions)

    def label(self, name: Optional[str] = None) -> Label:
        self._label_counter += 1
        return Label(name or f"L{self._label_counter}")

    def bind(self, label: Label) -> None:
        if label.bound:
            raise ValueError(f"label {label.name} already bound")
        label.pc = self.here

    def emit(self, instruction: Instruction) -> int:
        """Append one instruction; returns its PC."""
        pc = self.here
        self._instructions.append(instruction)
        return pc

    def emit_control(self, opcode: Opcode, target: Label, qp: int = 0) -> int:
        """Emit a BR or CALL whose displacement is patched at build time."""
        if opcode not in (Opcode.BR, Opcode.CALL):
            raise ValueError(f"emit_control takes BR or CALL, got {opcode}")
        pc = self.emit(Instruction(opcode, qp=qp, imm=0))
        self._fixups.append((pc, target))
        return pc

    def begin_function(self, name: str) -> None:
        if self._open_function is not None:
            raise ValueError("previous function still open")
        self._open_function = (name, self.here)

    def end_function(self) -> None:
        if self._open_function is None:
            raise ValueError("no function open")
        name, entry = self._open_function
        self._functions.append(FunctionInfo(name=name, entry=entry, end=self.here))
        self._open_function = None

    def build(
        self,
        entry: int = 0,
        data_words: int = 0,
        name: str = "program",
        metadata: Optional[Dict[str, object]] = None,
    ) -> Program:
        """Patch fixups and produce the immutable :class:`Program`."""
        if self._open_function is not None:
            raise ValueError(f"function {self._open_function[0]} never closed")
        instructions = list(self._instructions)
        for pc, label in self._fixups:
            if not label.bound:
                raise ValueError(f"unbound label {label.name}")
            instructions[pc] = replace(instructions[pc], imm=label.pc - pc)
        return Program(
            instructions=instructions,
            functions=self._functions,
            entry=entry,
            data_words=data_words,
            name=name,
            metadata=metadata,
        )
