"""SimPoint-scale workloads: tiled committed traces for long-run timing.

The 26 profile programs synthesize to a few thousand committed
instructions — enough for the paper's AVF exhibits, far too short to
exercise SimPoint-scale timing (the paper simulates 100M-instruction
slices). This module scales a profile's committed trace by tiling its
chunk stream: the dynamic basic-block sequence repeats verbatim,
sequence numbers are renumbered to stay dense (``trace[i].seq == i``),
and every instruction object is shared with the base program — exactly
the repetition structure the chunk-compositional timing memo
(:mod:`repro.pipeline.compose`) exploits.

Scaled traces are a *timing-path* artifact: architectural deadness and
output analysis remain defined by the base execution, so the catalogue
deliberately exposes only ``(program, trace)`` pairs, not a scaled
:class:`ExecutionResult`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.executor import FunctionalSimulator
from repro.arch.trace import CommittedOp
from repro.workloads.codegen import synthesize
from repro.workloads.spec2000 import ALL_PROFILES, get_profile

#: Deterministic seed for every catalogue entry (matches the exhibit
#: suite's convention of one fixed seed per artifact).
SCALED_SEED = 20_040_619

#: Committed instructions synthesized per base program before tiling.
BASE_INSTRUCTIONS = 3_000


def scale_trace(trace: Sequence[CommittedOp], factor: int) \
        -> List[CommittedOp]:
    """Tile ``trace`` ``factor`` times with dense renumbered ``seq``.

    Rows are fresh :class:`CommittedOp` records (sequence numbers must
    be unique) but share the base trace's instruction objects, so the
    chunk memo's per-object decode/encode caches and the per-program
    memo scope both carry over.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    out: List[CommittedOp] = []
    append = out.append
    base = 0
    n = len(trace)
    for _ in range(factor):
        for op in trace:
            append(CommittedOp(
                seq=base + op.seq,
                pc=op.pc,
                instruction=op.instruction,
                executed=op.executed,
                dest_gpr=op.dest_gpr,
                dest_pred=op.dest_pred,
                src_gprs=op.src_gprs,
                mem_addr=op.mem_addr,
                is_store=op.is_store,
                is_load=op.is_load,
                branch_taken=op.branch_taken,
                next_pc=op.next_pc,
                invocation=op.invocation,
                is_output=op.is_output,
            ))
        base += n
    return out


def trace_digest(trace: Sequence[CommittedOp]) -> str:
    """sha256 over the timing-relevant row content of ``trace``.

    Covers exactly the fields the interval kernel (and the chunk memo's
    row fingerprint) observes, so two traces with equal digests are
    indistinguishable to the timing path.
    """
    h = hashlib.sha256()
    update = h.update
    enc_cache: Dict[int, int] = {}  # id(instruction) -> encoding
    for op in trace:
        instruction = op.instruction
        enc = enc_cache.get(id(instruction))
        if enc is None:
            enc = instruction.encode()
            enc_cache[id(instruction)] = enc
        update(repr((op.seq, op.pc, enc, op.mem_addr,
                     op.executed, op.branch_taken)).encode())
    return h.hexdigest()


@dataclass(frozen=True)
class ScaledWorkload:
    """One catalogue entry: a profile tiled to a target dynamic length."""

    name: str
    base_profile: str
    target_instructions: int


def _entries() -> Tuple[ScaledWorkload, ...]:
    entries: List[ScaledWorkload] = []
    for profile in ALL_PROFILES:
        entries.append(ScaledWorkload(
            name=f"{profile.name}-200k",
            base_profile=profile.name,
            target_instructions=200_000))
    # A deeper tier for the SimPoint-scale timing benches: one poor-
    # locality integer code, one branchy integer code, one fp streamer.
    for name in ("mcf", "crafty", "equake"):
        entries.append(ScaledWorkload(
            name=f"{name}-2m",
            base_profile=name,
            target_instructions=2_000_000))
    return tuple(entries)


#: The scaled-workload catalogue: every profile at 200k dynamic
#: instructions plus three 2M-instruction deep entries.
SCALED_WORKLOADS: Tuple[ScaledWorkload, ...] = _entries()

_BY_NAME: Dict[str, ScaledWorkload] = {w.name: w for w in SCALED_WORKLOADS}

#: (workload name, seed) -> (program, trace); one build per process.
_BUILD_CACHE: Dict[Tuple[str, int], tuple] = {}


def get_scaled(name: str) -> ScaledWorkload:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown scaled workload {name!r}; known: "
            f"{', '.join(sorted(_BY_NAME))}") from None


def build_scaled(
    workload: "ScaledWorkload | str",
    seed: int = SCALED_SEED,
    base_instructions: int = BASE_INSTRUCTIONS,
    cache: bool = True,
) -> tuple:
    """Materialize ``(program, trace)`` for a catalogue entry.

    The base program is synthesized and functionally executed once; its
    committed trace is tiled with the smallest factor reaching the
    workload's target. Deterministic: same entry + seed, same digest.
    """
    if isinstance(workload, str):
        workload = get_scaled(workload)
    key = (workload.name, seed)
    if cache:
        cached = _BUILD_CACHE.get(key)
        if cached is not None:
            return cached
    profile = get_profile(workload.base_profile)
    program = synthesize(profile, target_instructions=base_instructions,
                         seed=seed)
    execution = FunctionalSimulator(program).run()
    if not execution.clean:
        raise RuntimeError(
            f"base execution for {workload.name} was not clean")
    base_trace = execution.trace
    factor = -(-workload.target_instructions // len(base_trace))
    trace = scale_trace(base_trace, factor)
    built = (program, trace)
    if cache:
        _BUILD_CACHE[key] = built
    return built


def clear_scaled_cache() -> None:
    """Drop cached builds (mainly for tests)."""
    _BUILD_CACHE.clear()
