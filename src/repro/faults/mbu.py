"""Multi-bit upset (MBU) burst shapes over the per-trial seed streams.

A single particle can deposit charge across neighbouring storage cells,
so beyond the paper's single-bit model the physically observed error
patterns are dominated by *adjacent* 2- and 3-bit bursts, with a small
tail of independent (non-adjacent) doubles. This module draws those
shapes from severity-preset probability mass functions, layered on top
of the existing strike sampler:

* :func:`extend_strike` consumes draws from the *same* per-trial
  :func:`~repro.util.rng.derive_seed` stream as
  :class:`~repro.faults.model.StrikeModel`, strictly **after** the
  sampler's ``(bit, point)`` pair. A campaign with MBU off therefore
  replays the identical stream with zero extra draws — single-bit
  tallies, cache keys, and sharding behaviour are untouched.
* Every draw goes through ``randrange`` so the batched path
  (:func:`~repro.faults.batch.draw_strike_batch`) can replay the exact
  Mersenne ``getrandbits`` protocol and stay bit-identical to the
  scalar loop under any sharding.

Pattern geometry is canonical by construction: adjacent bursts are
clamped into the 41-bit word (a burst at the array edge folds inward,
as on a physical row), and the second bit of a random double is
rejection-sampled to be at least two positions away from the first —
so the four patterns and the four mask *shapes* (single, adjacent run
of 2, adjacent run of 3, non-adjacent pair) are in bijection, which is
what lets the vectorised classifier act on pattern codes while the
scalar evaluator classifies the mask itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import IntEnum, unique
from typing import Dict, Optional, Tuple

from repro.isa.encoding import ENCODING_BITS, Field, field_bits
from repro.faults.model import Strike

#: Integer PMF resolution: preset weights sum to this, and the pattern
#: draw is one ``randrange(PMF_RESOLUTION)`` — replayable bit-exactly.
PMF_RESOLUTION = 10_000


@unique
class BurstPattern(IntEnum):
    """Drawable error-pattern shapes, densely coded for array columns."""

    SINGLE = 0
    DOUBLE_ADJACENT = 1
    TRIPLE_ADJACENT = 2
    RANDOM_DOUBLE = 3


#: Canonical minimal mask per pattern shape. Classification depends only
#: on (weight, adjacency), so any drawn mask of a pattern classifies
#: exactly like its canonical form (pinned in ``tests/test_mbu.py``).
CANONICAL_MASKS: Dict[BurstPattern, int] = {
    BurstPattern.SINGLE: 0b1,
    BurstPattern.DOUBLE_ADJACENT: 0b11,
    BurstPattern.TRIPLE_ADJACENT: 0b111,
    BurstPattern.RANDOM_DOUBLE: 0b101,
}


@dataclass(frozen=True)
class MbuPreset:
    """One severity preset: a PMF over :class:`BurstPattern`.

    ``weights`` are integer masses out of :data:`PMF_RESOLUTION`, in
    pattern-code order.
    """

    name: str
    weights: Tuple[int, int, int, int]

    def __post_init__(self) -> None:
        if len(self.weights) != len(BurstPattern):
            raise ValueError("one weight per burst pattern required")
        if any(w < 0 for w in self.weights):
            raise ValueError("preset weights must be non-negative")
        if sum(self.weights) != PMF_RESOLUTION:
            raise ValueError(
                f"preset weights must sum to {PMF_RESOLUTION}, "
                f"got {sum(self.weights)}")

    def probability(self, pattern: BurstPattern) -> float:
        return self.weights[pattern] / PMF_RESOLUTION


#: Severity presets. ``terrestrial`` follows the published sea-level
#: SRAM pattern mix (85 % singles, 12 % adjacent doubles, 2 % adjacent
#: triples, 1 % independent doubles); the harsher environments shift
#: mass toward bursts the way high-LET particles do.
PRESETS: Dict[str, MbuPreset] = {
    "terrestrial": MbuPreset("terrestrial", (8500, 1200, 200, 100)),
    "avionics": MbuPreset("avionics", (7000, 2000, 600, 400)),
    "space": MbuPreset("space", (5500, 2800, 1000, 700)),
}


def get_preset(name: str) -> MbuPreset:
    """Look a preset up by name; unknown names raise ``ValueError``."""
    preset = PRESETS.get(name)
    if preset is None:
        raise ValueError(
            f"unknown MBU preset {name!r}; choose from "
            f"{', '.join(sorted(PRESETS))}")
    return preset


# ---------------------------------------------------------------------------
# Drawing
# ---------------------------------------------------------------------------

def draw_pattern(rng, preset: MbuPreset) -> BurstPattern:
    """One pattern draw: a single ``randrange(PMF_RESOLUTION)``."""
    point = rng.randrange(PMF_RESOLUTION)
    acc = 0
    for pattern in BurstPattern:
        acc += preset.weights[pattern]
        if point < acc:
            return pattern
    raise AssertionError("preset weights do not cover the PMF resolution")


def draw_second_bit(rng, bit: int) -> int:
    """Second bit of a random double: uniform, rejecting the +/-1 window.

    The rejection loop re-draws whole ``randrange`` calls, so the batch
    replay (which re-implements ``randrange`` over ``getrandbits``) sees
    the identical stream.
    """
    second = rng.randrange(ENCODING_BITS)
    while abs(second - bit) < 2:
        second = rng.randrange(ENCODING_BITS)
    return second


def _adjacent_mask(bit: int, width: int) -> int:
    """Adjacent run of ``width`` bits anchored at ``bit``, clamped in-word."""
    start = min(bit, ENCODING_BITS - width)
    return ((1 << width) - 1) << start


def mask_for(pattern: BurstPattern, bit: int,
             second: Optional[int] = None) -> int:
    """Burst mask of a drawn pattern (0 for SINGLE: ``Strike``'s "no burst").

    Pure function of the drawn values, shared by the scalar sampler and
    the batched drawer so their masks cannot diverge.
    """
    if pattern is BurstPattern.SINGLE:
        return 0
    if pattern is BurstPattern.DOUBLE_ADJACENT:
        return _adjacent_mask(bit, 2)
    if pattern is BurstPattern.TRIPLE_ADJACENT:
        return _adjacent_mask(bit, 3)
    if second is None:
        raise ValueError("random double requires the second bit")
    return (1 << bit) | (1 << second)


def extend_strike(strike: Strike, rng, preset: MbuPreset) -> Strike:
    """Grow one sampled strike into a burst.

    Must be called immediately after ``StrikeModel.sample`` on the same
    per-trial stream: the pattern draw (plus the rejection-sampled
    second bit of a random double) consumes draws strictly after the
    sampler's ``(bit, point)`` pair. Idle strikes draw their shape too —
    the particle does not know the entry was empty — which keeps the
    scalar and batched draw protocols uniform across every trial.
    """
    pattern = draw_pattern(rng, preset)
    if pattern is BurstPattern.SINGLE:
        return strike
    second = (draw_second_bit(rng, strike.bit)
              if pattern is BurstPattern.RANDOM_DOUBLE else None)
    return replace(strike, mask=mask_for(pattern, strike.bit, second))


# ---------------------------------------------------------------------------
# Mask utilities shared by the injector, tracker, and batch classifier
# ---------------------------------------------------------------------------

def _field_mask(field: Field) -> int:
    word = 0
    for bit in field_bits(field):
        word |= 1 << bit
    return word


_OPCODE_MASK = _field_mask(Field.OPCODE)


def representative_bit(mask: int) -> int:
    """The bit that stands for a burst in per-bit detection machinery.

    The π-bit tracker and the anti-π test consume a single struck bit,
    but the only property they read off it is "is it an opcode-field
    bit". A burst could turn a neutral instruction real iff *any* of
    its bits touches the opcode field, so the representative is the
    lowest opcode-field bit when the burst intersects the opcode, else
    the lowest set bit. For a single-bit mask this is the bit itself.
    """
    if mask <= 0:
        raise ValueError("burst mask must have at least one set bit")
    hits = mask & _OPCODE_MASK
    word = hits if hits else mask
    return (word & -word).bit_length() - 1
