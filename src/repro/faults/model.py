"""Strike model: where and when a particle hits the instruction queue."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import List, Optional

from repro.isa.encoding import ENCODING_BITS
from repro.pipeline.iq import OccupancyInterval
from repro.pipeline.result import PipelineResult
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class Strike:
    """One sampled upset.

    ``interval`` is None when the strike landed on an idle entry;
    ``cycle`` is absolute, ``bit`` indexes the 41-bit syllable. ``mask``
    is 0 for the classic single-event upset; a multi-bit burst (see
    :mod:`repro.faults.mbu`) stores its full flip mask there, with
    ``bit`` remaining the primary drawn bit.
    """

    interval: Optional[OccupancyInterval]
    cycle: int
    bit: int
    mask: int = 0

    @property
    def hit_idle(self) -> bool:
        return self.interval is None

    @property
    def burst_mask(self) -> int:
        """The flipped bits as a mask (never 0: singles are ``1 << bit``)."""
        return self.mask or (1 << self.bit)


class StrikeModel:
    """Uniform sampler over the queue's (entry x cycle x bit) space.

    Strikes are uniform over *entry-cycles*: the probability of hitting a
    given occupant is proportional to its residency, and the probability
    of hitting an idle entry equals the queue's idle fraction — exactly
    the exposure model behind the AVF equations of Section 2.

    ``label`` (typically the program or profile name) is folded into the
    empty-space error so campaign-level quarantine reports can attribute
    the unsampleable pipeline result to its workload.
    """

    def __init__(self, result: PipelineResult,
                 rng: Optional[DeterministicRng] = None,
                 label: Optional[str] = None) -> None:
        self._rng = rng
        self._intervals = result.intervals
        self._cumulative: List[int] = list(accumulate(
            interval.resident_cycles for interval in self._intervals))
        self._resident_total = (self._cumulative[-1]
                                if self._cumulative else 0)
        self._space_total = result.total_entry_cycles
        if self._space_total <= 0:
            raise ValueError(empty_space_message(result, label))
        if self._resident_total > self._space_total:
            raise ValueError("occupancy exceeds the entry-cycle space")

    def sample(self, rng: Optional[DeterministicRng] = None) -> Strike:
        """Draw one strike from ``rng`` (default: the bound stream).

        Passing an explicit per-trial stream makes the draw independent
        of sampler state, which is what lets campaign shards reproduce
        the serial trial sequence exactly.
        """
        rng = rng if rng is not None else self._rng
        if rng is None:
            raise ValueError("no rng bound at construction or passed in")
        bit = rng.randrange(ENCODING_BITS)
        point = rng.randrange(self._space_total)
        if point >= self._resident_total:
            return Strike(interval=None, cycle=0, bit=bit)
        index = bisect_right(self._cumulative, point)
        interval = self._intervals[index]
        start = self._cumulative[index] - interval.resident_cycles
        cycle = interval.alloc_cycle + (point - start)
        return Strike(interval=interval, cycle=cycle, bit=bit)


def empty_space_message(result: PipelineResult,
                        label: Optional[str] = None) -> str:
    """The attributable empty-entry-cycle-space diagnostic.

    Shared by the scalar sampler and the batched drawer so quarantine
    reports carry the same identifying detail (workload label plus the
    degenerate geometry) whichever path tripped first.
    """
    origin = f" [{label}]" if label else ""
    return ("pipeline result has an empty entry-cycle space "
            f"({result.iq_entries} entries x {result.cycles} "
            f"cycles){origin}")
