"""Vectorised bit-matrix strike batching.

The scalar campaign loop pays one Python round-trip per trial: build an
RNG, sample a strike, walk the evaluator's decision tree, tick a
counter. This module lifts a whole campaign's strikes into parallel
arrays and classifies them in bulk:

* :func:`draw_strike_batch` draws every trial's ``(interval, bit,
  cycle)`` triple up front. The *draws* replay the exact per-trial
  :func:`~repro.util.rng.derive_seed` streams the scalar sampler uses
  (two ``randrange`` calls against the trial's private Mersenne
  Twister), so the sampled sequence is bit-identical for any seed and
  any sharding; only the point→interval mapping — a binary search over
  the residency prefix sums of the columnar
  :class:`~repro.pipeline.iq.IntervalTimeline` — is vectorised.
* :func:`build_kill_masks` precomputes the effect oracle's static
  pre-filter as one 41-bit mask per trace entry — a ``trace × 41`` bit
  matrix. Bit ``b`` of ``masks[seq]`` is set iff
  ``EffectOracle.classify_static(seq, b)`` would prove the flip inert
  (the exhaustive equivalence is asserted in
  ``tests/test_strike_batching.py``).
* :class:`BatchClassifier` runs the evaluator's decision tree as array
  operations: never-read, ECC-corrected, and wrong-path strikes are
  tallied without any per-trial Python, and the surviving committed-read
  strikes look their static verdict up in the bit matrix before falling
  through to the (memoized) scalar oracle for re-execution.

The contract mirrors the rest of the fast-path stack: tallies, tracker
misses, oracle counters, and cache keys are bit-identical to the scalar
loop — batching may only change wall-clock. NumPy accelerates both the
point mapping and the mask lookups; every entry point degrades to a
pure-Python implementation with identical results when NumPy is absent.
"""

from __future__ import annotations

import hashlib
from array import array
from bisect import bisect_right
from collections import Counter
from itertools import accumulate
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.due.outcomes import FaultOutcome
from repro.due.tracking import BurstAction, TrackingLevel, classify_burst
from repro.faults.mbu import (
    CANONICAL_MASKS,
    PMF_RESOLUTION,
    BurstPattern,
    draw_pattern,
    draw_second_bit,
    get_preset,
    mask_for,
    representative_bit,
)
from repro.faults.model import empty_space_message
from repro.isa.encoding import ENCODING_BITS, Field, field_bits, live_fields
from repro.pipeline.iq import CODE_BY_KIND, KIND_COMMITTED, NO_VALUE
from repro.pipeline.result import PipelineResult

try:  # NumPy accelerates the array paths; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

try:  # CPython's C-level Mersenne Twister (random.Random's base class).
    from _random import Random as _CoreRandom
except ImportError:  # pragma: no cover - non-CPython fallback
    _CoreRandom = None

#: Everything a 41-bit syllable can hold.
_ALL_BITS = (1 << ENCODING_BITS) - 1


def _field_mask(*fields: Field) -> int:
    word = 0
    for field in fields:
        for bit in field_bits(field):
            word |= 1 << bit
    return word


#: Bits whose flip the predicated-false rule cannot clear (QP/OPCODE).
_QP_OPCODE_MASK = _field_mask(Field.QP, Field.OPCODE)
#: Bits the dead-destination rule covers (the oracle's value fields).
_VALUE_MASK = _field_mask(Field.R2, Field.R3, Field.IMM7)

#: opcode -> 41-bit mask of its architecturally-live field bits.
_LIVE_MASKS: Dict[object, int] = {}


def _live_mask(opcode) -> int:
    mask = _LIVE_MASKS.get(opcode)
    if mask is None:
        mask = _field_mask(*live_fields(opcode))
        _LIVE_MASKS[opcode] = mask
    return mask


# ---------------------------------------------------------------------------
# The strike arrays
# ---------------------------------------------------------------------------

class StrikeBatch:
    """Pre-drawn strike triples for trials ``[start, stop)``.

    Three parallel columns, one row per trial, addressed by absolute
    trial index: ``interval_index`` (row of the pipeline result's
    interval sequence, :data:`~repro.pipeline.iq.NO_VALUE` for a strike
    on an idle entry), ``cycle`` (absolute strike cycle, 0 for idle),
    and ``bit`` (0..40). Plain ``array`` columns keep the batch small
    and picklable, so shard tuples can carry slices to worker processes.

    Multi-bit campaigns add two more columns: ``mask`` (the burst flip
    mask, 0 for a single) and ``pattern`` (the drawn
    :class:`~repro.faults.mbu.BurstPattern` code). Both are ``None`` for
    single-bit batches, so pre-MBU pickles, equality, and memory
    footprint are untouched.
    """

    __slots__ = ("start", "stop", "interval_index", "cycle", "bit",
                 "mask", "pattern")

    def __init__(self, start: int, stop: int,
                 interval_index: Sequence[int], cycle: Sequence[int],
                 bit: Sequence[int],
                 mask: Optional[Sequence[int]] = None,
                 pattern: Optional[Sequence[int]] = None) -> None:
        if not 0 <= start <= stop:
            raise ValueError("batch range must satisfy 0 <= start <= stop")
        if (mask is None) != (pattern is None):
            raise ValueError("mask and pattern columns come as a pair")
        self.start = start
        self.stop = stop
        self.interval_index = array("q", interval_index)
        self.cycle = array("q", cycle)
        self.bit = array("q", bit)
        self.mask = None if mask is None else array("q", mask)
        self.pattern = None if pattern is None else array("b", pattern)
        if not (len(self.interval_index) == len(self.cycle)
                == len(self.bit) == stop - start):
            raise ValueError("batch columns must cover exactly [start, stop)")
        if self.mask is not None and not (
                len(self.mask) == len(self.pattern) == stop - start):
            raise ValueError("batch columns must cover exactly [start, stop)")

    def __len__(self) -> int:
        return self.stop - self.start

    def slice(self, start: int, stop: int) -> "StrikeBatch":
        """Sub-batch covering trials ``[start, stop)`` (absolute indices)."""
        if not self.start <= start <= stop <= self.stop:
            raise ValueError(
                f"slice [{start}, {stop}) outside batch "
                f"[{self.start}, {self.stop})")
        lo, hi = start - self.start, stop - self.start
        return StrikeBatch(
            start, stop, self.interval_index[lo:hi],
            self.cycle[lo:hi], self.bit[lo:hi],
            None if self.mask is None else self.mask[lo:hi],
            None if self.pattern is None else self.pattern[lo:hi])

    def triples(self) -> List[Tuple[int, int, int]]:
        """``(interval_index, cycle, bit)`` rows, for tests and debugging."""
        return list(zip(self.interval_index, self.cycle, self.bit))

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, StrikeBatch)
                and (self.start, self.stop) == (other.start, other.stop)
                and self.interval_index == other.interval_index
                and self.cycle == other.cycle
                and self.bit == other.bit
                and self.mask == other.mask
                and self.pattern == other.pattern)

    def __repr__(self) -> str:
        return f"StrikeBatch([{self.start}, {self.stop}))"


def _residency_columns(result: PipelineResult):
    """``(alloc, resident, cumulative)`` columns of the interval sequence.

    Reads the columnar :class:`~repro.pipeline.iq.IntervalTimeline`
    directly when the run came from the interval kernel; a legacy
    object-list result is columnised on the fly.
    """
    timeline = result.timeline
    if timeline is not None:
        alloc = timeline.alloc
        if _np is not None:
            alloc_arr = _np.frombuffer(alloc, dtype=_np.int64)
            res_arr = (_np.frombuffer(timeline.dealloc, dtype=_np.int64)
                       - alloc_arr)
            resident = array("q")
            resident.frombytes(res_arr.tobytes())
            cumulative = array("q")
            cumulative.frombytes(_np.cumsum(res_arr).tobytes())
            return alloc, resident, cumulative
        return timeline.residency_prefix_sums()
    else:
        alloc = array("q", (iv.alloc_cycle for iv in result.intervals))
        resident = array("q",
                         (iv.resident_cycles for iv in result.intervals))
    cumulative = array("q", accumulate(resident))
    return alloc, resident, cumulative


def _trial_seeds(config, program_name: str, start: int,
                 stop: int) -> List[int]:
    """``trial_seed(config, program_name, i)`` for ``i`` in [start, stop).

    :func:`~repro.util.rng.derive_seed` hashes a label path whose prefix
    is constant across a campaign's trials; hashing that prefix once and
    forking the digest per index produces the identical seeds (sha256 is
    a stream) at a fraction of the cost. Equality with the scalar helper
    is pinned in ``tests/test_strike_batching.py``.
    """
    prefix = hashlib.sha256()
    prefix.update(str(config.seed).encode())
    for label in ("campaign", program_name, config.parity,
                  int(config.tracking), "trial"):
        prefix.update(b"/")
        prefix.update(str(label).encode())
    seeds = []
    for index in range(start, stop):
        digest = prefix.copy()
        digest.update(b"/")
        digest.update(str(index).encode())
        seeds.append(int.from_bytes(digest.digest()[:8], "little"))
    return seeds


def draw_strike_batch(result: PipelineResult, config, program_name: str,
                      start: int, stop: int) -> StrikeBatch:
    """Draw the strikes of trials ``[start, stop)`` as one batch.

    Per-trial draws replay :class:`~repro.faults.model.StrikeModel`
    exactly — bit first, then a uniform point over the entry-cycle
    space, both from the trial's private seed stream (a bare
    ``random.Random`` here; :class:`~repro.util.rng.DeterministicRng`
    delegates ``randrange`` to it unchanged) — so the batch is
    bit-identical to scalar sampling under any sharding. The expensive
    part, mapping each point onto its occupancy interval and absolute
    cycle, runs as one vectorised binary search.

    Multi-bit campaigns (``config.mbu_preset`` set) replay the MBU
    layer's draws too — the pattern draw and, for random doubles, the
    rejection-sampled second bit — strictly after the ``(bit, point)``
    pair on the same stream, exactly as :func:`~repro.faults.mbu.
    extend_strike` does in the scalar loop, and fill the batch's
    ``mask``/``pattern`` columns.
    """
    alloc, resident, cumulative = _residency_columns(result)
    resident_total = cumulative[-1] if cumulative else 0
    space_total = result.total_entry_cycles
    if space_total <= 0:
        raise ValueError(empty_space_message(result, program_name))
    if resident_total > space_total:
        raise ValueError("occupancy exceeds the entry-cycle space")

    preset = (get_preset(config.mbu_preset)
              if getattr(config, "mbu_preset", None) is not None else None)
    count = stop - start
    bits = array("q")
    points = array("q")
    masks = array("q") if preset is not None else None
    patterns = array("b") if preset is not None else None
    seeds = _trial_seeds(config, program_name, start, stop)
    if _CoreRandom is not None:
        # ``randrange(n)`` is pure Python on top of the C generator:
        # ``k = n.bit_length()``, draw ``getrandbits(k)``, reject while
        # ``>= n`` (``Random._randbelow``, unchanged since CPython 3.2).
        # Replaying it directly against the C base class skips two
        # Python call layers per draw; the golden differential suite
        # pins the equivalence.
        bit_width = ENCODING_BITS.bit_length()
        point_width = space_total.bit_length()
        pattern_width = PMF_RESOLUTION.bit_length()
        pattern_cum = (list(accumulate(preset.weights))
                       if preset is not None else None)
        for seed in seeds:
            draw = _CoreRandom(seed).getrandbits
            bit = draw(bit_width)
            while bit >= ENCODING_BITS:
                bit = draw(bit_width)
            point = draw(point_width)
            while point >= space_total:
                point = draw(point_width)
            bits.append(bit)
            points.append(point)
            if preset is None:
                continue
            mass = draw(pattern_width)
            while mass >= PMF_RESOLUTION:
                mass = draw(pattern_width)
            pattern = BurstPattern(bisect_right(pattern_cum, mass))
            second = None
            if pattern is BurstPattern.RANDOM_DOUBLE:
                # The flattened rejection replays draw_second_bit's
                # nested loops draw for draw: every getrandbits result
                # is either rejected (out of range or within the +/-1
                # window) or accepted, in the same order.
                second = draw(bit_width)
                while second >= ENCODING_BITS or abs(second - bit) < 2:
                    second = draw(bit_width)
            patterns.append(int(pattern))
            masks.append(mask_for(pattern, bit, second))
    else:  # pragma: no cover - non-CPython fallback
        for seed in seeds:
            rng = Random(seed)
            bit = rng.randrange(ENCODING_BITS)
            bits.append(bit)
            points.append(rng.randrange(space_total))
            if preset is None:
                continue
            pattern = draw_pattern(rng, preset)
            second = (draw_second_bit(rng, bit)
                      if pattern is BurstPattern.RANDOM_DOUBLE else None)
            patterns.append(int(pattern))
            masks.append(mask_for(pattern, bit, second))

    if _np is not None and count:
        point_arr = _np.frombuffer(points, dtype=_np.int64)
        cum_arr = _np.frombuffer(cumulative, dtype=_np.int64)
        occupied = point_arr < resident_total
        index_arr = _np.where(
            occupied,
            _np.searchsorted(cum_arr, point_arr, side="right"),
            0)
        if len(cum_arr):
            alloc_arr = _np.frombuffer(alloc, dtype=_np.int64)
            res_arr = _np.frombuffer(resident, dtype=_np.int64)
            span_start = cum_arr[index_arr] - res_arr[index_arr]
            cycle_arr = alloc_arr[index_arr] + (point_arr - span_start)
        else:
            cycle_arr = _np.zeros(count, dtype=_np.int64)
        interval_index = array("q")
        interval_index.frombytes(
            _np.where(occupied, index_arr, NO_VALUE)
            .astype(_np.int64, copy=False).tobytes())
        cycle = array("q")
        cycle.frombytes(_np.where(occupied, cycle_arr, 0)
                        .astype(_np.int64, copy=False).tobytes())
        return StrikeBatch(start, stop, interval_index, cycle, bits,
                           masks, patterns)

    interval_index = array("q")
    cycle = array("q")
    for point in points:
        if point >= resident_total:
            interval_index.append(NO_VALUE)
            cycle.append(0)
            continue
        index = bisect_right(cumulative, point)
        span_start = cumulative[index] - resident[index]
        interval_index.append(index)
        cycle.append(alloc[index] + (point - span_start))
    return StrikeBatch(start, stop, interval_index, cycle, bits,
                       masks, patterns)


# ---------------------------------------------------------------------------
# The static pre-filter as a bit matrix
# ---------------------------------------------------------------------------

def build_kill_masks(baseline, deadness) -> List[int]:
    """One 41-bit static-kill mask per trace entry.

    Bit ``b`` of ``masks[seq]`` is set iff the effect oracle's
    ``classify_static(seq, b)`` proves the flip inert. The three rules
    (non-live field, predicated-false outside QP/OPCODE, dead
    destination value — see :mod:`repro.faults.oracle`) become three
    mask unions per entry, so a whole campaign's verdicts are two array
    lookups instead of per-strike field decoding.
    """
    dead_classes = _dead_dest_classes()
    masks: List[int] = []
    for seq, op in enumerate(baseline.trace):
        kill = _ALL_BITS & ~_live_mask(op.instruction.opcode)
        if not op.executed:
            kill |= _ALL_BITS & ~_QP_OPCODE_MASK
        elif (not op.is_store
                and deadness.class_of(seq) in dead_classes):
            kill |= _VALUE_MASK
        masks.append(kill)
    return masks


def _dead_dest_classes():
    from repro.faults.oracle import _DEAD_DEST_CLASSES

    return _DEAD_DEST_CLASSES


def kill_matrix(masks: Sequence[int]):
    """The masks as a boolean ``trace × 41`` NumPy matrix (None w/o NumPy)."""
    if _np is None:
        return None
    mask_col = _np.fromiter(masks, dtype=_np.int64, count=len(masks))
    return ((mask_col[:, None] >> _np.arange(ENCODING_BITS)) & 1) \
        .astype(bool)


# ---------------------------------------------------------------------------
# Batched classification
# ---------------------------------------------------------------------------

#: Dense outcome codes for the purely-vectorised categories. A survivor
#: is a committed-read strike that still needs the oracle; the scheme
#: path distinguishes detected-uncorrectable survivors (which feed the
#: π-bit tracker like parity) from escaped ones (unprotected tail).
(_UNREAD, _CORRECTED, _UNACE, _FALSE_DUE, _SURVIVOR,
 _SURVIVOR_DETECT) = range(6)

_CODE_OUTCOME = {
    _UNREAD: FaultOutcome.BENIGN_UNREAD,
    _CORRECTED: FaultOutcome.CORRECTED,
    _UNACE: FaultOutcome.BENIGN_UNACE,
    _FALSE_DUE: FaultOutcome.FALSE_DUE,
}


class BatchClassifier:
    """Classifies :class:`StrikeBatch` blocks for one campaign.

    Holds everything shared across a campaign's blocks: the interval
    columns, the static bit matrix (built lazily — only when a block
    actually contains committed-read survivors, matching the scalar
    path's lazy deadness analysis), and the campaign-scoped
    :class:`~repro.faults.injector.StrikeEvaluator` whose oracle and
    π-bit tracker the surviving strikes fall through to. Tallies and
    oracle counters are bit-identical to evaluating each strike with
    ``evaluator.evaluate``; the instance counters record how much work
    the vectorised pass absorbed.
    """

    def __init__(self, evaluator, result: PipelineResult) -> None:
        self.evaluator = evaluator
        self.result = result
        self._columns = None  # (seq, kind, issue) per interval row
        self._masks: Optional[List[int]] = None
        self._matrix = None
        # Counters (merged into runtime telemetry by the campaign):
        self.trials = 0
        self.vector_kills = 0
        self.scalar_kills = 0
        self.reexecutions = 0

    def counters(self) -> Dict[str, int]:
        return {
            "batch_trials": self.trials,
            "batch_vector_kills": self.vector_kills,
            "batch_scalar_kills": self.scalar_kills,
            "batch_reexecutions": self.reexecutions,
        }

    # -- shared, lazily-built tables --------------------------------------

    def _interval_columns(self):
        if self._columns is None:
            timeline = self.result.timeline
            if timeline is not None:
                self._columns = (timeline.seq, timeline.kind, timeline.issue)
            else:
                intervals = self.result.intervals
                seq = array("q", (NO_VALUE if iv.seq is None else iv.seq
                                  for iv in intervals))
                kind = array("b", (CODE_BY_KIND[iv.kind]
                                   for iv in intervals))
                issue = array("q", (NO_VALUE if iv.issue_cycle is None
                                    else iv.issue_cycle for iv in intervals))
                self._columns = (seq, kind, issue)
        return self._columns

    def _kill_masks(self) -> List[int]:
        if self._masks is None:
            oracle = self.evaluator.oracle
            self._masks = build_kill_masks(oracle.baseline, oracle.deadness)
            self._matrix = kill_matrix(self._masks)
        return self._masks

    # -- classification ----------------------------------------------------

    def classify(self, batch: StrikeBatch) -> Tuple[Counter, int]:
        """``(outcome counts, tracker misses)`` for one batch of trials."""
        if self.evaluator.scheme is not None or batch.pattern is not None:
            return self._classify_scheme(batch)
        if _np is not None:
            codes, rows, seqs, bits = self._vector_pass_numpy(batch)
        else:
            codes, rows, seqs, bits = self._vector_pass_python(batch)

        counts: Counter = Counter()
        for code, outcome in _CODE_OUTCOME.items():
            tally = codes.get(code, 0)
            if tally:
                counts[outcome] += tally
        survivors = len(rows)
        self.trials += len(batch)
        self.vector_kills += len(batch) - survivors
        if not survivors:
            return counts, 0
        return self._classify_survivors(counts, rows, seqs, bits)

    def _vector_pass_numpy(self, batch: StrikeBatch):
        """Array form of the evaluator's pre-oracle decision tree."""
        n = len(batch)
        if n == 0:
            return {}, [], [], []
        seq_col, kind_col, issue_col = self._interval_columns()
        index = _np.frombuffer(batch.interval_index, dtype=_np.int64)
        cycle = _np.frombuffer(batch.cycle, dtype=_np.int64)
        bits = _np.frombuffer(batch.bit, dtype=_np.int64)
        occupied = index != NO_VALUE
        safe = _np.where(occupied, index, 0)
        if len(seq_col):
            seqs = _np.frombuffer(seq_col, dtype=_np.int64)[safe]
            kinds = _np.frombuffer(kind_col, dtype=_np.int8)[safe]
            issues = _np.frombuffer(issue_col, dtype=_np.int64)[safe]
        else:
            seqs = kinds = issues = _np.zeros(n, dtype=_np.int64)
        # Never read after the strike: never-issued occupants (issue is
        # NO_VALUE = -1, always < cycle+1) and strikes in the Ex-ACE tail.
        read = occupied & (cycle < issues)
        codes = _np.full(n, _UNREAD, dtype=_np.int8)
        evaluator = self.evaluator
        if evaluator.ecc:
            codes[read] = _CORRECTED
        else:
            wrong = read & (kinds != KIND_COMMITTED)
            if (not evaluator.parity
                    or evaluator.tracking >= TrackingLevel.PI_COMMIT):
                codes[wrong] = _UNACE
            else:
                codes[wrong] = _FALSE_DUE
            codes[read & (kinds == KIND_COMMITTED)] = _SURVIVOR
        tallies = dict(zip(*(part.tolist() for part in _np.unique(
            codes, return_counts=True))))
        rows = _np.nonzero(codes == _SURVIVOR)[0]
        return (tallies, rows.tolist(), seqs[rows].tolist(),
                bits[rows].tolist())

    def _vector_pass_python(self, batch: StrikeBatch):
        """Pure-Python fallback with identical tallies and survivors."""
        seq_col, kind_col, issue_col = self._interval_columns()
        evaluator = self.evaluator
        wrong_code = (_UNACE if (not evaluator.parity or
                                 evaluator.tracking >= TrackingLevel.PI_COMMIT)
                      else _FALSE_DUE)
        tallies: Dict[int, int] = {}
        rows: List[int] = []
        seqs: List[int] = []
        bits: List[int] = []
        for row, (index, cycle, bit) in enumerate(
                zip(batch.interval_index, batch.cycle, batch.bit)):
            if index == NO_VALUE or not cycle < issue_col[index]:
                code = _UNREAD
            elif evaluator.ecc:
                code = _CORRECTED
            elif kind_col[index] != KIND_COMMITTED:
                code = wrong_code
            else:
                rows.append(row)
                seqs.append(seq_col[index])
                bits.append(bit)
                code = _SURVIVOR
            tallies[code] = tallies.get(code, 0) + 1
        return tallies, rows, seqs, bits

    def _classify_survivors(self, counts: Counter, rows, seqs, bits):
        """Walk the committed-read survivors in trial order.

        The static verdicts come from the precomputed bit matrix (one
        vectorised lookup) instead of per-strike field decoding; the
        effects themselves come from the shared oracle via
        :meth:`~repro.faults.oracle.EffectOracle.effect_from_hint`, so
        memo/static/execution accounting is identical to the scalar
        loop's ``oracle.effect`` calls.
        """
        from repro.faults.injector import _EFFECT_TO_OUTCOME

        evaluator = self.evaluator
        oracle = evaluator.oracle
        # Hints are consulted only for strikes the memo cannot answer,
        # so skip the mask build (and its deadness analysis) when the
        # filter is off — exactly like the scalar path — or when a
        # warmed oracle already covers every survivor.
        if oracle.static_filter and any(
                not oracle.is_memoized(seq, bit)
                for seq, bit in zip(seqs, bits)):
            masks = self._kill_masks()
            if self._matrix is not None:
                hints = self._matrix[seqs, bits].tolist()
            else:
                hints = [bool((masks[seq] >> bit) & 1)
                         for seq, bit in zip(seqs, bits)]
        else:
            hints = [False] * len(seqs)
        tracker = evaluator.tracker
        parity = evaluator.parity
        executions_before = oracle.executions
        tracker_misses = 0
        for seq, bit, hint in zip(seqs, bits, hints):
            effect = oracle.effect_from_hint(seq, bit, hint)
            if not parity:
                if effect == "none":
                    counts[FaultOutcome.BENIGN_UNACE] += 1
                else:
                    counts[_EFFECT_TO_OUTCOME[effect]] += 1
                continue
            decision = tracker.process_fault(seq, bit)
            if decision.signaled:
                if effect == "none":
                    counts[FaultOutcome.FALSE_DUE] += 1
                else:
                    counts[FaultOutcome.TRUE_DUE] += 1
            elif effect == "none":
                counts[FaultOutcome.BENIGN_UNACE] += 1
            else:
                counts[_EFFECT_TO_OUTCOME[effect]] += 1
                tracker_misses += 1
        executed = oracle.executions - executions_before
        self.reexecutions += executed
        self.scalar_kills += len(rows) - executed
        return counts, tracker_misses

    # -- scheme/MBU classification ----------------------------------------

    def _classify_scheme(self, batch: StrikeBatch) -> Tuple[Counter, int]:
        """:meth:`classify` under the ECC lattice / multi-bit fault model.

        Burst classification is a lookup over *pattern codes*: the drawn
        masks of a pattern all share the decoder-relevant shape (weight,
        adjacency) of its canonical mask, so
        :func:`~repro.due.tracking.classify_burst` evaluated once per
        pattern stands for every trial (the bijection is pinned in
        ``tests/test_mbu.py``). ``scheme=None`` with a pattern column is
        the unprotected multi-bit campaign: no decoder, wrong-path reads
        are benign, committed reads fall through to the burst oracle.
        """
        actions = (None if self.evaluator.scheme is None else
                   [classify_burst(self.evaluator.scheme, CANONICAL_MASKS[p])
                    for p in BurstPattern])
        if _np is not None:
            tallies, rows, seqs, detects = self._scheme_pass_numpy(
                batch, actions)
        else:
            tallies, rows, seqs, detects = self._scheme_pass_python(
                batch, actions)
        counts: Counter = Counter()
        for code, outcome in _CODE_OUTCOME.items():
            tally = tallies.get(code, 0)
            if tally:
                counts[outcome] += tally
        survivors = len(rows)
        self.trials += len(batch)
        self.vector_kills += len(batch) - survivors
        if not survivors:
            return counts, 0
        return self._classify_survivors_mbu(counts, batch, rows, seqs,
                                            detects)

    def _scheme_pass_numpy(self, batch: StrikeBatch, actions):
        """Array form of the scheme decoder's pre-oracle decision tree."""
        n = len(batch)
        if n == 0:
            return {}, [], [], []
        seq_col, kind_col, issue_col = self._interval_columns()
        index = _np.frombuffer(batch.interval_index, dtype=_np.int64)
        cycle = _np.frombuffer(batch.cycle, dtype=_np.int64)
        occupied = index != NO_VALUE
        safe = _np.where(occupied, index, 0)
        if len(seq_col):
            seqs = _np.frombuffer(seq_col, dtype=_np.int64)[safe]
            kinds = _np.frombuffer(kind_col, dtype=_np.int8)[safe]
            issues = _np.frombuffer(issue_col, dtype=_np.int64)[safe]
        else:
            seqs = kinds = issues = _np.zeros(n, dtype=_np.int64)
        read = occupied & (cycle < issues)
        if batch.pattern is not None:
            pattern_arr = _np.frombuffer(batch.pattern, dtype=_np.int8)
        else:
            pattern_arr = _np.zeros(n, dtype=_np.int8)
        stats = self.evaluator.burst_stats
        stats["mbu_multi_bit"] += int(
            (pattern_arr != int(BurstPattern.SINGLE)).sum())
        committed = kinds == KIND_COMMITTED
        codes = _np.full(n, _UNREAD, dtype=_np.int8)
        if actions is None:
            codes[read & ~committed] = _UNACE
            codes[read & committed] = _SURVIVOR
        else:
            correct_lut = _np.array(
                [a is BurstAction.CORRECT for a in actions])
            detect_lut = _np.array(
                [a is BurstAction.DETECT for a in actions])
            corrected = read & correct_lut[pattern_arr]
            detected = read & detect_lut[pattern_arr]
            escaped = read & ~corrected & ~detected
            stats["ecc_corrected"] += int(corrected.sum())
            stats["ecc_detected"] += int(detected.sum())
            stats["ecc_escaped"] += int(escaped.sum())
            codes[corrected] = _CORRECTED
            wrong_detect = detected & ~committed
            codes[wrong_detect] = (
                _UNACE
                if self.evaluator.tracking >= TrackingLevel.PI_COMMIT
                else _FALSE_DUE)
            codes[detected & committed] = _SURVIVOR_DETECT
            codes[escaped & ~committed] = _UNACE
            codes[escaped & committed] = _SURVIVOR
        tallies = dict(zip(*(part.tolist() for part in _np.unique(
            codes, return_counts=True))))
        surv = (codes == _SURVIVOR) | (codes == _SURVIVOR_DETECT)
        rows = _np.nonzero(surv)[0]
        detects = (codes[rows] == _SURVIVOR_DETECT).tolist()
        return tallies, rows.tolist(), seqs[rows].tolist(), detects

    def _scheme_pass_python(self, batch: StrikeBatch, actions):
        """Pure-Python fallback with identical tallies and survivors."""
        seq_col, kind_col, issue_col = self._interval_columns()
        evaluator = self.evaluator
        stats = evaluator.burst_stats
        suppress_wrong = evaluator.tracking >= TrackingLevel.PI_COMMIT
        patterns = batch.pattern
        tallies: Dict[int, int] = {}
        rows: List[int] = []
        seqs: List[int] = []
        detects: List[bool] = []
        for row, (index, cycle) in enumerate(
                zip(batch.interval_index, batch.cycle)):
            pattern = patterns[row] if patterns is not None else 0
            if pattern != int(BurstPattern.SINGLE):
                stats["mbu_multi_bit"] += 1
            if index == NO_VALUE or not cycle < issue_col[index]:
                code = _UNREAD
            elif actions is None:
                if kind_col[index] != KIND_COMMITTED:
                    code = _UNACE
                else:
                    rows.append(row)
                    seqs.append(seq_col[index])
                    detects.append(False)
                    code = _SURVIVOR
            else:
                action = actions[pattern]
                committed = kind_col[index] == KIND_COMMITTED
                if action is BurstAction.CORRECT:
                    stats["ecc_corrected"] += 1
                    code = _CORRECTED
                elif action is BurstAction.DETECT:
                    stats["ecc_detected"] += 1
                    if not committed:
                        code = _UNACE if suppress_wrong else _FALSE_DUE
                    else:
                        rows.append(row)
                        seqs.append(seq_col[index])
                        detects.append(True)
                        code = _SURVIVOR_DETECT
                else:
                    stats["ecc_escaped"] += 1
                    if not committed:
                        code = _UNACE
                    else:
                        rows.append(row)
                        seqs.append(seq_col[index])
                        detects.append(False)
                        code = _SURVIVOR
            tallies[code] = tallies.get(code, 0) + 1
        return tallies, rows, seqs, detects

    def _classify_survivors_mbu(self, counts: Counter, batch: StrikeBatch,
                                rows, seqs, detects):
        """Walk the committed-read survivors of a scheme/MBU batch.

        Burst static hints are the subset test ``mask ⊆ kill_mask[seq]``
        — equivalent to the oracle's per-bit conjunction
        (:meth:`~repro.faults.oracle.EffectOracle.classify_static_mask`)
        because bit ``b`` of the kill mask is exactly
        ``classify_static(seq, b) is not None``. Detected survivors run
        the parity-style tracker tail on the burst's representative bit;
        escaped (or unprotected) survivors run the unprotected tail.
        """
        from repro.faults.injector import _EFFECT_TO_OUTCOME

        evaluator = self.evaluator
        oracle = evaluator.oracle
        bursts = []
        for row in rows:
            mask = batch.mask[row] if batch.mask is not None else 0
            bursts.append(mask or (1 << batch.bit[row]))
        if oracle.static_filter and any(
                not oracle.is_memoized_mask(seq, burst)
                for seq, burst in zip(seqs, bursts)):
            masks = self._kill_masks()
            hints = [(masks[seq] & burst) == burst
                     for seq, burst in zip(seqs, bursts)]
        else:
            hints = [False] * len(seqs)
        tracker = evaluator.tracker
        executions_before = oracle.executions
        tracker_misses = 0
        for seq, burst, hint, detect in zip(seqs, bursts, hints, detects):
            effect = oracle.effect_mask_from_hint(seq, burst, hint)
            if not detect:
                if effect == "none":
                    counts[FaultOutcome.BENIGN_UNACE] += 1
                else:
                    counts[_EFFECT_TO_OUTCOME[effect]] += 1
                continue
            decision = tracker.process_fault(seq, representative_bit(burst))
            if decision.signaled:
                if effect == "none":
                    counts[FaultOutcome.FALSE_DUE] += 1
                else:
                    counts[FaultOutcome.TRUE_DUE] += 1
            elif effect == "none":
                counts[FaultOutcome.BENIGN_UNACE] += 1
            else:
                counts[_EFFECT_TO_OUTCOME[effect]] += 1
                tracker_misses += 1
        executed = oracle.executions - executions_before
        self.reexecutions += executed
        self.scalar_kills += len(rows) - executed
        return counts, tracker_misses
