"""Evaluation of one sampled strike.

The unprotected path re-executes the program with the struck in-flight
instruction's encoding bit flipped and compares observable output; the
parity-protected path additionally asks the π-bit engine whether the
detected error is signalled under the configured tracking level.

Campaigns evaluate thousands of strikes against one ``(program,
baseline)`` pair, so the heavy per-strike machinery is hoisted into a
campaign-scoped :class:`StrikeEvaluator`: the π-bit tracker, the
execution limits, and the baseline output signature are built once, and
architectural effects come from a shared :class:`~repro.faults.oracle.
EffectOracle` (memoized, statically pre-filtered, persistable). The
module-level :func:`evaluate_strike` remains as the one-shot convenience
wrapper with the original signature and semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch.executor import ExecutionLimits, FunctionalSimulator
from repro.arch.result import ExecutionResult, ExecutionStatus
from repro.due.outcomes import FaultOutcome
from repro.due.pi_bit import PiBitTracker
from repro.due.tracking import (
    DEFAULT_PET_ENTRIES,
    BurstAction,
    EccScheme,
    TrackingLevel,
    classify_burst,
)
from repro.faults.mbu import representative_bit
from repro.faults.model import Strike
from repro.faults.oracle import EffectOracle
from repro.isa import encoding
from repro.isa.program import Program
from repro.pipeline.iq import OccupantKind
from repro.util.bitops import flip_bit

# Re-export for convenience in examples/tests.
StrikeSampler = None  # set below to avoid a circular definition


@dataclass(frozen=True)
class StrikeVerdict:
    """Full diagnosis of one strike."""

    outcome: FaultOutcome
    #: Architectural effect of the corruption, ignoring detection:
    #: one of "none", "sdc", "trap", "hang", "not_executed".
    architectural_effect: str
    #: True when the tracker suppressed an error that was actually harmful
    #: (a known artifact of trace-based π tracking; see DESIGN.md).
    tracker_miss: bool = False


def corrupt_instruction(instruction, bit: int):
    """Flip one bit of an instruction's 41-bit encoding and re-decode."""
    return encoding.decode(flip_bit(instruction.encode(), bit))


def corrupt_burst(instruction, mask: int):
    """Flip every set bit of ``mask`` in the encoding and re-decode."""
    if mask <= 0:
        raise ValueError("burst mask must have at least one set bit")
    return encoding.decode(instruction.encode() ^ mask)


def architectural_effect(
    program: Program,
    baseline: ExecutionResult,
    seq: int,
    bit: int,
    limits: Optional[ExecutionLimits] = None,
) -> str:
    """Re-execute with instruction ``seq`` corrupted; compare behaviour.

    This is the seed slow path, kept as the oracle's ground truth: every
    call re-executes, with no memoization and no static filtering.
    """
    original = baseline.trace[seq].instruction
    corrupted = corrupt_instruction(original, bit)
    if corrupted == original:
        raise AssertionError("bit flip must change the instruction")
    limits = limits or ExecutionLimits(
        max_instructions=max(10_000, 3 * len(baseline.trace)))
    rerun = FunctionalSimulator(program, limits).run(
        record_trace=False, override_seq=seq, override_instruction=corrupted)
    if rerun.status is ExecutionStatus.LIMIT:
        return "hang"
    if rerun.status in (ExecutionStatus.TRAP_ILLEGAL,
                        ExecutionStatus.RET_UNDERFLOW):
        return "trap"
    if rerun.output_signature() == baseline.output_signature():
        return "none"
    return "sdc"


_EFFECT_TO_OUTCOME = {
    "sdc": FaultOutcome.SDC,
    "trap": FaultOutcome.TRAP,
    "hang": FaultOutcome.HANG,
}


class StrikeEvaluator:
    """Campaign-scoped strike classifier (Figure 1 semantics).

    Builds the per-campaign invariants exactly once — the π-bit tracker
    (stateless per fault, so one instance serves every trial), the
    execution limits, and the effect oracle — and classifies each strike
    via :meth:`evaluate`. Tallies are bit-identical to calling the
    one-shot :func:`evaluate_strike` per trial; only wall-clock differs.
    """

    def __init__(
        self,
        program: Program,
        baseline: ExecutionResult,
        parity: bool = False,
        tracking: TrackingLevel = TrackingLevel.PARITY_ONLY,
        pet_entries: int = DEFAULT_PET_ENTRIES,
        ecc: bool = False,
        oracle: Optional[EffectOracle] = None,
        static_filter: bool = True,
        scheme: Optional[EccScheme] = None,
    ) -> None:
        if scheme is not None and (parity or ecc):
            raise ValueError(
                "the scheme lattice replaces the legacy parity/ecc flags")
        self.program = program
        self.baseline = baseline
        self.parity = parity
        self.tracking = tracking
        self.ecc = ecc
        self.scheme = scheme
        self.oracle = oracle if oracle is not None else EffectOracle(
            program, baseline, static_filter=static_filter)
        #: One tracker for the whole campaign: it is stateless per fault
        #: (and memoizes decisions per strike point), so constructing it
        #: per trial was pure overhead. Any lattice scheme can flag a
        #: detected-uncorrectable error, so schemes carry one too.
        self.tracker = (PiBitTracker(baseline.trace, tracking, pet_entries)
                        if parity or scheme is not None else None)
        #: MBU/ECC accounting, mirrored into runtime telemetry by the
        #: campaign shards. The batched classifier ticks these same
        #: counters from its vector tallies, so the two paths stay
        #: comparable entry for entry.
        self.burst_stats: Dict[str, int] = {
            "mbu_multi_bit": 0,
            "ecc_corrected": 0,
            "ecc_detected": 0,
            "ecc_escaped": 0,
        }

    def burst_counters(self) -> Dict[str, int]:
        return dict(self.burst_stats)

    def evaluate(self, strike: Strike) -> StrikeVerdict:
        """Classify one strike per Figure 1.

        Without protection the structure is unprotected: outcomes are
        benign, SDC, trap, or hang. With ``parity`` the error is detected
        when the entry is read, and ``tracking`` decides whether it is
        signalled. With ``ecc`` (single-bit correction) every read strike
        is repaired in place — Figure 1's outcome 3 ("fault corrected;
        no error").
        """
        interval = strike.interval
        if strike.mask:
            self.burst_stats["mbu_multi_bit"] += 1
        if interval is None:
            return StrikeVerdict(FaultOutcome.BENIGN_UNREAD, "not_executed")
        if not interval.issued or strike.cycle >= interval.issue_cycle:
            # Struck after the last read (Ex-ACE) or never read at all
            # (squash victim, never-issued wrong path): nobody consumes
            # the bit.
            return StrikeVerdict(FaultOutcome.BENIGN_UNREAD, "not_executed")
        if self.scheme is not None:
            return self._evaluate_scheme(strike, interval)
        if self.ecc:
            # SECDED corrects the single-bit fault at read time.
            return StrikeVerdict(FaultOutcome.CORRECTED, "none")
        if interval.kind is not OccupantKind.COMMITTED:
            # Wrong-path occupant read before the squash: it executes but
            # its results never commit. With parity this is the canonical
            # false DUE; a π bit carried to commit suppresses it.
            if not self.parity:
                return StrikeVerdict(FaultOutcome.BENIGN_UNACE,
                                     "not_executed")
            if self.tracking >= TrackingLevel.PI_COMMIT:
                return StrikeVerdict(FaultOutcome.BENIGN_UNACE,
                                     "not_executed")
            return StrikeVerdict(FaultOutcome.FALSE_DUE, "not_executed")

        # Single-bit strikes take the seed-era oracle path; bursts go
        # through the mask oracle (identical for power-of-two masks).
        if strike.mask:
            effect = self.oracle.effect_mask(interval.seq, strike.burst_mask)
        else:
            effect = self.oracle.effect(interval.seq, strike.bit)
        if not self.parity:
            if effect == "none":
                return StrikeVerdict(FaultOutcome.BENIGN_UNACE, effect)
            return StrikeVerdict(_EFFECT_TO_OUTCOME[effect], effect)

        decision = self.tracker.process_fault(
            interval.seq, representative_bit(strike.burst_mask))
        if decision.signaled:
            if effect == "none":
                return StrikeVerdict(FaultOutcome.FALSE_DUE, effect)
            return StrikeVerdict(FaultOutcome.TRUE_DUE, effect)
        if effect == "none":
            return StrikeVerdict(FaultOutcome.BENIGN_UNACE, effect)
        # The tracker let a harmful corruption through: an artifact of
        # replaying π propagation over the uncorrupted trace (e.g. a
        # flipped destination specifier on a dead instruction clobbers a
        # live register the baseline never wrote). Real hardware poisons
        # the *corrupted* destination and stays sound.
        return StrikeVerdict(_EFFECT_TO_OUTCOME[effect], effect,
                             tracker_miss=True)

    def _evaluate_scheme(self, strike: Strike, interval) -> StrikeVerdict:
        """Classify a read strike under an :class:`EccScheme` decoder.

        The decoder acts at read time on the raw error pattern:
        ``CORRECT`` repairs in place (Figure 1's outcome 3), ``DETECT``
        behaves exactly like the parity machinery (signalled unless the
        tracker proves the occupant dead), and ``ESCAPE`` consumes the
        corruption silently, like an unprotected read.
        """
        burst = strike.burst_mask
        action = classify_burst(self.scheme, burst)
        if action is BurstAction.CORRECT:
            self.burst_stats["ecc_corrected"] += 1
            return StrikeVerdict(FaultOutcome.CORRECTED, "none")
        if action is BurstAction.DETECT:
            self.burst_stats["ecc_detected"] += 1
            if interval.kind is not OccupantKind.COMMITTED:
                if self.tracking >= TrackingLevel.PI_COMMIT:
                    return StrikeVerdict(FaultOutcome.BENIGN_UNACE,
                                         "not_executed")
                return StrikeVerdict(FaultOutcome.FALSE_DUE, "not_executed")
            effect = self.oracle.effect_mask(interval.seq, burst)
            decision = self.tracker.process_fault(
                interval.seq, representative_bit(burst))
            if decision.signaled:
                if effect == "none":
                    return StrikeVerdict(FaultOutcome.FALSE_DUE, effect)
                return StrikeVerdict(FaultOutcome.TRUE_DUE, effect)
            if effect == "none":
                return StrikeVerdict(FaultOutcome.BENIGN_UNACE, effect)
            return StrikeVerdict(_EFFECT_TO_OUTCOME[effect], effect,
                                 tracker_miss=True)
        # ESCAPE: aliased past the decoder — unprotected semantics.
        self.burst_stats["ecc_escaped"] += 1
        if interval.kind is not OccupantKind.COMMITTED:
            return StrikeVerdict(FaultOutcome.BENIGN_UNACE, "not_executed")
        effect = self.oracle.effect_mask(interval.seq, burst)
        if effect == "none":
            return StrikeVerdict(FaultOutcome.BENIGN_UNACE, effect)
        return StrikeVerdict(_EFFECT_TO_OUTCOME[effect], effect)


def evaluate_strike(
    strike: Strike,
    program: Program,
    baseline: ExecutionResult,
    parity: bool = False,
    tracking: TrackingLevel = TrackingLevel.PARITY_ONLY,
    pet_entries: int = DEFAULT_PET_ENTRIES,
    ecc: bool = False,
) -> StrikeVerdict:
    """One-shot strike classification (the seed-era entry point).

    Builds a throwaway :class:`StrikeEvaluator` with the static filter
    off, so each call costs exactly what it did before the fast path
    existed — campaigns should hold a shared evaluator instead.
    """
    return StrikeEvaluator(
        program, baseline, parity=parity, tracking=tracking,
        pet_entries=pet_entries, ecc=ecc, static_filter=False,
    ).evaluate(strike)


# Re-export the sampler under its public name.
from repro.faults.model import StrikeModel as StrikeSampler  # noqa: E402
