"""Single-bit fault injection (validation of the ACE-analysis AVFs).

The paper computes AVFs analytically (ACE analysis over a performance
model); related work (Kim & Somani, Wang et al.) estimates them by
statistical fault injection. This package provides the injection side for
our substrate: strikes are sampled uniformly over the instruction queue's
(entry x cycle x bit) space, the struck in-flight instruction is corrupted
by flipping one encoding bit, and the program is functionally re-executed
to observe the architectural outcome — silent corruption, trap, hang, or
nothing. With parity enabled, the π-bit engine decides whether the
detected error is signalled (true/false DUE) under a tracking level.
"""

from repro.faults.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.faults.injector import StrikeEvaluator, StrikeSampler, evaluate_strike
from repro.faults.model import Strike
from repro.faults.oracle import EffectOracle

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "run_campaign",
    "EffectOracle",
    "StrikeEvaluator",
    "StrikeSampler",
    "evaluate_strike",
    "Strike",
]
