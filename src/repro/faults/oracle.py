"""The effect oracle: memoized + statically pre-filtered strike evaluation.

``architectural_effect`` re-executes the whole program per strike, but the
answer depends only on ``(program, seq, bit)`` — a finite space that
Monte-Carlo campaigns and tracking-level ablations hit repeatedly. The
:class:`EffectOracle` removes that redundancy on three levels:

1. **In-process memo**: every computed ``(seq, bit) -> effect`` is kept,
   so a campaign pays for each distinct strike point once, not once per
   trial, and ablations over tracking levels (which share the strike
   space) pay nothing at all.
2. **Static pre-filter**: many flips are provably inert from the decoded
   encoding and the baseline's dataflow alone — no re-execution needed.
   The classification rules (each carries a soundness argument below and
   a brute-force equivalence proof in ``tests/test_oracle.py``):

   * **Non-live field** — the flipped bit lies in a field the struck
     opcode does not architecturally interpret (``encoding.live_fields``:
     e.g. R3 of a load, R1 of a branch, anything but the opcode of a
     no-op). The executor never reads the field, so the corrupted run is
     instruction-for-instruction identical.
   * **Predicated-false op** — the baseline nullified the instruction
     (``executed=False``) and the flip is outside the QP and OPCODE
     fields. The qualifying predicate and opcode are unchanged, so the
     corrupted instruction is nullified too and writes nothing. (QP
     flips could un-nullify it; OPCODE flips could produce HALT/ILLEGAL,
     which act before predication — both re-execute.)
   * **Dead destination value** — the instruction's dynamic class per
     :mod:`repro.analysis.deadcode` is first-level dead (``FDD_REG`` /
     ``FDD_REG_RETURN``: its result was never read before being
     overwritten or before program end), and the flip lies in a live
     *source or immediate* field (R2/R3/IMM7). The corruption can only
     change the value written to the same dead destination: execution is
     identical up to ``seq``, the differing value is never read before
     its overwrite kills the difference, and observable output excludes
     the register file. Flips of the R1 destination specifier are
     excluded — they retarget the write and can clobber live state — as
     are transitively-dead classes, stores, and anything live.

3. **Cross-process persistence**: the memo table rides the runtime's
   content-addressed :class:`~repro.runtime.cache.ResultCache` under a
   key covering the program bytes and code version, so warm campaigns
   skip re-execution across worker processes and across runs.

The static filter is semantics-preserving by construction; the
``--no-static-filter`` escape hatch exists to *measure* it (and to
reproduce seed-era wall-clock numbers), not because results differ.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.deadcode import DynClass, analyze_deadness
from repro.arch.executor import ExecutionLimits, FunctionalSimulator
from repro.arch.result import ExecutionResult, ExecutionStatus
from repro.isa.encoding import ENCODING_BITS, Field, field_at_bit, live_fields
from repro.isa.program import Program

#: Architectural effects the oracle may return.
EFFECTS = ("none", "sdc", "trap", "hang")

#: Dynamic classes whose destination value is provably unread: a changed
#: value written to the same destination cannot reach observable output.
_DEAD_DEST_CLASSES = (DynClass.FDD_REG, DynClass.FDD_REG_RETURN)

#: Fields whose flip only perturbs the *value* an instruction computes,
#: never which architectural location it writes or whether it executes.
_VALUE_FIELDS = (Field.R2, Field.R3, Field.IMM7)

#: Namespace for multi-bit memo keys: a burst of mask ``m`` on ``seq``
#: is keyed as ``(seq, _MASK_KEY_BASE | m)``. Single-bit keys use the
#: bit index (0..40) and ``_MASK_KEY_BASE`` exceeds any 41-bit mask, so
#: the two key families can never collide, and both survive
#: :func:`validate_table`'s (int, int) shape check.
_MASK_KEY_BASE = 1 << ENCODING_BITS


def default_limits(baseline: ExecutionResult) -> ExecutionLimits:
    """The execution budget ``architectural_effect`` has always used."""
    return ExecutionLimits(
        max_instructions=max(10_000, 3 * len(baseline.trace)))


class EffectOracle:
    """Per-program memo of ``(seq, bit) -> architectural effect``.

    One instance is scoped to a ``(program, baseline)`` pair — typically
    one campaign — and answers :meth:`effect` by memo lookup, then static
    classification, then (only when both fail) re-execution. Entries
    loaded via :meth:`preload` (from the persistent cache) are served
    without re-executing; entries computed locally are retrievable via
    :meth:`new_entries` for merging back into the cache.
    """

    def __init__(
        self,
        program: Program,
        baseline: ExecutionResult,
        static_filter: bool = True,
        limits: Optional[ExecutionLimits] = None,
    ) -> None:
        self.program = program
        self.baseline = baseline
        self.static_filter = static_filter
        self.limits = limits or default_limits(baseline)
        #: Computed once and shared by every re-execution comparison.
        self._baseline_signature = baseline.output_signature()
        self._deadness = None  # lazy: only the dead-dest rule needs it
        self._table: Dict[Tuple[int, int], str] = {}
        self._new: Dict[Tuple[int, int], str] = {}
        # Counters (mirrored into runtime telemetry by the campaign):
        self.memo_hits = 0
        self.static_kills = 0
        self.executions = 0

    # -- persistence hooks -------------------------------------------------

    def preload(self, table: Dict[Tuple[int, int], str]) -> int:
        """Seed the memo from a persisted table; returns entries loaded."""
        loaded = 0
        for key, effect in table.items():
            if key not in self._table:
                self._table[key] = effect
                loaded += 1
        return loaded

    def new_entries(self) -> Dict[Tuple[int, int], str]:
        """Entries computed by *this* oracle (preloaded ones excluded)."""
        return dict(self._new)

    def is_memoized(self, seq: int, bit: int) -> bool:
        """Whether ``effect(seq, bit)`` would be served from the memo.

        Lets the batched classifier skip building static-verdict tables
        for strikes a warmed oracle will answer anyway; does not count
        as a memo hit.
        """
        return (seq, bit) in self._table

    def counters(self) -> Dict[str, int]:
        return {
            "oracle_memo_hits": self.memo_hits,
            "oracle_static_kills": self.static_kills,
            "oracle_executions": self.executions,
        }

    # -- the oracle itself -------------------------------------------------

    def effect(self, seq: int, bit: int) -> str:
        """Architectural effect of flipping ``bit`` of instruction ``seq``."""
        key = (seq, bit)
        cached = self._table.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if self.static_filter and self.classify_static(seq, bit) is not None:
            self.static_kills += 1
            effect = "none"
        else:
            self.executions += 1
            effect = self._execute(seq, bit)
        self._table[key] = effect
        self._new[key] = effect
        return effect

    def effect_from_hint(self, seq: int, bit: int, inert_hint: bool) -> str:
        """:meth:`effect` with the static verdict supplied by the caller.

        The batched classifier (:mod:`repro.faults.batch`) precomputes
        every static verdict as a bit matrix, so re-deriving it per
        strike would waste the batching; ``inert_hint`` must equal
        ``classify_static(seq, bit) is not None`` (the equivalence is
        proven exhaustively in ``tests/test_strike_batching.py``).
        Memoization, counter accounting, and the ``static_filter`` gate
        behave exactly as in :meth:`effect`.
        """
        key = (seq, bit)
        cached = self._table.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if self.static_filter and inert_hint:
            self.static_kills += 1
            effect = "none"
        else:
            self.executions += 1
            effect = self._execute(seq, bit)
        self._table[key] = effect
        self._new[key] = effect
        return effect

    def classify_static(self, seq: int, bit: int) -> Optional[str]:
        """Provably-inert classification, or None when execution is needed.

        Returns the *reason* string when the flip is inert (the effect is
        always ``"none"``); callers that only need the verdict can treat
        any non-None return as "none".
        """
        op = self.baseline.trace[seq]
        field = field_at_bit(bit)
        opcode = op.instruction.opcode
        if field not in live_fields(opcode):
            return "non-live field"
        if not op.executed:
            if field is not Field.QP and field is not Field.OPCODE:
                return "predicated-false, non-qp/opcode flip"
            return None
        if field in _VALUE_FIELDS and not op.is_store:
            if self.deadness.class_of(seq) in _DEAD_DEST_CLASSES:
                return "dead destination value"
        return None

    # -- multi-bit bursts --------------------------------------------------

    def effect_mask(self, seq: int, mask: int) -> str:
        """Architectural effect of flipping every bit of ``mask`` at ``seq``.

        Single-bit masks route through :meth:`effect` so MBU campaigns
        share (and extend) the same memo and persisted table as
        single-bit campaigns — the 41 per-seq singles dominate every
        preset's PMF.
        """
        if mask <= 0:
            raise ValueError("burst mask must have at least one set bit")
        if mask & (mask - 1) == 0:
            return self.effect(seq, mask.bit_length() - 1)
        key = (seq, _MASK_KEY_BASE | mask)
        cached = self._table.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if (self.static_filter
                and self.classify_static_mask(seq, mask) is not None):
            self.static_kills += 1
            effect = "none"
        else:
            self.executions += 1
            effect = self._execute_mask(seq, mask)
        self._table[key] = effect
        self._new[key] = effect
        return effect

    def effect_mask_from_hint(self, seq: int, mask: int,
                              inert_hint: bool) -> str:
        """:meth:`effect_mask` with the static verdict supplied by the caller.

        ``inert_hint`` must equal ``classify_static_mask(seq, mask) is
        not None`` — which, because the static rules compose per bit, is
        exactly "``mask`` is a subset of the batched kill mask"; the
        equivalence is pinned in ``tests/test_mbu.py``.
        """
        if mask <= 0:
            raise ValueError("burst mask must have at least one set bit")
        if mask & (mask - 1) == 0:
            return self.effect_from_hint(seq, mask.bit_length() - 1,
                                         inert_hint)
        key = (seq, _MASK_KEY_BASE | mask)
        cached = self._table.get(key)
        if cached is not None:
            self.memo_hits += 1
            return cached
        if self.static_filter and inert_hint:
            self.static_kills += 1
            effect = "none"
        else:
            self.executions += 1
            effect = self._execute_mask(seq, mask)
        self._table[key] = effect
        self._new[key] = effect
        return effect

    def is_memoized_mask(self, seq: int, mask: int) -> bool:
        """Whether :meth:`effect_mask` would be served from the memo."""
        if mask <= 0:
            raise ValueError("burst mask must have at least one set bit")
        if mask & (mask - 1) == 0:
            return self.is_memoized(seq, mask.bit_length() - 1)
        return (seq, _MASK_KEY_BASE | mask) in self._table

    def classify_static_mask(self, seq: int, mask: int) -> Optional[str]:
        """Provably-inert classification of a whole burst, or None.

        A burst is inert when **every** set bit is individually inert.
        The conjunction is sound because each rule's argument is
        field-level, not bit-level: rule 1 bits all lie in fields the
        executor never reads for this opcode (and ``OPCODE`` is live for
        every opcode, so the decoded opcode — hence the liveness
        judgment itself — is unchanged by the burst); rule 2 bits all
        lie outside QP/OPCODE on a nullified instruction, so the
        corrupted instruction is nullified too and writes nothing; rule
        3 bits all lie in value-source fields of a first-level-dead
        instruction, so the combined flip still only perturbs the value
        written to the same never-read destination. Mixing rules across
        bits composes for the same reason each rule tolerates any flip
        *within* its field set. The brute-force multi-bit sweep in
        ``tests/test_mbu.py`` pins this against re-execution.
        """
        reasons = []
        remaining = mask
        if remaining <= 0:
            raise ValueError("burst mask must have at least one set bit")
        while remaining:
            bit = (remaining & -remaining).bit_length() - 1
            reason = self.classify_static(seq, bit)
            if reason is None:
                return None
            reasons.append(reason)
            remaining &= remaining - 1
        if len(reasons) == 1:
            return reasons[0]
        return "burst: " + " + ".join(sorted(set(reasons)))

    def _execute_mask(self, seq: int, mask: int) -> str:
        """Slow path for bursts: re-execute with every mask bit flipped."""
        from repro.faults.injector import corrupt_burst

        original = self.baseline.trace[seq].instruction
        corrupted = corrupt_burst(original, mask)
        if corrupted == original:
            raise AssertionError("burst flip must change the instruction")
        rerun = FunctionalSimulator(self.program, self.limits).run(
            record_trace=False, override_seq=seq,
            override_instruction=corrupted)
        if rerun.status is ExecutionStatus.LIMIT:
            return "hang"
        if rerun.status in (ExecutionStatus.TRAP_ILLEGAL,
                            ExecutionStatus.RET_UNDERFLOW):
            return "trap"
        if rerun.output_signature() == self._baseline_signature:
            return "none"
        return "sdc"

    @property
    def deadness(self):
        if self._deadness is None:
            self._deadness = analyze_deadness(self.baseline)
        return self._deadness

    def _execute(self, seq: int, bit: int) -> str:
        """The slow path: re-execute with the corrupted instruction."""
        # Local import: injector imports this module at definition time.
        from repro.faults.injector import corrupt_instruction

        original = self.baseline.trace[seq].instruction
        corrupted = corrupt_instruction(original, bit)
        if corrupted == original:
            raise AssertionError("bit flip must change the instruction")
        rerun = FunctionalSimulator(self.program, self.limits).run(
            record_trace=False, override_seq=seq,
            override_instruction=corrupted)
        if rerun.status is ExecutionStatus.LIMIT:
            return "hang"
        if rerun.status in (ExecutionStatus.TRAP_ILLEGAL,
                            ExecutionStatus.RET_UNDERFLOW):
            return "trap"
        if rerun.output_signature() == self._baseline_signature:
            return "none"
        return "sdc"


# ---------------------------------------------------------------------------
# Persistence through the content-addressed runtime cache
# ---------------------------------------------------------------------------

def oracle_cache_key(program: Program) -> str:
    """Cache key of a program's persisted effect table.

    The table depends only on the program (the baseline execution and
    the default limits are deterministic functions of it) and on the
    code version, which :func:`repro.runtime.cache.cache_key` includes.
    """
    from repro.runtime.cache import cache_key

    return cache_key("effect-oracle", program)


def validate_table(value: object) -> Optional[Dict[Tuple[int, int], str]]:
    """Return the table when structurally sound, else None."""
    if not isinstance(value, dict):
        return None
    for key, effect in value.items():
        if not (isinstance(key, tuple) and len(key) == 2
                and all(isinstance(part, int) for part in key)
                and effect in EFFECTS):
            return None
    return value


def load_persisted(cache, key: str) -> Dict[Tuple[int, int], str]:
    """Load a persisted effect table; malformed entries count as misses."""
    from repro.runtime.cache import MISS

    if cache is None:
        return {}
    value = cache.get(key)
    if value is MISS:
        return {}
    table = validate_table(value)
    if table is None:
        cache.errors += 1
        return {}
    return table


def persist(cache, key: str, new_entries: Dict[Tuple[int, int], str]) -> None:
    """Merge ``new_entries`` into the persisted table (union semantics).

    Re-reads the current table first so concurrent campaigns over the
    same program lose at most a race's worth of entries, never the whole
    table. Write failures are swallowed by the cache layer.
    """
    if cache is None or not new_entries:
        return
    merged = load_persisted(cache, key)
    merged.update(new_entries)
    cache.put(key, merged)
