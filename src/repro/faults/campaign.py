"""Monte-Carlo fault-injection campaigns."""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from math import sqrt
from typing import Dict, Optional, Tuple

from repro.arch.result import ExecutionResult
from repro.due.outcomes import FaultOutcome
from repro.due.tracking import DEFAULT_PET_ENTRIES, TrackingLevel
from repro.faults.injector import evaluate_strike
from repro.faults.model import StrikeModel
from repro.isa.program import Program
from repro.pipeline.result import PipelineResult
from repro.runtime.cache import MISS, cache_key
from repro.runtime.context import get_runtime
from repro.util.rng import DeterministicRng, derive_seed


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one injection campaign."""

    trials: int = 500
    seed: int = 2004
    parity: bool = False
    tracking: TrackingLevel = TrackingLevel.PARITY_ONLY
    pet_entries: int = DEFAULT_PET_ENTRIES
    #: Single-bit error correction (SECDED): strikes are repaired at read.
    ecc: bool = False

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.pet_entries <= 0:
            raise ValueError("pet_entries must be positive")
        if self.ecc and self.parity:
            raise ValueError("choose parity (detection) or ecc (correction)")


@dataclass
class CampaignResult:
    """Outcome histogram plus derived rate estimates."""

    config: CampaignConfig
    counts: Counter = field(default_factory=Counter)
    tracker_misses: int = 0

    @property
    def trials(self) -> int:
        return sum(self.counts.values())

    def rate(self, *outcomes: FaultOutcome) -> float:
        """Fraction of strikes landing in the given outcome classes."""
        if self.trials == 0:
            return 0.0
        return sum(self.counts[o] for o in outcomes) / self.trials

    def rate_confidence(self, *outcomes: FaultOutcome, z: float = 1.96) -> float:
        """Binomial-normal half-width for :meth:`rate`."""
        p = self.rate(*outcomes)
        n = self.trials
        if n == 0:
            return float("inf")
        return z * sqrt(max(p * (1.0 - p), 0.0) / n)

    @property
    def sdc_avf_estimate(self) -> float:
        """Injection-based SDC AVF: strikes whose corruption reached output.

        Traps and hangs are included — a strike that crashes the program
        has certainly affected architecturally correct execution (the
        paper's ACE analysis counts them the same way).
        """
        return self.rate(FaultOutcome.SDC, FaultOutcome.TRAP,
                         FaultOutcome.HANG)

    @property
    def due_avf_estimate(self) -> float:
        """Injection-based DUE AVF (parity campaigns only)."""
        return self.rate(FaultOutcome.TRUE_DUE, FaultOutcome.FALSE_DUE)

    @property
    def false_due_estimate(self) -> float:
        return self.rate(FaultOutcome.FALSE_DUE)

    def summary(self) -> Dict[str, float]:
        return {o.value: self.counts[o] / max(1, self.trials)
                for o in FaultOutcome if self.counts[o]}


def trial_seed(config: CampaignConfig, program_name: str, index: int) -> int:
    """Seed of trial ``index``'s private RNG stream.

    Each trial draws from its own :func:`derive_seed` stream, so a
    trial's strike depends only on its index — never on how many trials
    ran before it in the same process. That is the determinism contract
    the parallel engine relies on: any sharding of the index space
    reproduces the serial campaign bit-for-bit. ``ecc`` is deliberately
    excluded so ECC and unprotected campaigns with the same seed see the
    identical strike sequence (the tests compare them directly).
    """
    return derive_seed(config.seed, "campaign", program_name,
                       config.parity, int(config.tracking), "trial", index)


def run_trial_block(
    program: Program,
    baseline: ExecutionResult,
    pipeline_result: PipelineResult,
    config: CampaignConfig,
    start: int,
    stop: int,
) -> Tuple[Counter, int]:
    """Classify trials ``[start, stop)``; returns (counts, tracker misses)."""
    sampler = StrikeModel(pipeline_result)
    counts: Counter = Counter()
    tracker_misses = 0
    for index in range(start, stop):
        rng = DeterministicRng(trial_seed(config, program.name, index))
        strike = sampler.sample(rng)
        verdict = evaluate_strike(
            strike, program, baseline,
            parity=config.parity,
            tracking=config.tracking,
            pet_entries=config.pet_entries,
            ecc=config.ecc,
        )
        counts[verdict.outcome] += 1
        if verdict.tracker_miss:
            tracker_misses += 1
    return counts, tracker_misses


def run_campaign(
    program: Program,
    baseline: ExecutionResult,
    pipeline_result: PipelineResult,
    config: Optional[CampaignConfig] = None,
    jobs: Optional[int] = None,
) -> CampaignResult:
    """Inject ``config.trials`` uniform strikes and classify each outcome.

    ``jobs`` defaults to the active runtime context's worker count; with
    more than one worker the trial index space is sharded across
    processes, producing tallies bit-identical to the serial path. When
    the context carries a persistent cache, the full tally is stored
    under a key covering the program bytes, the pipeline result, and the
    campaign config — a warm re-run injects nothing.
    """
    config = config or CampaignConfig()
    runtime = get_runtime()
    telemetry = runtime.telemetry
    effective_jobs = runtime.jobs if jobs is None else jobs

    disk_key = None
    if runtime.cache is not None:
        disk_key = cache_key("campaign", program, pipeline_result, config)
        cached = runtime.cache.get(disk_key)
        if cached is not MISS:
            counts, tracker_misses = cached
            return CampaignResult(config=config, counts=Counter(counts),
                                  tracker_misses=tracker_misses)

    began = time.perf_counter()
    if effective_jobs > 1 and config.trials > 1:
        from repro.runtime.engine import run_campaign_parallel

        counts, tracker_misses = run_campaign_parallel(
            program, baseline, pipeline_result, config, effective_jobs,
            telemetry=telemetry)
    else:
        counts, tracker_misses = run_trial_block(
            program, baseline, pipeline_result, config, 0, config.trials)
    telemetry.increment("campaign_trials", config.trials)
    telemetry.add_time("campaign", time.perf_counter() - began)

    if disk_key is not None:
        runtime.cache.put(disk_key, (dict(counts), tracker_misses))
    return CampaignResult(config=config, counts=counts,
                          tracker_misses=tracker_misses)
