"""Monte-Carlo fault-injection campaigns."""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from math import sqrt
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.arch.result import ExecutionResult
from repro.due.outcomes import FaultOutcome
from repro.due.tracking import DEFAULT_PET_ENTRIES, EccScheme, TrackingLevel
from repro.faults.injector import StrikeEvaluator
from repro.faults.mbu import extend_strike, get_preset
from repro.faults.model import StrikeModel
from repro.faults.oracle import oracle_cache_key, persist
from repro.isa.program import Program
from repro.pipeline.result import PipelineResult
from repro.runtime.cache import MISS, cache_key
from repro.runtime.chaos import ChaosInjector
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.context import get_runtime
from repro.runtime.resilience import (
    CampaignInterrupted,
    CompletenessReport,
    RuntimeFault,
    TrialCrash,
    execute_campaign,
)
from repro.util.rng import DeterministicRng, derive_seed


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one injection campaign."""

    trials: int = 500
    seed: int = 2004
    parity: bool = False
    tracking: TrackingLevel = TrackingLevel.PARITY_ONLY
    pet_entries: int = DEFAULT_PET_ENTRIES
    #: Single-bit error correction (SECDED): strikes are repaired at read.
    ecc: bool = False
    #: Multi-bit upset severity preset name (see ``repro.faults.mbu``);
    #: None keeps the classic single-bit fault model.
    mbu_preset: Optional[str] = None
    #: Protection scheme from the ECC lattice (``repro.due.tracking``);
    #: replaces the legacy ``parity``/``ecc`` booleans when set.
    scheme: Optional[EccScheme] = None

    #: Fields omitted from content-addressed cache keys while None, so
    #: every pre-MBU campaign keeps its byte-identical key (see
    #: ``repro.runtime.cache``).
    _CACHE_OPTIONAL_FIELDS = ("mbu_preset", "scheme")

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.pet_entries <= 0:
            raise ValueError("pet_entries must be positive")
        if self.ecc and self.parity:
            raise ValueError("choose parity (detection) or ecc (correction)")
        if self.scheme is not None and (self.parity or self.ecc):
            raise ValueError(
                "the scheme lattice replaces the legacy parity/ecc flags")
        if self.mbu_preset is not None:
            get_preset(self.mbu_preset)  # validates the name
            if self.scheme is None and (self.parity or self.ecc):
                raise ValueError(
                    "multi-bit campaigns need a lattice scheme (or no "
                    "protection at all); parity/ecc are single-bit only")


@dataclass
class CampaignResult:
    """Outcome histogram plus derived rate estimates.

    ``completeness`` is populated by supervised runs; a degraded campaign
    (quarantined trials) keeps its tallies sound — rates and confidence
    intervals are computed over the trials that actually succeeded, so
    intervals widen rather than results silently skewing.
    """

    config: CampaignConfig
    counts: Counter = field(default_factory=Counter)
    tracker_misses: int = 0
    completeness: Optional[CompletenessReport] = None

    @property
    def trials(self) -> int:
        return sum(self.counts.values())

    def rate(self, *outcomes: FaultOutcome) -> float:
        """Fraction of strikes landing in the given outcome classes."""
        if self.trials == 0:
            return 0.0
        return sum(self.counts[o] for o in outcomes) / self.trials

    def rate_confidence(self, *outcomes: FaultOutcome, z: float = 1.96) -> float:
        """Binomial-normal half-width for :meth:`rate`."""
        p = self.rate(*outcomes)
        n = self.trials
        if n == 0:
            return float("inf")
        return z * sqrt(max(p * (1.0 - p), 0.0) / n)

    @property
    def sdc_avf_estimate(self) -> float:
        """Injection-based SDC AVF: strikes whose corruption reached output.

        Traps and hangs are included — a strike that crashes the program
        has certainly affected architecturally correct execution (the
        paper's ACE analysis counts them the same way).
        """
        return self.rate(FaultOutcome.SDC, FaultOutcome.TRAP,
                         FaultOutcome.HANG)

    @property
    def due_avf_estimate(self) -> float:
        """Injection-based DUE AVF (parity campaigns only)."""
        return self.rate(FaultOutcome.TRUE_DUE, FaultOutcome.FALSE_DUE)

    @property
    def false_due_estimate(self) -> float:
        return self.rate(FaultOutcome.FALSE_DUE)

    @property
    def corrected_estimate(self) -> float:
        """Fraction of strikes the protection scheme repaired in place."""
        return self.rate(FaultOutcome.CORRECTED)

    @property
    def residual_uncorrectable_estimate(self) -> float:
        """Everything the scheme failed to neutralise: SDC + DUE rates.

        The design-space sweep ranks ECC schemes on this — the fraction
        of strikes still visible as an error after correction, whether
        silent (escape reached output) or detected-uncorrectable.
        """
        return self.sdc_avf_estimate + self.due_avf_estimate

    def summary(self) -> Dict[str, float]:
        return {o.value: self.counts[o] / max(1, self.trials)
                for o in FaultOutcome if self.counts[o]}


def trial_seed(config: CampaignConfig, program_name: str, index: int) -> int:
    """Seed of trial ``index``'s private RNG stream.

    Each trial draws from its own :func:`derive_seed` stream, so a
    trial's strike depends only on its index — never on how many trials
    ran before it in the same process. That is the determinism contract
    the parallel engine relies on: any sharding of the index space
    reproduces the serial campaign bit-for-bit. ``ecc`` is deliberately
    excluded so ECC and unprotected campaigns with the same seed see the
    identical strike sequence (the tests compare them directly).
    """
    return derive_seed(config.seed, "campaign", program_name,
                       config.parity, int(config.tracking), "trial", index)


def run_trial_block(
    program: Program,
    baseline: ExecutionResult,
    pipeline_result: PipelineResult,
    config: CampaignConfig,
    start: int,
    stop: int,
    on_trial: Optional[Callable[[int], None]] = None,
    evaluator: Optional[StrikeEvaluator] = None,
    strikes=None,
    classifier=None,
) -> Tuple[Counter, int]:
    """Classify trials ``[start, stop)``; returns (counts, tracker misses).

    ``on_trial`` (the chaos harness's hook) runs before each trial;
    exceptions from the hook or the trial itself are re-raised as
    :class:`TrialCrash` carrying the trial index, so the supervisor can
    retry or quarantine at the right granularity. ``KeyboardInterrupt``
    passes through untouched.

    ``evaluator`` lets the caller supply a campaign-scoped
    :class:`StrikeEvaluator` (shared tracker + warm effect oracle);
    omitted, a fresh one is built for the block. Either way the tallies
    are identical — only the amount of re-execution differs.

    ``strikes`` (a :class:`~repro.faults.batch.StrikeBatch` covering at
    least ``[start, stop)``) routes the block through the vectorised
    classifier instead of the per-trial loop; ``classifier`` optionally
    supplies the campaign-scoped
    :class:`~repro.faults.batch.BatchClassifier` so blocks share its
    precomputed masks. Tallies and oracle accounting are bit-identical
    either way — batching is purely a wall-clock optimisation.
    """
    if evaluator is None:
        evaluator = StrikeEvaluator(
            program, baseline,
            parity=config.parity,
            tracking=config.tracking,
            pet_entries=config.pet_entries,
            ecc=config.ecc,
            scheme=config.scheme,
            static_filter=get_runtime().static_filter,
        )
    if strikes is not None:
        return _run_block_batched(pipeline_result, start, stop, on_trial,
                                  evaluator, strikes, classifier)
    sampler = StrikeModel(pipeline_result, label=program.name)
    preset = (get_preset(config.mbu_preset)
              if config.mbu_preset is not None else None)
    counts: Counter = Counter()
    tracker_misses = 0
    for index in range(start, stop):
        try:
            if on_trial is not None:
                on_trial(index)
            rng = DeterministicRng(trial_seed(config, program.name, index))
            strike = sampler.sample(rng)
            if preset is not None:
                strike = extend_strike(strike, rng, preset)
            verdict = evaluator.evaluate(strike)
        except RuntimeFault:
            raise
        except Exception as exc:
            raise TrialCrash(
                f"trial {index} raised {type(exc).__name__}: {exc}",
                trial_index=index) from exc
        counts[verdict.outcome] += 1
        if verdict.tracker_miss:
            tracker_misses += 1
    return counts, tracker_misses


def _run_block_batched(
    pipeline_result: PipelineResult,
    start: int,
    stop: int,
    on_trial: Optional[Callable[[int], None]],
    evaluator: StrikeEvaluator,
    strikes,
    classifier,
) -> Tuple[Counter, int]:
    """The batched body of :func:`run_trial_block`.

    Chaos hooks fire for every trial index up front — a hook exception
    discards the whole block exactly as in the scalar loop (tallies are
    only returned once the block completes, so partial work was never
    observable). Classification failures surface as :class:`TrialCrash`
    so the supervisor's retry/quarantine machinery, which then splits
    the block into single-trial batches, isolates the failing index.
    """
    from repro.faults.batch import BatchClassifier

    if on_trial is not None:
        for index in range(start, stop):
            try:
                on_trial(index)
            except RuntimeFault:
                raise
            except Exception as exc:
                raise TrialCrash(
                    f"trial {index} raised {type(exc).__name__}: {exc}",
                    trial_index=index) from exc
    if classifier is None:
        classifier = BatchClassifier(evaluator, pipeline_result)
    batch = strikes
    if (batch.start, batch.stop) != (start, stop):
        batch = batch.slice(start, stop)
    try:
        return classifier.classify(batch)
    except RuntimeFault:
        raise
    except Exception as exc:
        raise TrialCrash(
            f"batched block [{start}, {stop}) raised "
            f"{type(exc).__name__}: {exc}",
            trial_index=start if stop - start == 1 else None) from exc


def run_campaign(
    program: Program,
    baseline: ExecutionResult,
    pipeline_result: PipelineResult,
    config: Optional[CampaignConfig] = None,
    jobs: Optional[int] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: Optional[bool] = None,
) -> CampaignResult:
    """Inject ``config.trials`` uniform strikes and classify each outcome.

    ``jobs`` defaults to the active runtime context's worker count; with
    more than one worker the trial index space is sharded across
    supervised processes (retry/backoff, watchdog deadlines, quarantine —
    see :mod:`repro.runtime.resilience`), producing tallies bit-identical
    to the serial path. When the context carries a persistent cache, the
    full tally is stored under a key covering the program bytes, the
    pipeline result, and the campaign config — a warm re-run injects
    nothing.

    With a ``checkpoint_dir`` (argument or context), completed trial
    blocks are journalled as they finish; a ``KeyboardInterrupt`` or
    SIGTERM drains the pool cleanly, leaves the journal flushed, and
    raises :class:`CampaignInterrupted` instead of tracebacking. Passing
    ``resume=True`` merges the journal and runs only the remaining
    trials — the final tallies are bit-identical to an uninterrupted run
    because every trial draws from its own derived seed stream.
    """
    config = config or CampaignConfig()
    runtime = get_runtime()
    telemetry = runtime.telemetry
    effective_jobs = runtime.jobs if jobs is None else jobs
    chaos = runtime.chaos
    if checkpoint_dir is None:
        checkpoint_dir = runtime.checkpoint_dir
    if resume is None:
        resume = runtime.resume

    campaign_id = None
    if runtime.cache is not None or checkpoint_dir is not None:
        campaign_id = cache_key("campaign", program, pipeline_result, config)

    if runtime.cache is not None:
        cached = runtime.cache.get(campaign_id)
        if cached is not MISS:
            try:
                counts, tracker_misses = cached
                counts = Counter(counts)
            except (TypeError, ValueError):
                # Unpicklable-but-wrong-shape entry: fall through and
                # recompute; the fresh put below overwrites it.
                runtime.cache.errors += 1
            else:
                return CampaignResult(config=config, counts=counts,
                                      tracker_misses=tracker_misses)

    journal = None
    if checkpoint_dir is not None:
        journal = CheckpointJournal(checkpoint_dir, campaign_id,
                                    config.trials)
        if not resume:
            # A fresh (non-resume) run must not inherit stale coverage.
            journal.discard()

    began = time.perf_counter()
    try:
        counts, tracker_misses, completeness, oracle_new = execute_campaign(
            program, baseline, pipeline_result, config, effective_jobs,
            policy=runtime.policy, telemetry=telemetry, journal=journal,
            chaos=chaos, cache_dir=runtime.cache_dir,
            static_filter=runtime.static_filter,
            batch_strikes=runtime.batch_strikes)
    except CampaignInterrupted:
        # The pool is drained and the journal (if any) holds every
        # completed block; account for the time and hand the partial
        # campaign to the caller for a summary + resume.
        telemetry.add_time("campaign", time.perf_counter() - began)
        raise
    telemetry.increment("campaign_trials", completeness.trials_succeeded)
    telemetry.add_time("campaign", time.perf_counter() - began)
    if completeness.degraded:
        telemetry.increment("campaigns_degraded")

    if runtime.cache is not None and completeness.complete and oracle_new:
        persist(runtime.cache, oracle_cache_key(program), oracle_new)

    if runtime.cache is not None and completeness.complete:
        # Degraded tallies are never cached: a later run with a healthier
        # environment must be able to produce the full campaign.
        runtime.cache.put(campaign_id, (dict(counts), tracker_misses))
        if chaos is not None and chaos.enabled("corrupt-cache"):
            ChaosInjector(chaos).corrupt_file(
                runtime.cache.path_for(campaign_id),
                "cache", campaign_id[:12])
            telemetry.increment("chaos_corruptions")
    if (journal is not None and chaos is not None
            and chaos.enabled("corrupt-checkpoint")):
        ChaosInjector(chaos).corrupt_file(journal.path, "journal",
                                          campaign_id[:12])
        telemetry.increment("chaos_corruptions")
    return CampaignResult(config=config, counts=counts,
                          tracker_misses=tracker_misses,
                          completeness=completeness)
