"""Monte-Carlo fault-injection campaigns."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from math import sqrt
from typing import Dict, Optional

from repro.arch.result import ExecutionResult
from repro.due.outcomes import FaultOutcome
from repro.due.tracking import DEFAULT_PET_ENTRIES, TrackingLevel
from repro.faults.injector import evaluate_strike
from repro.faults.model import StrikeModel
from repro.isa.program import Program
from repro.pipeline.result import PipelineResult
from repro.util.rng import DeterministicRng, derive_seed


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one injection campaign."""

    trials: int = 500
    seed: int = 2004
    parity: bool = False
    tracking: TrackingLevel = TrackingLevel.PARITY_ONLY
    pet_entries: int = DEFAULT_PET_ENTRIES
    #: Single-bit error correction (SECDED): strikes are repaired at read.
    ecc: bool = False

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError("trials must be positive")
        if self.ecc and self.parity:
            raise ValueError("choose parity (detection) or ecc (correction)")


@dataclass
class CampaignResult:
    """Outcome histogram plus derived rate estimates."""

    config: CampaignConfig
    counts: Counter = field(default_factory=Counter)
    tracker_misses: int = 0

    @property
    def trials(self) -> int:
        return sum(self.counts.values())

    def rate(self, *outcomes: FaultOutcome) -> float:
        """Fraction of strikes landing in the given outcome classes."""
        if self.trials == 0:
            return 0.0
        return sum(self.counts[o] for o in outcomes) / self.trials

    def rate_confidence(self, *outcomes: FaultOutcome, z: float = 1.96) -> float:
        """Binomial-normal half-width for :meth:`rate`."""
        p = self.rate(*outcomes)
        n = self.trials
        if n == 0:
            return float("inf")
        return z * sqrt(max(p * (1.0 - p), 0.0) / n)

    @property
    def sdc_avf_estimate(self) -> float:
        """Injection-based SDC AVF: strikes whose corruption reached output.

        Traps and hangs are included — a strike that crashes the program
        has certainly affected architecturally correct execution (the
        paper's ACE analysis counts them the same way).
        """
        return self.rate(FaultOutcome.SDC, FaultOutcome.TRAP,
                         FaultOutcome.HANG)

    @property
    def due_avf_estimate(self) -> float:
        """Injection-based DUE AVF (parity campaigns only)."""
        return self.rate(FaultOutcome.TRUE_DUE, FaultOutcome.FALSE_DUE)

    @property
    def false_due_estimate(self) -> float:
        return self.rate(FaultOutcome.FALSE_DUE)

    def summary(self) -> Dict[str, float]:
        return {o.value: self.counts[o] / max(1, self.trials)
                for o in FaultOutcome if self.counts[o]}


def run_campaign(
    program: Program,
    baseline: ExecutionResult,
    pipeline_result: PipelineResult,
    config: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """Inject ``config.trials`` uniform strikes and classify each outcome."""
    config = config or CampaignConfig()
    rng = DeterministicRng(derive_seed(config.seed, "campaign", program.name,
                                       config.parity, int(config.tracking)))
    sampler = StrikeModel(pipeline_result, rng)
    result = CampaignResult(config=config)
    for _ in range(config.trials):
        strike = sampler.sample()
        verdict = evaluate_strike(
            strike, program, baseline,
            parity=config.parity,
            tracking=config.tracking,
            pet_entries=config.pet_entries,
            ecc=config.ecc,
        )
        result.counts[verdict.outcome] += 1
        if verdict.tracker_miss:
            result.tracker_misses += 1
    return result
