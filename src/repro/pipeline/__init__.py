"""Cycle-level timing model of the Itanium®2-like machine.

The pipeline replays a committed trace from the functional simulator
through a 6-wide, strictly in-order machine with a 64-entry instruction
queue (IQ), the paper's three-level cache hierarchy, a gshare branch
predictor that injects real wrong-path instructions, and the paper's
exposure-reduction mechanisms (squash on L0/L1 load miss, fetch
throttling). Its principal product — beyond IPC — is the list of per-entry
IQ *occupancy intervals* that the AVF layer integrates.
"""

from repro.pipeline.branch import GShareBranchPredictor
from repro.pipeline.config import (
    IssuePolicy,
    MachineConfig,
    SquashAction,
    SquashConfig,
    Trigger,
)
from repro.pipeline.core import PipelineSimulator, simulate
from repro.pipeline.iq import OccupancyInterval, OccupantKind
from repro.pipeline.result import PipelineResult

__all__ = [
    "GShareBranchPredictor",
    "IssuePolicy",
    "MachineConfig",
    "SquashAction",
    "SquashConfig",
    "Trigger",
    "PipelineSimulator",
    "simulate",
    "OccupancyInterval",
    "OccupantKind",
    "PipelineResult",
]
