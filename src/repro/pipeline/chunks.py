"""Fetch-chunk π bits (paper Section 4.2).

"Modern microprocessors typically fetch instructions in multiples,
sometimes called chunks. ... We can attach a π bit to each fetch chunk.
If the chunk encounters an error, we can set the π bit of the chunk.
Subsequently, when the chunk is decoded into multiple instructions, we can
copy the π bit value of the chunk to initialize the π bit of each
instruction."

This models the front-end generalisation: a fault detected on a pre-decode
chunk poisons *every* instruction decoded from it, and the error can be
dismissed only if the retire-point machinery clears all of them. The
module quantifies the granularity cost: how much more often a chunk-level
fault must signal than an instruction-level fault on the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.arch.trace import CommittedOp
from repro.due.pi_bit import PiBitTracker
from repro.due.tracking import DEFAULT_PET_ENTRIES, TrackingLevel


@dataclass(frozen=True)
class ChunkDecision:
    """Fate of one poisoned fetch chunk."""

    first_seq: int
    size: int
    signaled: bool
    #: seqs within the chunk whose individual π decisions forced the signal.
    blamed: Tuple[int, ...]


def iter_chunks(trace: Sequence[CommittedOp],
                chunk_size: int) -> Iterator[Tuple[int, int]]:
    """(first_seq, size) for consecutive fetch chunks over a trace.

    Chunks are formed over the committed stream in fetch order; a taken
    branch ends a chunk early, as a real front end cannot fetch across a
    redirection within one chunk.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    start = 0
    count = 0
    for index, op in enumerate(trace):
        count += 1
        if count == chunk_size or op.branch_taken:
            yield (start, count)
            start = index + 1
            count = 0
    if count:
        yield (start, count)


class ChunkPiModel:
    """Chunk-granularity π-bit evaluation over a committed trace."""

    def __init__(
        self,
        trace: List[CommittedOp],
        level: TrackingLevel,
        chunk_size: int = 6,
        pet_entries: int = DEFAULT_PET_ENTRIES,
    ) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.trace = trace
        self.level = level
        self.chunk_size = chunk_size
        self._tracker = PiBitTracker(trace, level, pet_entries)

    def process_chunk_fault(self, first_seq: int,
                            size: int) -> ChunkDecision:
        """A fault on the chunk covering [first_seq, first_seq + size).

        The chunk's π bit is copied to every decoded instruction; the
        error is false only if *every* instruction's π can be dismissed.
        """
        if size <= 0 or first_seq < 0 \
                or first_seq + size > len(self.trace):
            raise ValueError("chunk outside trace")
        blamed = []
        for seq in range(first_seq, first_seq + size):
            decision = self._tracker.process_fault(seq)
            if decision.signaled:
                blamed.append(seq)
        return ChunkDecision(first_seq=first_seq, size=size,
                             signaled=bool(blamed), blamed=tuple(blamed))

    def false_positive_amplification(self, limit: int = 2000) -> float:
        """How much chunk granularity inflates signalled faults.

        Compares the fraction of chunks that must signal against the
        fraction of individual instructions that must signal, over the
        first ``limit`` instructions. A ratio of 1.0 means chunking costs
        nothing; higher means coarse π bits convert more benign faults
        into machine checks.
        """
        horizon = min(limit, len(self.trace))
        instruction_signals = 0
        for seq in range(horizon):
            if self._tracker.process_fault(seq).signaled:
                instruction_signals += 1
        chunk_signals = 0
        chunk_count = 0
        for first, size in iter_chunks(self.trace[:horizon],
                                       self.chunk_size):
            chunk_count += 1
            if self.process_chunk_fault(first, size).signaled:
                chunk_signals += 1
        if instruction_signals == 0 or chunk_count == 0:
            return 1.0
        instruction_rate = instruction_signals / horizon
        chunk_rate = chunk_signals / chunk_count
        return chunk_rate / instruction_rate
