"""Chunk-compositional timing: memoized basic-block interval deltas.

The interval kernel (:mod:`repro.pipeline.kernel`) walks every dynamic
instruction once per (program, machine) pair; long workloads scale
linearly. But most dynamic streams are a small set of basic-block chunks
(:func:`repro.pipeline.chunks.iter_chunks`) repeated thousands of times,
and in steady state a chunk's residency contribution is a pure function
of its entry state — the SimPoint/phase-classification insight applied to
the timing kernel. This module layers a checkpoint record/replay fast
path on the kernel's event loop:

* **Boundaries.** At every loop-top where ``trace_ptr`` sits on a chunk
  leader (taken-branch successor or ``fetch_width`` split), the live
  machine state is reduced to a canonical *entry signature*: the IQ
  occupancy as (row content id, relative seq, relative alloc/issue)
  tuples, in-flight operand ready-times relative to the entry cycle
  (stale entries dropped — ``ready <= cycle`` is indistinguishable from
  absent at every read site), fetch-gate and throttle offsets, the
  in-flight redirect/squash schedule, wrong-path state, and the
  predictor's global history.

* **Record.** On a signature miss the event loop runs as normal while a
  recorder captures the chunk's *relocatable delta*: the cycle advance,
  the trace window it read (forward fetch window and backward squash
  rewind window, as content ids), the Bernoulli/geometric draw outcomes,
  the cache sets and predictor counters it touched (pre and post
  images), and the interval rows it logged as an entry-relative
  :class:`~repro.pipeline.iq.IntervalBlock`, plus a canonical exit
  state. Recording aborts permanently for a chunk when it exceeds the
  row/draw/cache-set caps — correctness never depends on modelling the
  hard cases.

* **Replay.** On a later boundary with the same (chunk content, entry
  signature) key, a stored delta is *validated* — same trace windows,
  same touched cache-set and predictor pre-images, same RNG draw
  outcomes (peeked through a tape so the stream is consumed exactly as
  the event loop would have), headroom under ``max_cycles`` — and then
  applied: rows are shifted and spliced onto the flat log, the queue and
  ready maps are rebuilt from the exit state, cache/predictor post
  images are installed, and the loop fast-forwards the whole chunk.

Exactness is the admission rule: ``run_composed`` is bit-identical to
:func:`repro.pipeline.kernel.run_interval` — cycles, interval timelines,
stats, RNG stream — which ``tests/test_compose.py`` pins across every
profile x trigger x machine variant. The memo is bounded: per-key entry
caps, an LRU over (machine, program) scopes, and a global byte budget
(mirroring the ``_WARM_SNAPSHOTS`` discipline in ``pipeline/core.py``).
"""

from __future__ import annotations

from array import array
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Tuple

from repro.isa.opcodes import Opcode
from repro.memory.hierarchy import AccessResult
from repro.pipeline.chunks import iter_chunks
from repro.pipeline.config import IssuePolicy, SquashAction, Trigger
from repro.pipeline.iq import (
    KIND_WRONG_PATH,
    KIND_COMMITTED,
    KIND_SQUASHED,
    IntervalBlock,
    IntervalTimeline,
)
from repro.pipeline.kernel import (
    E_ADDR,
    E_ALLOC,
    E_DEST,
    E_DPRED,
    E_EXEC,
    E_INSTR,
    E_ISSUE,
    E_KLASS,
    E_MISPRED,
    E_QP,
    E_SEQ,
    E_SRC,
    E_WRONG,
    K_BRANCH,
    K_COMPARE,
    K_LOAD,
    K_MUL,
    K_STORE,
    _INF,
    _decode,
)
from repro.pipeline.result import PipelineResult

#: Extra template slot (beyond the kernel's 13): the fetch pc, so
#: wrong-path entries can be signatured and rebuilt by address.
E_PC = 13

# ---------------------------------------------------------------------------
# Tunables and module counters (surfaced via telemetry in --verbose runs).
# ---------------------------------------------------------------------------

#: Global byte budget across all memo scopes; LRU-evicted beyond this.
MEMO_BYTE_LIMIT = 192 * 1024 * 1024
#: Stored deltas per (chunk, signature) key (draw/cache variants).
MEMO_ENTRIES_PER_KEY = 24
#: Live (machine config, program) scopes kept, LRU.
_MEMO_SCOPE_LIMIT = 24
#: A chunk must be visited this many times before signatures are built.
_SEEN_MIN = 2
#: Recording aborts (permanent fallback) beyond these caps.
_ROW_CAP = 768
_DRAW_CAP = 192
_SET_CAP = 128
#: Queues longer than this skip signature building at a boundary.
_SIG_QUEUE_CAP = 192
#: Cached per-trace preprocessing entries (row/chunk content ids).
_PREP_LIMIT = 8
#: Chunks recorded per segment when the run draws no fetch bubbles.
#: Draw-free segments validate on state alone, so longer spans amortize
#: the per-boundary signature/lookup cost; with bubbles enabled every
#: un-gated cycle adds a draw outcome to the validation script, and
#: longer spans would almost never revalidate.
_MERGE_DRAW_FREE = 8
#: Stop memoizing for the rest of a run once this many lookups missed
#: with a sub-25% hit rate (high-entropy draw states: pure overhead).
_BAIL_MIN_MISSES = 1024

chunk_memo_hits = 0
chunk_memo_misses = 0
chunk_memo_fallbacks = 0
chunk_memo_splices = 0
chunk_memo_evictions = 0

#: "No value" marker inside stored (entry-relative) row columns. A
#: residual entry fetched before the segment boundary commits with a
#: *negative* relative seq/issue, so the timeline's ``NO_VALUE`` (-1) is
#: ambiguous in relative coordinates; this sits far outside any reachable
#: relative offset.
_SENT = -(1 << 40)

#: Trace-row / chunk content interning: equal content, equal small int.
_ROW_INTERN: Dict[tuple, int] = {}
_CHUNK_INTERN: Dict[tuple, int] = {}

#: id(trace) -> (trace, row content ids) — identity-checked, LRU.
_PREP: "OrderedDict[int, tuple]" = OrderedDict()
#: (id(trace), fetch_width) -> (trace, aligned bytearray, leader cids).
_CHUNK_PREP: "OrderedDict[tuple, tuple]" = OrderedDict()

_REC_STAT_KEYS = ("squash_events", "squashed_instructions",
                  "wrong_path_fetched", "throttle_cycles", "redirects")


class _Seg(object):
    """One memoized chunk delta (see the module docstring)."""

    __slots__ = (
        "d_cycle", "d_ptr", "terminated", "touched_end", "fwd", "back",
        "draws", "rows", "x_entries", "x_gpr", "x_pred", "x_wpm", "x_wpc",
        "x_redirect", "x_squashes", "x_mispred", "x_fr", "x_th",
        "stats_d", "totals_d", "c0pre", "c1pre", "c2pre", "c0post",
        "c1post", "c2post", "cache_d", "ppre", "ppost", "hist_post",
        "pred_d", "nbytes",
    )


class _Memo(object):
    """Per-(machine config, program) memo scope."""

    __slots__ = ("program", "store", "seen", "fallback", "nbytes")

    def __init__(self, program) -> None:
        self.program = program  # strong ref: pins id(program) validity
        self.store: "OrderedDict[tuple, list]" = OrderedDict()
        self.seen: Dict[int, int] = {}
        self.fallback: set = set()
        self.nbytes = 0


_MEMOS: "OrderedDict[tuple, _Memo]" = OrderedDict()
_total_bytes = 0


def clear_chunk_memos() -> None:
    """Drop every memo scope and prep cache (mainly for tests/benches)."""
    global _total_bytes
    _MEMOS.clear()
    _PREP.clear()
    _CHUNK_PREP.clear()
    _total_bytes = 0


def chunk_memo_footprint() -> dict:
    """Memo size summary for the --verbose telemetry footer."""
    keys = sum(len(m.store) for m in _MEMOS.values())
    segs = sum(sum(len(v) for v in m.store.values())
               for m in _MEMOS.values())
    return {"scopes": len(_MEMOS), "keys": keys, "segments": segs,
            "bytes": _total_bytes}


def _memo_for(config, program) -> _Memo:
    global _total_bytes, chunk_memo_evictions
    key = (config, id(program))
    memo = _MEMOS.get(key)
    if memo is not None and memo.program is program:
        _MEMOS.move_to_end(key)
        return memo
    memo = _Memo(program)
    while len(_MEMOS) >= _MEMO_SCOPE_LIMIT:
        _, old = _MEMOS.popitem(last=False)
        _total_bytes -= old.nbytes
        chunk_memo_evictions += sum(len(v) for v in old.store.values())
    _MEMOS[key] = memo
    return memo


def _charge_bytes(nbytes: int, current: _Memo) -> None:
    """Account a stored delta; evict LRU state past the byte budget."""
    global _total_bytes, chunk_memo_evictions
    _total_bytes += nbytes
    while _total_bytes > MEMO_BYTE_LIMIT:
        victim_key = None
        for k, m in _MEMOS.items():
            if m is not current:
                victim_key = k
                break
        if victim_key is not None:
            old = _MEMOS.pop(victim_key)
            _total_bytes -= old.nbytes
            chunk_memo_evictions += sum(
                len(v) for v in old.store.values())
            continue
        if not current.store:
            break
        _, segs = current.store.popitem(last=False)
        freed = sum(s.nbytes for s in segs)
        current.nbytes -= freed
        _total_bytes -= freed
        chunk_memo_evictions += len(segs)


# ---------------------------------------------------------------------------
# Per-trace preprocessing: row content ids and chunk-leader alignment.
# ---------------------------------------------------------------------------

def _row_cids(trace) -> Optional[list]:
    """Interned content id per trace row (None if seq != index)."""
    cached = _PREP.get(id(trace))
    if cached is not None and cached[0] is trace:
        _PREP.move_to_end(id(trace))
        return cached[1]
    intern = _ROW_INTERN
    cids: List[int] = []
    append = cids.append
    enc_cache: dict = {}  # id(instruction) -> encoding (traces share objs)
    for index, op in enumerate(trace):
        if op.seq != index:
            return None  # relative-seq arithmetic needs seq == index
        instruction = op.instruction
        enc = enc_cache.get(id(instruction))
        if enc is None:
            enc = instruction.encode()
            enc_cache[id(instruction)] = enc
        fp = (enc, op.pc, op.mem_addr, op.executed, op.branch_taken)
        cid = intern.get(fp)
        if cid is None:
            cid = len(intern)
            intern[fp] = cid
        append(cid)
    while len(_PREP) >= _PREP_LIMIT:
        _PREP.popitem(last=False)
    _PREP[id(trace)] = (trace, cids)
    return cids


def _entry_for(op, decode_cache) -> list:
    """Fresh 14-slot queue entry for a committed-trace row.

    Entries are built on demand instead of from an O(n) prebuilt
    template table: a fully memoized run touches only a few percent of
    the trace directly, so the prebuild would dominate its runtime.
    """
    instruction = op.instruction
    d = decode_cache.get(id(instruction))
    if d is None:
        d = _decode(instruction)
        decode_cache[id(instruction)] = d
    return [op.seq, d[0], d[1], d[2], d[3], False, 0, None, False,
            op.mem_addr, op.executed, instruction, d[4], op.pc]


def _chunk_prep(trace, width: int, cids: list) -> tuple:
    """(aligned bytearray over [0, n], chunk content id per leader)."""
    key = (id(trace), width)
    cached = _CHUNK_PREP.get(key)
    if cached is not None and cached[0] is trace:
        _CHUNK_PREP.move_to_end(key)
        return cached[1], cached[2]
    aligned = bytearray(len(trace) + 1)
    cid_at: Dict[int, int] = {}
    intern = _CHUNK_INTERN
    for start, size in iter_chunks(trace, width):
        aligned[start] = 1
        fp = tuple(cids[start:start + size])
        c = intern.get(fp)
        if c is None:
            c = len(intern)
            intern[fp] = c
        cid_at[start] = c
    while len(_CHUNK_PREP) >= _PREP_LIMIT:
        _CHUNK_PREP.popitem(last=False)
    _CHUNK_PREP[key] = (trace, aligned, cid_at)
    return aligned, cid_at


# ---------------------------------------------------------------------------
# Recording shims: same mutations as the live paths, plus read-set capture.
# ---------------------------------------------------------------------------

def _make_rec_access(hierarchy) -> tuple:
    """An ``access`` clone that snapshots touched sets before first use."""
    cfg = hierarchy.config
    caches = (hierarchy.l0, hierarchy.l1, hierarchy.l2)
    pres: Tuple[dict, dict, dict] = ({}, {}, {})
    lats = (cfg.l0_latency, cfg.l1_latency, cfg.l2_latency)
    memory_latency = cfg.memory_latency

    def rec_access(address):
        level = 0
        while level < 3:
            cache = caches[level]
            si = (address >> cache._line_shift) & cache._set_mask
            pre = pres[level]
            if si not in pre:
                pre[si] = list(cache._sets[si])
            if cache.access(address):
                return AccessResult(lats[level], level >= 1, level >= 2,
                                    False)
            level += 1
        return AccessResult(memory_latency, True, True, True)

    return rec_access, pres


def _make_rec_pred(predictor) -> tuple:
    """An ``update`` wrapper that snapshots touched counters first."""
    pre: Dict[int, int] = {}
    table = predictor._table
    mask = predictor._mask
    real_update = predictor.update

    def rec_update(pc, taken):
        index = (pc ^ (predictor._history << 2)) & mask
        if index not in pre:
            pre[index] = table[index]
        return real_update(pc, taken)

    return rec_update, pre


def _static_template(pc, program, static_templates, pc_of_instr) -> list:
    """Fetch-and-decode a wrong-path template (mirrors the fetch path)."""
    instruction = program.fetch(pc)
    d = _decode(instruction)
    template = [None, d[0], d[1], d[2], d[3], True, 0, None, False, None,
                True, instruction, d[4], pc]
    static_templates[pc] = template
    pc_of_instr[id(instruction)] = pc
    return template


# ---------------------------------------------------------------------------
# Signature / finalize / match / apply (module-level: no hot-loop cells).
# ---------------------------------------------------------------------------

def _build_key(cid, queue, row_cids, ptr, cycle, gpr_ready, pred_ready,
               wpm, wpc, pending_redirect, pending_squashes,
               mispredicted_entry, fetch_resume, throttle_until,
               history) -> tuple:
    """Canonical relative entry state as one flat memo key.

    Flat (one tuple, fixed five slots per queue entry, length-prefixed
    variable sections) so hashing and equality are single C passes; the
    length prefixes keep the flat encoding unambiguous.
    """
    parts = [cid, len(queue)]
    append = parts.append
    for entry in queue:
        ic = entry[E_ISSUE]
        ir = None if ic is None else ic - cycle
        if entry[E_WRONG]:
            append("w")
            append(entry[E_PC])
            append(entry[E_ALLOC] - cycle)
            append(ir)
            append(False)
        else:
            s = entry[E_SEQ]
            append(row_cids[s])
            append(s - ptr)
            append(entry[E_ALLOC] - cycle)
            append(ir)
            append(entry[E_MISPRED])
    live = [(r, v - cycle) for r, v in gpr_ready.items() if v > cycle]
    live.sort()
    append(len(live))
    for r, rel in live:
        append(r)
        append(rel)
    live = [(r, v - cycle) for r, v in pred_ready.items() if v > cycle]
    live.sort()
    append(len(live))
    for r, rel in live:
        append(r)
        append(rel)
    append(len(pending_squashes))
    for fire, mret, se in pending_squashes:
        qi = -1
        for i, entry in enumerate(queue):
            if entry is se:
                qi = i
                break
        fr = fire - cycle
        append(fr if fr > 0 else 0)
        append(mret - cycle)
        append(qi)
    mi = -1
    if mispredicted_entry is not None:
        for i, entry in enumerate(queue):
            if entry is mispredicted_entry:
                mi = i
                break
    rd = None
    if pending_redirect is not None:
        rd = pending_redirect[0] - cycle
        if rd < 0:
            rd = 0
    fr_rel = fetch_resume - cycle
    th_rel = throttle_until - cycle
    append(wpm)
    append(wpc if wpm else -1)
    append(rd)
    append(mi)
    append(fr_rel if fr_rel > 0 else 0)
    append(th_rel if th_rel > 0 else 0)
    append(history)
    return tuple(parts)


def _finalize(queue, cycle, trace_ptr, rec_cycle0, rec_bptr, rec_mark,
              rec_max, rec_min, rec_draws, log, row_cids, trace_n,
              pc_of_instr, gpr_ready, pred_ready, wpm, wpc,
              pending_redirect, pending_squashes, mispredicted_entry,
              fetch_resume, throttle_until, hierarchy, predictor,
              rec_pres, rec_ppre, rec_stats0, rec_totals0, rec_cache0,
              rec_pred0, stats, totals, terminated) -> _Seg:
    """Build the stored delta at a recording's exit boundary."""
    seg = _Seg()
    seg.d_cycle = cycle - rec_cycle0
    seg.d_ptr = trace_ptr - rec_bptr
    seg.terminated = terminated
    seg.touched_end = rec_max >= trace_n
    seg.fwd = row_cids[rec_bptr:rec_max]
    seg.back = row_cids[rec_min:rec_bptr]
    seg.draws = tuple(rec_draws)

    rseq = array("q")
    rkind = array("b")
    ralloc = array("q")
    rissue = array("q")
    rdealloc = array("q")
    toks: list = []
    for s, k, a, i, d, instr in log[rec_mark:]:
        if s == -1:
            rseq.append(_SENT)
            toks.append(pc_of_instr[id(instr)])
        else:
            # May be negative: residual entries fetched before the
            # boundary carry seq < rec_bptr.
            rseq.append(s - rec_bptr)
            toks.append(None)
        rkind.append(k)
        ralloc.append(a - rec_cycle0)
        rissue.append(_SENT if i == -1 else i - rec_cycle0)
        rdealloc.append(d - rec_cycle0)
    seg.rows = IntervalBlock(rseq, rkind, ralloc, rissue, rdealloc,
                             tuple(toks))

    x_entries = []
    for entry in queue:
        ic = entry[E_ISSUE]
        ir = None if ic is None else ic - cycle
        if entry[E_WRONG]:
            x_entries.append(("w", entry[E_PC], entry[E_ALLOC] - cycle,
                              ir))
        else:
            x_entries.append((entry[E_SEQ] - trace_ptr,
                              entry[E_ALLOC] - cycle, ir,
                              entry[E_MISPRED]))
    seg.x_entries = tuple(x_entries)
    seg.x_gpr = tuple(sorted((r, v - cycle)
                             for r, v in gpr_ready.items() if v > cycle))
    seg.x_pred = tuple(sorted((r, v - cycle)
                              for r, v in pred_ready.items()
                              if v > cycle))
    seg.x_wpm = wpm
    seg.x_wpc = wpc if wpm else 0
    if pending_redirect is None:
        seg.x_redirect = None
    else:
        rd = pending_redirect[0] - cycle
        seg.x_redirect = rd if rd > 0 else 0
    x_squashes = []
    for fire, mret, se in pending_squashes:
        qi = -1
        for i, entry in enumerate(queue):
            if entry is se:
                qi = i
                break
        fr = fire - cycle
        x_squashes.append((fr if fr > 0 else 0, mret - cycle, qi))
    seg.x_squashes = tuple(x_squashes)
    mi = -1
    if mispredicted_entry is not None:
        for i, entry in enumerate(queue):
            if entry is mispredicted_entry:
                mi = i
                break
    seg.x_mispred = mi
    fr = fetch_resume - cycle
    seg.x_fr = fr if fr > 0 else 0
    th = throttle_until - cycle
    seg.x_th = th if th > 0 else 0

    seg.stats_d = tuple(stats[k] - v
                        for k, v in zip(_REC_STAT_KEYS, rec_stats0))
    seg.totals_d = tuple(t - t0 for t, t0 in zip(totals, rec_totals0))

    caches = (hierarchy.l0, hierarchy.l1, hierarchy.l2)
    pre_cols = []
    post_cols = []
    for cache, pres in zip(caches, rec_pres):
        sets = cache._sets
        pre_cols.append(tuple(pres.items()))
        post_cols.append(tuple((si, list(sets[si])) for si in pres))
    seg.c0pre, seg.c1pre, seg.c2pre = pre_cols
    seg.c0post, seg.c1post, seg.c2post = post_cols
    seg.cache_d = (caches[0].hits - rec_cache0[0],
                   caches[0].misses - rec_cache0[1],
                   caches[1].hits - rec_cache0[2],
                   caches[1].misses - rec_cache0[3],
                   caches[2].hits - rec_cache0[4],
                   caches[2].misses - rec_cache0[5])
    table = predictor._table
    seg.ppre = tuple(rec_ppre.items())
    seg.ppost = tuple((i, table[i]) for i in rec_ppre)
    seg.hist_post = predictor._history
    seg.pred_d = (predictor.predictions - rec_pred0[0],
                  predictor.mispredictions - rec_pred0[1])

    nsets = sum(len(p) for p in rec_pres)
    seg.nbytes = (512 + 64 * len(rseq) + 16 * len(seg.draws)
                  + 8 * (len(seg.fwd) + len(seg.back))
                  + 96 * len(seg.x_entries) + 160 * nsets
                  + 24 * len(seg.ppre)
                  + 24 * (len(seg.x_gpr) + len(seg.x_pred)))
    return seg


def _match(segs, cycle, max_cycles, trace_ptr, trace_n, row_cids,
           predictor_table, hierarchy, peek, bubble_prob, geo_p):
    """First stored delta valid in the live state, plus its draw count."""
    caches = (hierarchy.l0, hierarchy.l1, hierarchy.l2)
    for seg in segs:
        if cycle + seg.d_cycle >= max_cycles:
            continue
        fwd = seg.fwd
        end = trace_ptr + len(fwd)
        if seg.touched_end:
            if end != trace_n:
                continue
        elif end >= trace_n:
            continue
        back = seg.back
        nb = len(back)
        if nb and (trace_ptr < nb
                   or row_cids[trace_ptr - nb:trace_ptr] != back):
            continue
        if fwd and row_cids[trace_ptr:end] != fwd:
            continue
        ok = True
        for index, pre in seg.ppre:
            if predictor_table[index] != pre:
                ok = False
                break
        if not ok:
            continue
        for cache, pres in zip(caches, (seg.c0pre, seg.c1pre, seg.c2pre)):
            sets = cache._sets
            for si, pre in pres:
                if sets[si] != pre:
                    ok = False
                    break
            if not ok:
                break
        if not ok:
            continue
        # Draw-outcome script: peek the RNG stream without consuming it,
        # replicating the kernel's bernoulli + geometric consumption.
        k = 0
        for o in seg.draws:
            if peek(k) < bubble_prob:
                k += 1
                if o < 0:
                    ok = False
                    break
                g = 0
                while True:
                    f = peek(k)
                    k += 1
                    if f >= geo_p:
                        g += 1
                        if g >= 20:
                            break
                    else:
                        break
                if g != o:
                    ok = False
                    break
            else:
                k += 1
                if o >= 0:
                    ok = False
                    break
        if ok:
            return seg, k
    return None


def _apply(seg, cycle, trace_ptr, trace, decode_cache, static_templates,
           pc_of_instr, program, log, gpr_ready, pred_ready, hierarchy,
           predictor, stats) -> tuple:
    """Install a validated delta; returns the new loop state."""
    new_cycle = cycle + seg.d_cycle
    new_ptr = trace_ptr + seg.d_ptr

    # Splice lazily: one marker now, columns assembled once at the end
    # (_assemble). Markers are lists so ``type(row) is tuple`` still
    # identifies plain rows.
    log.append([seg.rows, cycle, trace_ptr])

    queue: List[list] = []
    qappend = queue.append
    for t in seg.x_entries:
        if t[0] == "w":
            _, pc, ar, ir = t
            template = static_templates.get(pc)
            if template is None:
                template = _static_template(pc, program,
                                            static_templates,
                                            pc_of_instr)
            entry = template.copy()
        else:
            sr, ar, ir, mp = t
            entry = _entry_for(trace[new_ptr + sr], decode_cache)
            if mp:
                entry[E_MISPRED] = True
        entry[E_ALLOC] = new_cycle + ar
        if ir is not None:
            entry[E_ISSUE] = new_cycle + ir
        qappend(entry)

    mi = seg.x_mispred
    mispredicted_entry = queue[mi] if mi >= 0 else None
    rd = seg.x_redirect
    pending_redirect = None if rd is None else (new_cycle + rd, None)
    # A squash whose triggering load left the queue gets a fresh dummy
    # entry: its id matches nothing, so the boundary scan yields -1
    # exactly as the original dangling reference did.
    pending_squashes = [
        (new_cycle + fr, new_cycle + mr, queue[qi] if qi >= 0 else [])
        for fr, mr, qi in seg.x_squashes]

    gpr_ready.clear()
    for r, rel in seg.x_gpr:
        gpr_ready[r] = new_cycle + rel
    pred_ready.clear()
    for r, rel in seg.x_pred:
        pred_ready[r] = new_cycle + rel

    caches = (hierarchy.l0, hierarchy.l1, hierarchy.l2)
    for cache, posts in zip(caches,
                            (seg.c0post, seg.c1post, seg.c2post)):
        sets = cache._sets
        for si, post in posts:
            sets[si] = list(post)
    cd = seg.cache_d
    caches[0].hits += cd[0]
    caches[0].misses += cd[1]
    caches[1].hits += cd[2]
    caches[1].misses += cd[3]
    caches[2].hits += cd[4]
    caches[2].misses += cd[5]
    table = predictor._table
    for index, post in seg.ppost:
        table[index] = post
    predictor._history = seg.hist_post
    predictor.predictions += seg.pred_d[0]
    predictor.mispredictions += seg.pred_d[1]

    sd = seg.stats_d
    for key, delta in zip(_REC_STAT_KEYS, sd):
        if delta:
            stats[key] += delta

    return (queue, new_cycle, new_ptr, seg.x_wpm,
            seg.x_wpc if seg.x_wpm else 0, pending_redirect,
            pending_squashes, mispredicted_entry, new_cycle + seg.x_fr,
            new_cycle + seg.x_th)


def _assemble(log, trace, static_templates, program,
              pc_of_instr) -> IntervalTimeline:
    """Expand the mixed row/marker log into one IntervalTimeline.

    Plain rows are zipped column-wise in runs; each splice marker's
    :class:`IntervalBlock` columns are shift-extended in place — the
    per-row tuples a live splice would have built are never created.
    """
    seq = array("q")
    kind = array("b")
    alloc = array("q")
    issue = array("q")
    dealloc = array("q")
    instr: list = []
    run: list = []
    run_append = run.append

    def flush() -> None:
        s, k, a, i, d, ins = zip(*run)
        seq.extend(s)
        kind.extend(k)
        alloc.extend(a)
        issue.extend(i)
        dealloc.extend(d)
        instr.extend(ins)
        del run[:]

    for row in log:
        if type(row) is tuple:
            run_append(row)
            continue
        if run:
            flush()
        block, dc, dp = row
        bseq = block.seq
        seq.extend(-1 if s == _SENT else s + dp for s in bseq)
        kind.extend(block.kind)
        alloc.extend(a + dc for a in block.alloc)
        issue.extend(-1 if i == _SENT else i + dc for i in block.issue)
        dealloc.extend(d + dc for d in block.dealloc)
        for s, tok in zip(bseq, block.instr):
            if tok is None:
                instr.append(trace[s + dp].instruction)
            else:
                template = static_templates.get(tok)
                if template is None:
                    template = _static_template(tok, program,
                                                static_templates,
                                                pc_of_instr)
                instr.append(template[E_INSTR])
    if run:
        flush()
    timeline = IntervalTimeline(())
    timeline.seq = seq
    timeline.kind = kind
    timeline.alloc = alloc
    timeline.issue = issue
    timeline.dealloc = dealloc
    timeline.instr = tuple(instr)
    return timeline


# ---------------------------------------------------------------------------
# The composed kernel.
# ---------------------------------------------------------------------------

def run_composed(sim) -> PipelineResult:
    """Run ``sim`` through the interval kernel with chunk memoization.

    Bit-identical to :func:`repro.pipeline.kernel.run_interval`; see the
    module docstring for the admission argument.
    """
    global chunk_memo_hits, chunk_memo_misses, chunk_memo_fallbacks
    global chunk_memo_splices

    cfg = sim.config
    if cfg.warm_caches:
        sim._warm_caches()
    trace = sim.trace
    program = sim.program
    predictor = sim.predictor
    hierarchy = sim.hierarchy
    squash_action = cfg.squash.action
    throttle_action = squash_action is SquashAction.THROTTLE
    trigger = cfg.squash.trigger
    trig_l0 = trigger is Trigger.L0_MISS
    trig_l1 = trigger is Trigger.L1_MISS

    # ---- on-demand entry construction (14-slot: + pc) -------------------
    trace_n = len(trace)
    decode_cache: dict = {}
    static_templates: dict = {}
    pc_of_instr: dict = {}

    # ---- memoization state ----------------------------------------------
    row_cids = _row_cids(trace)
    memo_on = row_cids is not None
    if memo_on:
        aligned_b, cid_at = _chunk_prep(trace, cfg.fetch_width, row_cids)
        memo = _memo_for(cfg, program)
        memo_store = memo.store
        memo_seen = memo.seen
        memo_fallback = memo.fallback
    else:
        aligned_b = bytearray(trace_n + 1)  # no boundary ever fires
        cid_at = {}
        memo = None
        memo_store = memo_seen = None
        memo_fallback = set()
    last_bptr = -1
    recording = False
    merge_n = 1 if cfg.fetch_bubble_prob else _MERGE_DRAW_FREE
    rec_left = 0
    rec_list: list = []
    rec_cid = rec_bptr = rec_cycle0 = rec_mark = 0
    rec_max = rec_min = 0
    rec_draws: list = []
    rec_draws_append = rec_draws.append
    rec_pres: tuple = ({}, {}, {})
    rec_ppre: dict = {}
    rec_stats0 = rec_totals0 = rec_cache0 = rec_pred0 = ()
    local_hits = local_misses = local_fallbacks = local_splices = 0
    evictions0 = chunk_memo_evictions

    queue: List[list] = []
    head = 0
    log: List[tuple] = []
    log_append = log.append

    gpr_ready: dict = {}
    pred_ready: dict = {}
    gready = gpr_ready.get
    pready = pred_ready.get

    trace_ptr = 0
    wrong_path_mode = False
    wrong_pc = 0
    pending_redirect = None
    pending_squashes: List[tuple] = []
    fetch_resume = 0
    throttle_until = 0
    cycle = 0

    stats = {
        "l0_misses": 0, "l1_misses": 0, "l2_misses": 0, "loads": 0,
        "squash_events": 0, "squashed_instructions": 0,
        "wrong_path_fetched": 0, "fetch_bubbles": 0,
        "throttle_cycles": 0, "redirects": 0,
    }

    bubble_prob = cfg.fetch_bubble_prob
    bubble_len = cfg.fetch_bubble_mean_len
    geo_p = (1.0 / bubble_len) if bubble_prob else 1.0
    mispredicted_entry = None
    # The RNG tape: validation peeks future raw draws without consuming
    # them; the live draw sites pop the tape first so the stream is
    # byte-identical to the kernel's regardless of lookup outcomes.
    raw_random = sim._rng._random.random
    tape: deque = deque()
    tape_popleft = tape.popleft

    def rng_random():
        return tape_popleft() if tape else raw_random()

    def peek(index):
        while len(tape) <= index:
            tape.append(raw_random())
        return tape[index]

    max_cycles = cfg.max_cycles
    commit_width = cfg.commit_width
    commit_latency = cfg.commit_latency
    issue_width = cfg.issue_width
    iq_entries = cfg.iq_entries
    fetch_width = cfg.fetch_width
    in_order = cfg.issue_policy is IssuePolicy.IN_ORDER
    scheduler_window = cfg.scheduler_window
    frontend_depth = cfg.frontend_depth
    l0_latency = cfg.hierarchy.l0_latency
    l1_latency = cfg.hierarchy.l1_latency
    alu_latency = cfg.alu_latency
    mul_latency = cfg.mul_latency
    compare_latency = cfg.compare_latency
    branch_resolve_latency = cfg.branch_resolve_latency
    resume_at_miss_return = cfg.squash.resume_at_miss_return
    real_access = hierarchy.access
    real_pred_update = predictor.update
    access_fn = real_access
    pred_update = real_pred_update
    cfg_mem_ports = cfg.mem_ports
    cfg_mul_units = cfg.mul_units
    cfg_branch_units = cfg.branch_units
    units_for = (cfg_mem_ports, cfg_mem_ports, cfg_mul_units, _INF,
                 cfg_branch_units, _INF)
    l0_miss_total = l1_miss_total = l2_miss_total = 0
    loads_total = 0
    bubbles_total = 0

    while cycle < max_cycles:
        # ---- chunk boundary: finalize / look up / start recording --------
        if trace_ptr != last_bptr and aligned_b[trace_ptr]:
            last_bptr = trace_ptr
            if recording and rec_left > 1:
                rec_left -= 1  # mid-merge boundary: keep recording
            else:
                if recording:
                    recording = False
                    access_fn = real_access
                    pred_update = real_pred_update
                    if head:
                        del queue[:head]
                        head = 0
                    if trace_ptr > rec_max:
                        rec_max = trace_ptr
                    seg = _finalize(
                        queue, cycle, trace_ptr, rec_cycle0, rec_bptr,
                        rec_mark, rec_max, rec_min, rec_draws, log,
                        row_cids, trace_n, pc_of_instr, gpr_ready,
                        pred_ready, wrong_path_mode, wrong_pc,
                        pending_redirect, pending_squashes,
                        mispredicted_entry, fetch_resume, throttle_until,
                        hierarchy, predictor, rec_pres, rec_ppre,
                        rec_stats0, rec_totals0, rec_cache0, rec_pred0,
                        stats,
                        (l0_miss_total, l1_miss_total, l2_miss_total,
                         loads_total, bubbles_total), False)
                    rec_list.append(seg)
                    memo.nbytes += seg.nbytes
                    _charge_bytes(seg.nbytes, memo)
                if memo_on and local_misses >= _BAIL_MIN_MISSES \
                        and local_misses > 3 * local_hits:
                    # Hopeless workload for memoization (e.g. heavy
                    # bubble-draw entropy): stop paying lookup/record
                    # overhead; the rest of the run is plain kernel.
                    memo_on = False
                if memo_on:
                    cid = cid_at[trace_ptr]
                    n_seen = memo_seen.get(cid, 0) + 1
                    memo_seen[cid] = n_seen
                    if n_seen >= _SEEN_MIN and cid not in memo_fallback \
                            and len(queue) - head <= _SIG_QUEUE_CAP:
                        if head:
                            del queue[:head]
                            head = 0
                        key = _build_key(
                            cid, queue, row_cids, trace_ptr, cycle,
                            gpr_ready, pred_ready, wrong_path_mode,
                            wrong_pc, pending_redirect, pending_squashes,
                            mispredicted_entry, fetch_resume,
                            throttle_until, predictor._history)
                        segs = memo_store.get(key)
                        found = None
                        if segs:
                            found = _match(
                                segs, cycle, max_cycles, trace_ptr,
                                trace_n, row_cids, predictor._table,
                                hierarchy, peek, bubble_prob, geo_p)
                        if found is not None:
                            seg, ndraws = found
                            for _ in range(ndraws):
                                tape_popleft()
                            (queue, cycle, trace_ptr, wrong_path_mode,
                             wrong_pc, pending_redirect, pending_squashes,
                             mispredicted_entry, fetch_resume,
                             throttle_until) = _apply(
                                seg, cycle, trace_ptr, trace,
                                decode_cache,
                                static_templates, pc_of_instr, program,
                                log, gpr_ready, pred_ready, hierarchy,
                                predictor, stats)
                            head = 0
                            td = seg.totals_d
                            l0_miss_total += td[0]
                            l1_miss_total += td[1]
                            l2_miss_total += td[2]
                            loads_total += td[3]
                            bubbles_total += td[4]
                            local_hits += 1
                            local_splices += len(seg.rows)
                            memo_store.move_to_end(key)
                            if seg.terminated:
                                break
                            last_bptr = -1
                            continue
                        local_misses += 1
                        if segs is None:
                            segs = []
                            memo_store[key] = segs
                        if len(segs) < MEMO_ENTRIES_PER_KEY:
                            recording = True
                            rec_left = merge_n
                            rec_list = segs
                            rec_cid = cid
                            rec_bptr = trace_ptr
                            rec_cycle0 = cycle
                            rec_mark = len(log)
                            rec_max = rec_min = trace_ptr
                            rec_draws = []
                            rec_draws_append = rec_draws.append
                            access_fn, rec_pres = \
                                _make_rec_access(hierarchy)
                            pred_update, rec_ppre = \
                                _make_rec_pred(predictor)
                            rec_stats0 = tuple(stats[k]
                                               for k in _REC_STAT_KEYS)
                            rec_totals0 = (l0_miss_total, l1_miss_total,
                                           l2_miss_total, loads_total,
                                           bubbles_total)
                            rec_cache0 = (hierarchy.l0.hits,
                                          hierarchy.l0.misses,
                                          hierarchy.l1.hits,
                                          hierarchy.l1.misses,
                                          hierarchy.l2.hits,
                                          hierarchy.l2.misses)
                            rec_pred0 = (predictor.predictions,
                                         predictor.mispredictions)
        if recording and (len(log) - rec_mark > _ROW_CAP
                          or len(rec_draws) > _DRAW_CAP
                          or len(rec_pres[0]) + len(rec_pres[1])
                          + len(rec_pres[2]) > _SET_CAP):
            recording = False
            access_fn = real_access
            pred_update = real_pred_update
            memo_fallback.add(rec_cid)
            local_fallbacks += 1

        # ---- branch-resolution redirect ----------------------------------
        if pending_redirect is not None and pending_redirect[0] <= cycle:
            kept = []
            for entry in queue[head:] if head else queue:
                if entry[E_WRONG]:
                    ic = entry[E_ISSUE]
                    log_append((-1, KIND_WRONG_PATH, entry[E_ALLOC],
                                -1 if ic is None else ic, cycle,
                                entry[E_INSTR]))
                else:
                    kept.append(entry)
            queue = kept
            head = 0
            wrong_path_mode = False
            pending_redirect = None
            mispredicted_entry = None
            if fetch_resume < cycle + frontend_depth:
                fetch_resume = cycle + frontend_depth
            stats["redirects"] += 1

        # ---- exposure-reduction trigger fires ----------------------------
        fired = ([s for s in pending_squashes if s[0] <= cycle]
                 if pending_squashes else None)
        if fired:
            pending_squashes = [s for s in pending_squashes
                                if s[0] > cycle]
            if head:
                del queue[:head]
                head = 0
            miss_return = max(s[1] for s in fired)
            if throttle_action:
                if throttle_until < miss_return:
                    throttle_until = miss_return
            else:
                load_ids = {id(s[2]) for s in fired}
                boundary = -1
                for position, entry in enumerate(queue):
                    if id(entry) in load_ids:
                        boundary = position
                        break
                victims = [entry for entry in queue[boundary + 1:]
                           if entry[E_ISSUE] is None]
                if victims:
                    victim_set = set(map(id, victims))
                    queue = [entry for entry in queue
                             if id(entry) not in victim_set]
                    stats["squash_events"] += 1
                    stats["squashed_instructions"] += len(victims)
                    rewind_to = None
                    victim_has_branch = False
                    for entry in victims:
                        if entry[E_WRONG]:
                            log_append((-1, KIND_WRONG_PATH,
                                        entry[E_ALLOC], -1, cycle,
                                        entry[E_INSTR]))
                        else:
                            seq = entry[E_SEQ]
                            log_append((seq, KIND_SQUASHED,
                                        entry[E_ALLOC], -1, cycle,
                                        entry[E_INSTR]))
                            if rewind_to is None or seq < rewind_to:
                                rewind_to = seq
                            if entry is mispredicted_entry:
                                victim_has_branch = True
                    if rewind_to is not None and trace_ptr > rewind_to:
                        if recording:
                            if trace_ptr > rec_max:
                                rec_max = trace_ptr
                            if rewind_to < rec_min:
                                rec_min = rewind_to
                        trace_ptr = rewind_to
                    if victim_has_branch:
                        # The mispredicted branch itself was squashed: its
                        # wrong path evaporates with it. Under windowed
                        # OoO issue some wrong-path entries may already
                        # have issued and survived the victim cut; with
                        # the redirect cancelled nothing else would ever
                        # remove them, and a wrong-path entry at the
                        # queue head blocks commit forever. Flush them
                        # like a redirect would.
                        wrong_path_mode = False
                        pending_redirect = None
                        mispredicted_entry = None
                        if any(entry[E_WRONG] for entry in queue):
                            kept = []
                            for entry in queue:
                                if entry[E_WRONG]:
                                    ic = entry[E_ISSUE]
                                    log_append((-1, KIND_WRONG_PATH,
                                                entry[E_ALLOC],
                                                -1 if ic is None else ic,
                                                cycle, entry[E_INSTR]))
                                else:
                                    kept.append(entry)
                            queue = kept
                if resume_at_miss_return:
                    fetch_resume = max(fetch_resume, cycle + 1,
                                       miss_return - frontend_depth)
                else:
                    fetch_resume = max(fetch_resume,
                                       cycle + frontend_depth)

        # ---- commit (deallocate in order) --------------------------------
        committed_now = 0
        queue_len = len(queue)
        while committed_now < commit_width and head < queue_len:
            entry = queue[head]
            if entry[E_WRONG]:
                break
            ic = entry[E_ISSUE]
            if ic is None or ic + commit_latency > cycle:
                break
            log_append((entry[E_SEQ], KIND_COMMITTED, entry[E_ALLOC], ic,
                        cycle, entry[E_INSTR]))
            head += 1
            committed_now += 1
        if head >= 512 and head * 2 >= queue_len:
            del queue[:head]
            head = 0

        # ---- issue --------------------------------------------------------
        mem_slots = cfg_mem_ports
        mul_slots = cfg_mul_units
        branch_slots = cfg_branch_units
        issued_now = 0
        scan_limit = len(queue) if in_order else \
            min(len(queue), head + scheduler_window)
        position = head
        while issued_now < issue_width and position < scan_limit:
            entry = queue[position]
            position += 1
            if entry[E_ISSUE] is not None:
                continue
            klass = entry[E_KLASS]
            if klass <= K_STORE:
                if mem_slots == 0:
                    if in_order:
                        break
                    continue
            elif klass == K_MUL:
                if mul_slots == 0:
                    if in_order:
                        break
                    continue
            elif klass == K_BRANCH:
                if branch_slots == 0:
                    if in_order:
                        break
                    continue
            blocked = pready(entry[E_QP], -1) > cycle
            if not blocked:
                for reg in entry[E_SRC]:
                    if gready(reg, -1) > cycle:
                        blocked = True
                        break
            if blocked:
                if in_order:
                    break
                continue

            entry[E_ISSUE] = cycle
            issued_now += 1
            if klass == K_LOAD:
                mem_slots -= 1
                addr = entry[E_ADDR]
                if entry[E_WRONG] or addr is None:
                    latency = l0_latency
                else:
                    loads_total += 1
                    access = access_fn(addr)
                    latency = access.latency
                    if access.l0_miss:
                        l0_miss_total += 1
                        if access.l1_miss:
                            l1_miss_total += 1
                            if access.l2_miss:
                                l2_miss_total += 1
                        if trig_l0:
                            pending_squashes.append(
                                (cycle + l0_latency, cycle + latency,
                                 entry))
                        elif trig_l1 and access.l1_miss:
                            pending_squashes.append(
                                (cycle + l1_latency, cycle + latency,
                                 entry))
                dest = entry[E_DEST]
                if dest and entry[E_EXEC]:
                    gpr_ready[dest] = cycle + latency
            elif klass == K_STORE:
                mem_slots -= 1
                addr = entry[E_ADDR]
                if not entry[E_WRONG] and addr is not None:
                    access_fn(addr)
            elif klass == K_MUL:
                mul_slots -= 1
                dest = entry[E_DEST]
                if dest and entry[E_EXEC]:
                    gpr_ready[dest] = cycle + mul_latency
            elif klass == K_COMPARE:
                if entry[E_EXEC]:
                    pred_ready[entry[E_DPRED]] = cycle + compare_latency
            elif klass == K_BRANCH:
                branch_slots -= 1
                if entry[E_MISPRED]:
                    pending_redirect = (cycle + branch_resolve_latency,
                                        entry)
            else:
                dest = entry[E_DEST]
                if dest and entry[E_EXEC]:
                    gpr_ready[dest] = cycle + alu_latency

        # ---- fetch --------------------------------------------------------
        fetched = 0
        if cycle >= fetch_resume and cycle >= throttle_until:
            bubbled = False
            if bubble_prob:
                if rng_random() < bubble_prob:
                    bubbled = True
                    bubbles_total += 1
                    g = 0
                    while rng_random() >= geo_p:
                        g += 1
                        if g >= 20:
                            break
                    fetch_resume = cycle + 1 + g
                    if recording:
                        rec_draws_append(g)
                elif recording:
                    rec_draws_append(-1)
            if not bubbled:
                while fetched < fetch_width \
                        and len(queue) - head < iq_entries:
                    if wrong_path_mode:
                        pc = wrong_pc
                        template = static_templates.get(pc)
                        if template is None:
                            template = _static_template(
                                pc, program, static_templates,
                                pc_of_instr)
                        wrong_pc = pc + 1
                        entry = template.copy()
                        entry[E_ALLOC] = cycle
                        queue.append(entry)
                        stats["wrong_path_fetched"] += 1
                        fetched += 1
                        continue
                    if trace_ptr >= trace_n:
                        break
                    op = trace[trace_ptr]
                    entry = _entry_for(op, decode_cache)
                    entry[E_ALLOC] = cycle
                    if entry[E_INSTR].opcode is Opcode.BR:
                        taken = op.branch_taken
                        pc = op.pc
                        prediction = pred_update(pc, taken)
                        if prediction != taken:
                            entry[E_MISPRED] = True
                            mispredicted_entry = entry
                            wrong_path_mode = True
                            wrong_pc = (pc + 1 if taken
                                        else pc + entry[E_INSTR].imm)
                            queue.append(entry)
                            trace_ptr += 1
                            fetched += 1
                            break  # redirect ends the fetch group
                    queue.append(entry)
                    trace_ptr += 1
                    fetched += 1
        elif cycle < throttle_until:
            stats["throttle_cycles"] += 1

        # ---- termination ---------------------------------------------------
        queue_len = len(queue)
        if trace_ptr >= trace_n and head >= queue_len \
                and not wrong_path_mode:
            if recording:
                eff = queue[head:]
                if trace_ptr > rec_max:
                    rec_max = trace_ptr
                seg = _finalize(
                    eff, cycle, trace_ptr, rec_cycle0, rec_bptr,
                    rec_mark, rec_max, rec_min, rec_draws, log, row_cids,
                    trace_n, pc_of_instr, gpr_ready, pred_ready,
                    wrong_path_mode, wrong_pc, pending_redirect,
                    pending_squashes, mispredicted_entry, fetch_resume,
                    throttle_until, hierarchy, predictor, rec_pres,
                    rec_ppre, rec_stats0, rec_totals0, rec_cache0,
                    rec_pred0, stats,
                    (l0_miss_total, l1_miss_total, l2_miss_total,
                     loads_total, bubbles_total), True)
                rec_list.append(seg)
                memo.nbytes += seg.nbytes
                _charge_bytes(seg.nbytes, memo)
                recording = False
            break

        # ---- event skip -----------------------------------------------------
        nc = cycle + 1
        gate = fetch_resume if fetch_resume > throttle_until \
            else throttle_until
        fetch_active = gate <= nc
        fetchable = wrong_path_mode or trace_ptr < trace_n
        if fetch_active and fetchable and queue_len - head < iq_entries:
            cycle = nc
            continue
        if committed_now or issued_now or fetched:
            cycle = nc
            continue
        nxt = _INF
        if pending_redirect is not None:
            nxt = pending_redirect[0]
        if pending_squashes:
            for s in pending_squashes:
                if s[0] < nxt:
                    nxt = s[0]
        if head < queue_len:
            entry = queue[head]
            ic = entry[E_ISSUE]
            if not entry[E_WRONG] and ic is not None:
                t = ic + commit_latency
                if t < nxt:
                    nxt = t
        position = head
        scan_limit = queue_len if in_order else \
            min(queue_len, head + scheduler_window)
        while position < scan_limit:
            entry = queue[position]
            position += 1
            if entry[E_ISSUE] is not None:
                continue
            if units_for[entry[E_KLASS]] == 0:
                if in_order:
                    break
                continue
            ready = pready(entry[E_QP], -1)
            for reg in entry[E_SRC]:
                r = gready(reg, -1)
                if r > ready:
                    ready = r
            if ready < nc:
                ready = nc
            if ready < nxt:
                nxt = ready
            if in_order or ready <= nc:
                break
        if nxt <= nc:
            cycle = nc
            continue
        if fetch_active:
            if bubble_prob:
                end = nxt if nxt < max_cycles else max_cycles
                x = nc
                while x < end:
                    if x < fetch_resume:
                        x = fetch_resume if fetch_resume < end else end
                        continue
                    if rng_random() < bubble_prob:
                        bubbles_total += 1
                        g = 0
                        while rng_random() >= geo_p:
                            g += 1
                            if g >= 20:
                                break
                        fetch_resume = x + 1 + g
                        if recording:
                            rec_draws_append(g)
                    elif recording:
                        rec_draws_append(-1)
                    x += 1
                cycle = end
                continue
        elif gate < nxt and (fetchable or bubble_prob):
            nxt = gate
        if nxt > max_cycles:
            nxt = max_cycles
        if throttle_until > nc:
            limit = throttle_until if throttle_until < nxt else nxt
            stats["throttle_cycles"] += limit - nc
        cycle = nxt
    else:
        raise RuntimeError(
            f"timing simulation exceeded {cfg.max_cycles} cycles "
            f"({sim.program.name})")

    chunk_memo_hits += local_hits
    chunk_memo_misses += local_misses
    chunk_memo_fallbacks += local_fallbacks
    chunk_memo_splices += local_splices
    if local_hits or local_misses or local_fallbacks:
        # Local import: keep the pipeline importable without the runtime
        # package (workers tick their own telemetry; the engine merges).
        from repro.runtime.context import get_runtime

        telemetry = get_runtime().telemetry
        if local_hits:
            telemetry.increment("chunk_memo_hits", local_hits)
        if local_misses:
            telemetry.increment("chunk_memo_misses", local_misses)
        if local_fallbacks:
            telemetry.increment("chunk_memo_fallbacks", local_fallbacks)
        if local_splices:
            telemetry.increment("chunk_memo_splices", local_splices)
        evicted = chunk_memo_evictions - evictions0
        if evicted:
            telemetry.increment("chunk_memo_evictions", evicted)

    stats["l0_misses"] = l0_miss_total
    stats["l1_misses"] = l1_miss_total
    stats["l2_misses"] = l2_miss_total
    stats["loads"] = loads_total
    stats["fetch_bubbles"] += bubbles_total
    stats["branch_predictions"] = predictor.predictions
    stats["branch_mispredictions"] = predictor.mispredictions
    return PipelineResult(
        cycles=cycle,
        committed=trace_n,
        intervals=_assemble(log, trace, static_templates, program,
                            pc_of_instr),
        iq_entries=iq_entries,
        stats=stats,
    )
