"""Timing-simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.pipeline.iq import OccupancyInterval


@dataclass
class PipelineResult:
    """Output of one timing run."""

    cycles: int
    committed: int
    intervals: List[OccupancyInterval]
    iq_entries: int
    #: Counter bag: squashes, wrong-path instructions fetched, miss counts
    #: per level, branch statistics, throttle cycles, ...
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def total_entry_cycles(self) -> int:
        """Denominator of every residency fraction: entries x cycles."""
        return self.iq_entries * self.cycles

    def occupancy_fraction(self) -> float:
        """Fraction of entry-cycles holding any occupant (1 - idle)."""
        if self.cycles == 0:
            return 0.0
        resident = sum(i.resident_cycles for i in self.intervals)
        return resident / self.total_entry_cycles
