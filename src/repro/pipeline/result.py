"""Timing-simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.pipeline.iq import IntervalTimeline, OccupancyInterval


@dataclass
class PipelineResult:
    """Output of one timing run.

    ``intervals`` is a sequence of :class:`OccupancyInterval`. The interval
    kernel supplies an :class:`IntervalTimeline` (columnar, lazy — see
    :attr:`timeline`); the per-cycle loop supplies a plain list. Consumers
    that iterate cannot tell the difference.
    """

    cycles: int
    committed: int
    intervals: Sequence[OccupancyInterval]
    iq_entries: int
    #: Counter bag: squashes, wrong-path instructions fetched, miss counts
    #: per level, branch statistics, throttle cycles, ...
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def timeline(self) -> Optional[IntervalTimeline]:
        """The columnar interval log, when this run came from the kernel."""
        if isinstance(self.intervals, IntervalTimeline):
            return self.intervals
        return None

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.committed / self.cycles

    @property
    def total_entry_cycles(self) -> int:
        """Denominator of every residency fraction: entries x cycles."""
        return self.iq_entries * self.cycles

    def occupancy_fraction(self) -> float:
        """Fraction of entry-cycles holding any occupant (1 - idle)."""
        if self.cycles == 0:
            return 0.0
        timeline = self.timeline
        if timeline is not None:
            resident = timeline.total_resident_cycles()
        else:
            resident = sum(i.resident_cycles for i in self.intervals)
        return resident / self.total_entry_cycles
