"""Instruction-queue occupancy records.

The AVF layer does not scan the queue cycle by cycle; instead the pipeline
emits one :class:`OccupancyInterval` per dynamic occupancy of an IQ entry —
when it was allocated, when it was last read (issued), when it left, and
why. The integral of classified bit-time over these intervals *is* the AVF
numerator (paper Section 2).
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Optional

from repro.isa.instruction import Instruction


@unique
class OccupantKind(Enum):
    """Why an occupancy interval ended / what the occupant was."""

    COMMITTED = "committed"  # correct-path, issued, retired
    WRONG_PATH = "wrong_path"  # fetched past a mispredicted branch
    SQUASHED = "squashed"  # correct-path victim of the exposure squash


class OccupancyInterval:
    """One dynamic residency of one instruction in one IQ entry."""

    __slots__ = ("seq", "instruction", "kind", "alloc_cycle", "issue_cycle",
                 "dealloc_cycle")

    def __init__(
        self,
        seq: Optional[int],
        instruction: Instruction,
        kind: OccupantKind,
        alloc_cycle: int,
        issue_cycle: Optional[int],
        dealloc_cycle: int,
    ) -> None:
        #: Commit sequence number (None for wrong-path occupants).
        self.seq = seq
        self.instruction = instruction
        self.kind = kind
        self.alloc_cycle = alloc_cycle
        #: Cycle of the (last) read of this entry; None if never issued.
        self.issue_cycle = issue_cycle
        self.dealloc_cycle = dealloc_cycle

    @property
    def issued(self) -> bool:
        return self.issue_cycle is not None

    @property
    def resident_cycles(self) -> int:
        """Total cycles the entry held this occupant."""
        return self.dealloc_cycle - self.alloc_cycle

    @property
    def vulnerable_cycles(self) -> int:
        """Cycles from allocation to the last read (0 if never read).

        Only this window can turn a strike into an error: bits that are
        never read afterward (Ex-ACE tail, never-issued occupants) are
        harmless, per the paper's Section 4.1.
        """
        if self.issue_cycle is None:
            return 0
        return self.issue_cycle - self.alloc_cycle

    @property
    def ex_ace_cycles(self) -> int:
        """Cycles between the last read and deallocation."""
        if self.issue_cycle is None:
            return self.dealloc_cycle - self.alloc_cycle
        return self.dealloc_cycle - self.issue_cycle

    def __repr__(self) -> str:
        return (
            f"OccupancyInterval(seq={self.seq}, kind={self.kind.value}, "
            f"alloc={self.alloc_cycle}, issue={self.issue_cycle}, "
            f"dealloc={self.dealloc_cycle})"
        )
