"""Instruction-queue occupancy records.

The AVF layer does not scan the queue cycle by cycle; instead the pipeline
emits one :class:`OccupancyInterval` per dynamic occupancy of an IQ entry —
when it was allocated, when it was last read (issued), when it left, and
why. The integral of classified bit-time over these intervals *is* the AVF
numerator (paper Section 2).
"""

from __future__ import annotations

from array import array
from enum import Enum, unique
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.isa.instruction import Instruction


@unique
class OccupantKind(Enum):
    """Why an occupancy interval ended / what the occupant was."""

    COMMITTED = "committed"  # correct-path, issued, retired
    WRONG_PATH = "wrong_path"  # fetched past a mispredicted branch
    SQUASHED = "squashed"  # correct-path victim of the exposure squash


#: Integer codes for the interval-record path (indices into KIND_BY_CODE).
KIND_COMMITTED, KIND_WRONG_PATH, KIND_SQUASHED = 0, 1, 2
KIND_BY_CODE: Tuple[OccupantKind, ...] = (
    OccupantKind.COMMITTED, OccupantKind.WRONG_PATH, OccupantKind.SQUASHED)
CODE_BY_KIND = {kind: code for code, kind in enumerate(KIND_BY_CODE)}

#: Sentinel in the integer columns for "no value" (never-issued intervals
#: and the seq of wrong-path occupants, which never commit).
NO_VALUE = -1


class OccupancyInterval:
    """One dynamic residency of one instruction in one IQ entry."""

    __slots__ = ("seq", "instruction", "kind", "alloc_cycle", "issue_cycle",
                 "dealloc_cycle")

    def __init__(
        self,
        seq: Optional[int],
        instruction: Instruction,
        kind: OccupantKind,
        alloc_cycle: int,
        issue_cycle: Optional[int],
        dealloc_cycle: int,
    ) -> None:
        #: Commit sequence number (None for wrong-path occupants).
        self.seq = seq
        self.instruction = instruction
        self.kind = kind
        self.alloc_cycle = alloc_cycle
        #: Cycle of the (last) read of this entry; None if never issued.
        self.issue_cycle = issue_cycle
        self.dealloc_cycle = dealloc_cycle

    @property
    def issued(self) -> bool:
        return self.issue_cycle is not None

    @property
    def resident_cycles(self) -> int:
        """Total cycles the entry held this occupant."""
        return self.dealloc_cycle - self.alloc_cycle

    @property
    def vulnerable_cycles(self) -> int:
        """Cycles from allocation to the last read (0 if never read).

        Only this window can turn a strike into an error: bits that are
        never read afterward (Ex-ACE tail, never-issued occupants) are
        harmless, per the paper's Section 4.1.
        """
        if self.issue_cycle is None:
            return 0
        return self.issue_cycle - self.alloc_cycle

    @property
    def ex_ace_cycles(self) -> int:
        """Cycles between the last read and deallocation."""
        if self.issue_cycle is None:
            return self.dealloc_cycle - self.alloc_cycle
        return self.dealloc_cycle - self.issue_cycle

    def __repr__(self) -> str:
        return (
            f"OccupancyInterval(seq={self.seq}, kind={self.kind.value}, "
            f"alloc={self.alloc_cycle}, issue={self.issue_cycle}, "
            f"dealloc={self.dealloc_cycle})"
        )


class IntervalTimeline(Sequence):
    """Columnar form of an occupancy-interval log.

    The interval kernel emits one ``(seq, kind, alloc, issue, dealloc,
    instruction)`` record per residency instead of an
    :class:`OccupancyInterval` object; this class stores those records as
    parallel integer columns (``array('q')``, :data:`NO_VALUE` for "none")
    plus one object column for the instruction. The AVF layer integrates
    the columns directly by closed-form interval arithmetic; everything
    that still wants objects gets them through the sequence protocol —
    materialization happens once, lazily, and is cached.
    """

    __slots__ = ("seq", "kind", "alloc", "issue", "dealloc", "instr",
                 "_materialized")

    def __init__(self, records: Sequence[tuple]) -> None:
        if records:
            seq, kind, alloc, issue, dealloc, instr = zip(*records)
        else:
            seq = kind = alloc = issue = dealloc = instr = ()
        self.seq = array("q", seq)
        self.kind = array("b", kind)
        self.alloc = array("q", alloc)
        self.issue = array("q", issue)
        self.dealloc = array("q", dealloc)
        self.instr: Tuple[Instruction, ...] = tuple(instr)
        self._materialized: Optional[List[OccupancyInterval]] = None

    # -- sequence protocol (materializes on first object access) ----------

    def materialize(self) -> List[OccupancyInterval]:
        """The equivalent :class:`OccupancyInterval` list (cached)."""
        if self._materialized is None:
            kinds = KIND_BY_CODE
            self._materialized = [
                OccupancyInterval(
                    None if s == NO_VALUE else s, instr, kinds[k], a,
                    None if i == NO_VALUE else i, d)
                for s, k, a, i, d, instr in zip(
                    self.seq, self.kind, self.alloc, self.issue,
                    self.dealloc, self.instr)
            ]
        return self._materialized

    def __len__(self) -> int:
        return len(self.kind)

    def __getitem__(self, index):
        return self.materialize()[index]

    def __iter__(self) -> Iterator[OccupancyInterval]:
        return iter(self.materialize())

    def __repr__(self) -> str:
        return f"IntervalTimeline({len(self)} intervals)"

    # -- closed-form column arithmetic -------------------------------------

    def total_resident_cycles(self) -> int:
        """Sum of ``dealloc - alloc`` without touching objects."""
        return sum(self.dealloc) - sum(self.alloc)

    def residency_prefix_sums(self) -> Tuple[array, array, array]:
        """``(alloc, resident, cumulative)`` columns of the interval log.

        ``resident[i]`` is ``dealloc[i] - alloc[i]`` and ``cumulative`` its
        running sum — the coordinate system the strike batcher places
        uniform entry-cycle points in. Splicing relocated blocks must leave
        these columns identical to a timeline rebuilt from flat records;
        the hypothesis round-trip suite pins that.
        """
        alloc = self.alloc
        resident = array("q", (d - a for a, d in zip(alloc, self.dealloc)))
        cumulative = array("q")
        total = 0
        for r in resident:
            total += r
            cumulative.append(total)
        return alloc, resident, cumulative

    # -- relocatable column blocks (chunk-compositional fast path) ---------

    def block(self, start: int, stop: int) -> "IntervalBlock":
        """Column slice ``[start, stop)`` as a relocatable block."""
        return IntervalBlock(
            self.seq[start:stop], self.kind[start:stop],
            self.alloc[start:stop], self.issue[start:stop],
            self.dealloc[start:stop], self.instr[start:stop])

    @classmethod
    def from_blocks(
        cls, blocks: Sequence["IntervalBlock"]) -> "IntervalTimeline":
        """Concatenate blocks (already shifted) into one timeline."""
        timeline = cls(())
        seq = array("q")
        kind = array("b")
        alloc = array("q")
        issue = array("q")
        dealloc = array("q")
        instr: List[Instruction] = []
        for b in blocks:
            seq.extend(b.seq)
            kind.extend(b.kind)
            alloc.extend(b.alloc)
            issue.extend(b.issue)
            dealloc.extend(b.dealloc)
            instr.extend(b.instr)
        timeline.seq, timeline.kind = seq, kind
        timeline.alloc, timeline.issue, timeline.dealloc = \
            alloc, issue, dealloc
        timeline.instr = tuple(instr)
        return timeline


class IntervalBlock:
    """A contiguous run of timeline rows with relocatable cycle columns.

    The chunk-compositional fast path memoizes a chunk's interval rows
    with entry-relative cycles; on replay :meth:`shifted` rebases them to
    the live entry cycle (and seq base) and the rows are spliced back
    onto the flat log. ``NO_VALUE`` survives both shifts untouched —
    "never issued" and "no seq" are positions, not offsets.
    """

    __slots__ = ("seq", "kind", "alloc", "issue", "dealloc", "instr")

    def __init__(self, seq: array, kind: array, alloc: array, issue: array,
                 dealloc: array, instr: Tuple[Instruction, ...]) -> None:
        self.seq = seq
        self.kind = kind
        self.alloc = alloc
        self.issue = issue
        self.dealloc = dealloc
        self.instr = instr

    def __len__(self) -> int:
        return len(self.kind)

    def shifted(self, cycle_delta: int, seq_delta: int = 0) -> \
            "IntervalBlock":
        """A copy rebased by ``cycle_delta`` cycles / ``seq_delta`` seqs.

        ``NO_VALUE`` is an in-band sentinel, so a shift that would land
        a *real* coordinate exactly on it cannot be represented (the row
        would silently read back as anonymous/never-issued and the shift
        would no longer be invertible); such shifts raise ``ValueError``.
        Store columns with legitimately-negative relative coordinates
        under a far sentinel instead (see ``pipeline/compose.py``).
        """
        if seq_delta and (NO_VALUE - seq_delta) in self.seq:
            raise ValueError(
                f"seq shift by {seq_delta} would land a real row on the "
                f"NO_VALUE sentinel")
        if cycle_delta and (NO_VALUE - cycle_delta) in self.issue:
            raise ValueError(
                f"issue shift by {cycle_delta} would land a real row on "
                f"the NO_VALUE sentinel")
        seq = array("q", (s if s == NO_VALUE else s + seq_delta
                          for s in self.seq))
        issue = array("q", (i if i == NO_VALUE else i + cycle_delta
                            for i in self.issue))
        alloc = array("q", (a + cycle_delta for a in self.alloc))
        dealloc = array("q", (d + cycle_delta for d in self.dealloc))
        return IntervalBlock(seq, array("b", self.kind), alloc, issue,
                             dealloc, self.instr)

    def rows(self) -> Iterator[tuple]:
        """The flat ``(seq, kind, alloc, issue, dealloc, instr)`` records."""
        return zip(self.seq, self.kind, self.alloc, self.issue,
                   self.dealloc, self.instr)

    def __repr__(self) -> str:
        return f"IntervalBlock({len(self)} rows)"

    # -- pickling (the persistent timeline store ships these) --------------

    def __getstate__(self) -> tuple:
        return (self.seq, self.kind, self.alloc, self.issue, self.dealloc,
                self.instr)

    def __setstate__(self, state: tuple) -> None:
        (self.seq, self.kind, self.alloc, self.issue, self.dealloc,
         self.instr) = state
