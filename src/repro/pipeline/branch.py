"""A gshare direction predictor.

Wrong-path instruction-queue occupancy — one of the paper's false-DUE
sources — exists only because branches mispredict. The predictor here is a
standard gshare: a table of 2-bit saturating counters indexed by the PC
xor-folded with global history. Data-dependent branches in the synthetic
workloads defeat it about half the time; loop branches train quickly.
"""

from __future__ import annotations


class GShareBranchPredictor:
    """2-bit-counter gshare with a global history register."""

    def __init__(self, table_bits: int = 12, history_bits: int = 8) -> None:
        if table_bits <= 0 or history_bits < 0:
            raise ValueError("table_bits must be > 0 and history_bits >= 0")
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        # Counters start weakly not-taken.
        self._table = bytearray([1] * (1 << table_bits))
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, pc: int) -> int:
        return (pc ^ (self._history << 2)) & self._mask

    def predict(self, pc: int) -> bool:
        """Predicted direction for the branch at ``pc`` (True = taken)."""
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> bool:
        """Predict, train on the actual outcome, and return the prediction."""
        index = self._index(pc)
        counter = self._table[index]
        prediction = counter >= 2
        if taken and counter < 3:
            self._table[index] = counter + 1
        elif not taken and counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
        self.predictions += 1
        if prediction != taken:
            self.mispredictions += 1
        return prediction

    @property
    def mispredict_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
